"""The fleet gateway: many repositories, one overload-safe front door.

:class:`CIFleet` multiplexes N tenant repositories over shared
infrastructure, the ROADMAP's "millions of users" shape.  Each tenant is
a full :class:`~repro.ci.service.CIService` with its own state directory
(PR 4 snapshot + journal) plus a durable intake queue; the gateway adds
the three things a shared deployment needs that a single service does
not:

* **Bounded residency.**  Live engines are held in an LRU of at most
  ``max_resident`` tenants.  Eviction snapshots the service and compacts
  its intake queue, then drops it; the next submission hydrates it back
  from disk (``CIService.restore`` — the PR 4 contract makes this
  element-wise identical to never having been evicted).  A thousand
  registered tenants cost the memory of ``max_resident`` engines.
* **Admission control and durable intake.**  A submission is either
  rejected *at the door* with a typed
  :class:`~repro.exceptions.AdmissionError` (fleet overload, tenant
  quota, quarantined tenant — each with a retry-after hint) or accepted
  into the tenant's CRC'd, fsynced intake queue before anything
  evaluates it.  Accepted work survives a crash at any point and replays
  idempotently by repository sequence; there is no third outcome.
* **Per-tenant isolation.**  A tenant whose engine fails repeatedly
  trips its circuit breaker (open → half-open probe → close) and is
  quarantined at the door while every other tenant keeps serving,
  results unchanged.  Engine failures also never poison resident state:
  the failing tenant's in-memory service is discarded and the next drain
  re-hydrates it from its durable state, which the failure never
  touched.

Plans are shared across tenants for free: the process-wide plan cache
(:mod:`repro.stats.cache`) is keyed on normalized condition + spec, so a
fleet of tenants watching the same condition plans once.

Fault-injection points (chaos suite): ``fleet.hydrate``,
``fleet.evict``, ``fleet.process`` (plus the per-tenant
``fleet.process.<tenant-id>`` variant) and the intake queue's
``intake.append`` (tear) / ``intake.write`` (errno).

Single-writer assumption: one live :class:`CIFleet` per root directory,
like one :class:`CIService` per state directory.  Read-only inspection
(``repro fleet``, :func:`CIFleet.fsck`) is always safe.
"""

from __future__ import annotations

import re
import time
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Iterator, Mapping

from repro.ci.notifications import NotificationTransport
from repro.ci.persistence import open_state_dir
from repro.ci.repository import ModelRepository
from repro.ci.service import BuildRecord, CIService, OperationsReport
from repro.core.script.config import CIScript
from repro.core.testset import Testset, TestsetPool
from repro.exceptions import (
    PersistenceError,
    StorageExhaustedError,
    TenantQuarantinedError,
    TenantQuotaExceededError,
    UnknownTenantError,
)
from repro.fleet.admission import AdmissionPolicy
from repro.fleet.breaker import BreakerState, CircuitBreaker
from repro.fleet.intake import IntakeQueue, IntakeRecord, IntakeScan, scan_intake
from repro.reliability.events import record_event
from repro.reliability.faults import InjectedFault, fault_point
from repro.reliability.fsck import FsckReport, fsck_state_dir
from repro.reliability.storage import (
    StorageGovernor,
    StorageStatus,
    maintain_state_dir,
)

__all__ = [
    "CIFleet",
    "DrainReport",
    "FleetReport",
    "TenantStatus",
    "TenantFsck",
    "FleetFsckReport",
]

_TENANT_ID = re.compile(r"[A-Za-z0-9][A-Za-z0-9._-]{0,63}")


@dataclass(frozen=True)
class TenantStatus:
    """One tenant's row in the fleet operations report.

    ``builds_total``/``dead_letters`` are ``None`` for non-resident
    tenants — the report never hydrates an engine just to count builds.
    """

    tenant_id: str
    resident: bool
    pending: int
    breaker: str
    retry_after_seconds: float
    builds_total: int | None
    dead_letters: int | None
    # Storage governance (None when no per-tenant governor is attached).
    storage_bytes: int | None = None
    storage_level: str | None = None


@dataclass(frozen=True)
class FleetReport:
    """Point-in-time operational view of the whole fleet.

    JSON-compatible via :func:`repro.utils.serialization.to_jsonable`;
    rendered for terminals by :meth:`describe` (what ``repro fleet``
    prints).
    """

    root: str
    tenants_registered: int
    tenants_resident: int
    max_resident: int
    pending_total: int
    accepted: int
    processed: int
    rejections: Mapping[str, int]
    hydrations: int
    evictions: int
    breakers_open: int
    breakers_half_open: int
    tenant_status: tuple[TenantStatus, ...]
    # Fleet-wide storage governance (None when no fleet governor).
    storage_bytes: int | None = None
    storage_level: str | None = None

    def describe(self) -> str:
        """A terminal-friendly rendering (what ``repro fleet`` prints)."""
        rejected = sum(self.rejections.values())
        lines = [
            f"fleet report for root {self.root!r}:",
            f"  tenants       : {self.tenants_registered} registered, "
            f"{self.tenants_resident} resident (cap {self.max_resident})",
            f"  intake        : {self.pending_total} pending, "
            f"{self.accepted} accepted, {self.processed} processed "
            "this process",
            f"  admission     : {rejected} rejected "
            f"({self.rejections.get('fleet-overloaded', 0)} overloaded, "
            f"{self.rejections.get('tenant-quota', 0)} over quota, "
            f"{self.rejections.get('tenant-quarantined', 0)} quarantined, "
            f"{self.rejections.get('storage-exhausted', 0)} storage-exhausted)",
            f"  lifecycle     : {self.hydrations} hydration(s), "
            f"{self.evictions} eviction(s)",
            f"  breakers      : {self.breakers_open} open, "
            f"{self.breakers_half_open} half-open "
            f"of {self.tenants_registered}",
        ]
        if self.storage_level is not None:
            lines.append(
                f"  storage       : {self.storage_bytes}B used fleet-wide "
                f"({self.storage_level})"
            )
        for status in self.tenant_status:
            if status.resident:
                engine = f"resident ({status.builds_total} builds)"
            else:
                engine = "cold"
            if status.storage_level is not None:
                engine += f"; storage {status.storage_level}"
            lines.append(
                f"    {status.tenant_id:<20} pending {status.pending:<4} "
                f"breaker {status.breaker:<9} {engine}"
            )
        return "\n".join(lines)


@dataclass(frozen=True)
class DrainReport:
    """Outcome of a fleet-wide drain.

    Attributes
    ----------
    builds:
        Per-tenant build records produced (or re-matched) this drain.
    errors:
        Tenants whose drain failed, with the error message; their
        remaining intake entries stay durably pending.
    skipped:
        Tenants skipped because their breaker was open.
    """

    builds: Mapping[str, list[BuildRecord]]
    errors: Mapping[str, str]
    skipped: tuple[str, ...]


@dataclass(frozen=True)
class TenantFsck:
    """One tenant's entry in the fleet fsck sweep."""

    tenant_id: str
    state: FsckReport
    intake: IntakeScan


@dataclass(frozen=True)
class FleetFsckReport:
    """Read-only integrity sweep across every tenant state directory."""

    root: Path
    exists: bool
    tenants: tuple[TenantFsck, ...]

    @property
    def healthy(self) -> bool:
        """Every tenant restorable, no corrupt intake lines."""
        return self.exists and all(
            t.state.restorable and not t.intake.corrupt_lines
            for t in self.tenants
        )

    def describe(self) -> str:
        """A terminal-friendly rendering (``repro fleet --fsck``)."""
        if not self.exists:
            return f"fleet fsck: root {str(self.root)!r} does not exist"
        lines = [
            f"fleet fsck for root {str(self.root)!r}: "
            f"{len(self.tenants)} tenant(s), "
            f"{'HEALTHY' if self.healthy else 'DAMAGED'}"
        ]
        for tenant in self.tenants:
            state = tenant.state
            verdict = (
                f"restore #{state.restore_sequence} + replay "
                f"{state.replay_commits} commit(s)"
                if state.restorable
                else "UNRESTORABLE"
            )
            intake = (
                f"intake {tenant.intake.pending} pending"
                if tenant.intake.exists
                else "no intake"
            )
            if tenant.intake.corrupt_lines:
                intake += (
                    f", {len(tenant.intake.corrupt_lines)} corrupt line(s)"
                )
            lines.append(f"  {tenant.tenant_id:<20} {verdict}; {intake}")
        return "\n".join(lines)


class CIFleet:
    """A bounded-residency, overload-safe gateway over N tenant services.

    Parameters
    ----------
    root:
        Fleet root directory; tenant state lives in
        ``<root>/tenants/<tenant-id>/`` (a PR 4 state dir plus
        ``intake.jsonl``).  An existing root's tenants are discovered
        from disk and hydrated lazily.
    max_resident:
        LRU capacity: how many tenant engines stay live at once.
    admission:
        The :class:`AdmissionPolicy` enforced at the door.
    failure_threshold / cooldown_seconds:
        Per-tenant circuit-breaker configuration.
    snapshot_every:
        Auto-snapshot cadence forwarded to every tenant service.
    keep_snapshots:
        Snapshot-retention depth forwarded to every tenant service
        (default 3): each tenant snapshot prunes older generations and
        compacts the tenant journal through the oldest retained anchor,
        so tenant dirs stop growing monotonically.  ``None`` keeps every
        generation.
    storage:
        Optional per-tenant :class:`StorageGovernor`: each submission is
        admitted against its tenant dir's byte budget — soft triggers
        reclamation (prune + compact + intake compaction), hard rejects
        with a retryable
        :class:`~repro.exceptions.StorageExhaustedError` while every
        other tenant keeps serving.
    fleet_storage:
        Optional fleet-wide :class:`StorageGovernor` metering the whole
        root; its hard watermark closes the door for everyone (like
        fleet-wide overload) until reclamation brings usage back under.
    sync:
        Fsync journals/intakes on every append (default).  Benchmarks
        simulating thousands of tenants turn this off.
    transport_factory:
        Optional ``tenant_id -> NotificationTransport`` hook supplying
        each tenant's notification transport at registration/hydration.
    workers:
        Planning-executor configuration for newly registered tenants.
    clock:
        Monotonic-seconds source for the breakers (injectable for
        deterministic chaos tests).
    create:
        Create ``<root>/tenants/`` when missing (default).  Read-only
        inspectors pass ``False``.
    """

    def __init__(
        self,
        root: str | Path,
        *,
        max_resident: int = 8,
        admission: AdmissionPolicy | None = None,
        failure_threshold: int = 3,
        cooldown_seconds: float = 30.0,
        snapshot_every: int | None = None,
        keep_snapshots: int | None = 3,
        storage: StorageGovernor | None = None,
        fleet_storage: StorageGovernor | None = None,
        sync: bool = True,
        transport_factory: Callable[[str], NotificationTransport | None]
        | None = None,
        workers: int | str | None = None,
        clock: Callable[[], float] | None = None,
        create: bool = True,
    ):
        if max_resident < 1:
            raise ValueError(f"max_resident must be >= 1, got {max_resident}")
        self.root = Path(root)
        self.max_resident = int(max_resident)
        self.admission = admission if admission is not None else AdmissionPolicy()
        self.failure_threshold = int(failure_threshold)
        self.cooldown_seconds = float(cooldown_seconds)
        self.snapshot_every = snapshot_every
        self.keep_snapshots = keep_snapshots
        self.storage = storage
        self.fleet_storage = fleet_storage
        self.sync = bool(sync)
        self.transport_factory = transport_factory
        self.workers = workers
        self._clock = clock or time.monotonic
        self._resident: OrderedDict[str, CIService] = OrderedDict()
        self._intakes: dict[str, IntakeQueue] = {}
        self._breakers: dict[str, CircuitBreaker] = {}
        self.hydrations = 0
        self.evictions = 0
        self.accepted = 0
        self.processed = 0
        self.rejections: dict[str, int] = {
            "fleet-overloaded": 0,
            "tenant-quota": 0,
            "tenant-quarantined": 0,
            "storage-exhausted": 0,
        }
        if create:
            # Read-only inspectors (`repro fleet`) pass create=False so
            # pointing the CLI at a path never creates directories there.
            (self.root / "tenants").mkdir(parents=True, exist_ok=True)

    # -- tenant directory layout --------------------------------------------
    def tenant_dir(self, tenant_id: str) -> Path:
        """The tenant's state directory (validating the id)."""
        if not _TENANT_ID.fullmatch(tenant_id):
            raise UnknownTenantError(
                f"invalid tenant id {tenant_id!r}: expected 1-64 characters "
                "from [A-Za-z0-9._-], starting alphanumeric"
            )
        return self.root / "tenants" / tenant_id

    def tenants(self) -> list[str]:
        """Registered tenant ids, discovered from disk, sorted."""
        base = self.root / "tenants"
        if not base.is_dir():
            return []
        return sorted(
            child.name for child in base.iterdir() if child.is_dir()
        )

    def has_tenant(self, tenant_id: str) -> bool:
        """Whether a tenant state directory exists under this root."""
        return self.tenant_dir(tenant_id).is_dir()

    def _require_tenant(self, tenant_id: str) -> Path:
        directory = self.tenant_dir(tenant_id)
        if not directory.is_dir():
            raise UnknownTenantError(
                f"no tenant {tenant_id!r} registered under {self.root}"
            )
        return directory

    # -- per-tenant runtime objects -----------------------------------------
    def _breaker(self, tenant_id: str) -> CircuitBreaker:
        breaker = self._breakers.get(tenant_id)
        if breaker is None:
            breaker = CircuitBreaker(
                tenant_id,
                failure_threshold=self.failure_threshold,
                cooldown_seconds=self.cooldown_seconds,
                clock=self._clock,
            )
            self._breakers[tenant_id] = breaker
        return breaker

    def _intake(self, tenant_id: str) -> IntakeQueue:
        queue = self._intakes.get(tenant_id)
        if queue is None:
            directory = self._require_tenant(tenant_id)
            queue = IntakeQueue(directory / "intake.jsonl", sync=self.sync)
            self._intakes[tenant_id] = queue
        return queue

    def _transport(self, tenant_id: str) -> NotificationTransport | None:
        if self.transport_factory is None:
            return None
        return self.transport_factory(tenant_id)

    # -- registration --------------------------------------------------------
    def register(
        self,
        tenant_id: str,
        script: CIScript,
        testset: Testset,
        baseline_model: Any,
        *,
        pool: TestsetPool | None = None,
        repository: ModelRepository | None = None,
        **engine_kwargs: Any,
    ) -> CIService:
        """Create a tenant: state dir, first snapshot, empty intake queue.

        The returned service is resident (and may evict the LRU tenant).
        All subsequent writes to the tenant must flow through
        :meth:`enqueue`/:meth:`submit` — the intake queue's sequence
        accounting assumes it is the only write path.
        """
        directory = self.tenant_dir(tenant_id)
        if directory.exists():
            raise PersistenceError(
                f"tenant {tenant_id!r} already exists under {self.root}"
            )
        service = CIService(
            script,
            testset,
            baseline_model,
            repository=repository
            if repository is not None
            else ModelRepository(name=tenant_id),
            transport=self._transport(tenant_id),
            workers=self.workers,
            **engine_kwargs,
        )
        if pool is not None:
            service.install_testset_pool(pool)
        service.persist_to(
            directory,
            snapshot_every=self.snapshot_every,
            sync=self.sync,
            keep_snapshots=self.keep_snapshots,
        )
        self._intakes[tenant_id] = IntakeQueue.create(
            directory / "intake.jsonl",
            base_repo_sequence=len(service.repository),
            sync=self.sync,
        )
        self._resident[tenant_id] = service
        self._resident.move_to_end(tenant_id)
        self._enforce_capacity()
        return service

    # -- residency (LRU + hydration) ----------------------------------------
    @property
    def resident_tenants(self) -> list[str]:
        """Currently live tenants, least-recently-used first."""
        return list(self._resident)

    def service(self, tenant_id: str) -> CIService:
        """The tenant's live service, hydrating from disk when evicted.

        Fault-injection point: ``fleet.hydrate`` (``raise`` simulates a
        failing cold resume; the failure counts against the tenant's
        circuit breaker and the fleet keeps serving everyone else).
        """
        service = self._resident.get(tenant_id)
        if service is not None:
            self._resident.move_to_end(tenant_id)
            return service
        directory = self._require_tenant(tenant_id)
        try:
            fault_point("fleet.hydrate")
            store, journal = open_state_dir(
                directory, create=False, sync=self.sync
            )
            service = CIService.restore(
                store,
                journal,
                transport=self._transport(tenant_id),
                snapshot_every=self.snapshot_every,
                keep_snapshots=self.keep_snapshots,
            )
        except Exception as exc:
            self._breaker(tenant_id).record_failure(exc)
            record_event(
                "tenant-hydrate-failed",
                "fleet.gateway",
                tenant=tenant_id,
                error=str(exc),
            )
            raise
        self.hydrations += 1
        record_event("tenant-hydrated", "fleet.gateway", tenant=tenant_id)
        self._resident[tenant_id] = service
        self._resident.move_to_end(tenant_id)
        self._enforce_capacity()
        return service

    def _try_evict(self, tenant_id: str) -> bool:
        """Snapshot + compact + drop one resident tenant; False on failure.

        The fault point fires *before* the snapshot, so an injected
        eviction failure leaves the tenant resident and loses nothing —
        eviction is maintenance, never allowed to become a failure mode.
        """
        service = self._resident[tenant_id]
        try:
            fault_point("fleet.evict")
            service.snapshot()
            self._intake(tenant_id).compact()
        except Exception as exc:
            record_event(
                "evict-failed",
                "fleet.gateway",
                tenant=tenant_id,
                error=str(exc),
            )
            return False
        del self._resident[tenant_id]
        self.evictions += 1
        record_event("tenant-evicted", "fleet.gateway", tenant=tenant_id)
        return True

    def _enforce_capacity(self) -> None:
        while len(self._resident) > self.max_resident:
            # Candidates in LRU order, sparing the most-recently-used
            # entry — that is the tenant currently being served.
            for tenant_id in list(self._resident)[:-1]:
                if self._try_evict(tenant_id):
                    break
            else:
                # Every eviction failed (e.g. injected faults): serve
                # over capacity rather than refuse traffic.
                return

    # -- storage governance ---------------------------------------------------
    def _maintain_tenant(self, tenant_id: str) -> None:
        """Reclaim one tenant dir: prune + compact journal, compact intake.

        Resident tenants reclaim through their own service's retention
        (which holds the live store/journal handles); cold tenants are
        maintained offline via :func:`maintain_state_dir`.  Best-effort:
        a reclamation failure (including an injected disk fault) is
        recorded and swallowed — maintenance must never become its own
        failure mode.
        """
        try:
            service = self._resident.get(tenant_id)
            if service is not None:
                service._run_retention()
            elif self.keep_snapshots is not None:
                maintain_state_dir(
                    self._require_tenant(tenant_id),
                    keep=self.keep_snapshots,
                    sync=self.sync,
                )
            queue = self._intakes.get(tenant_id)
            if queue is not None:
                queue.compact()
        except (OSError, InjectedFault, PersistenceError) as exc:
            record_event(
                "storage-maintenance-failed",
                "fleet.gateway",
                tenant=tenant_id,
                error=str(exc),
            )

    def _storage_statuses(
        self, tenant_id: str
    ) -> tuple[StorageStatus | None, StorageStatus | None]:
        """Measure (tenant, fleet) storage, reclaiming once when over.

        Either governor reading soft *or* hard triggers reclamation
        (hard included: reclamation only deletes/rewrites, never grows
        the disk) followed by a re-measure — the returned statuses are
        post-reclamation, so a budget a compaction pass can satisfy
        never rejects anyone.
        """
        tenant_status = fleet_status = None
        if self.storage is not None:
            directory = self.tenant_dir(tenant_id)
            tenant_status = self.storage.check(directory)
            if tenant_status.level != "ok":
                self._maintain_tenant(tenant_id)
                tenant_status = self.storage.check(directory)
        if self.fleet_storage is not None:
            fleet_status = self.fleet_storage.check(self.root)
            if fleet_status.level != "ok":
                for tenant in self.tenants():
                    self._maintain_tenant(tenant)
                fleet_status = self.fleet_storage.check(self.root)
        return tenant_status, fleet_status

    # -- the front door ------------------------------------------------------
    def _total_pending(self) -> int:
        return sum(
            self._intake(tenant_id).pending_count
            for tenant_id in self.tenants()
        )

    def enqueue(
        self,
        tenant_id: str,
        model: Any,
        *,
        message: str = "",
        author: str = "developer",
    ) -> IntakeRecord:
        """Admit and durably accept one submission (no evaluation yet).

        Raises a typed :class:`~repro.exceptions.AdmissionError` when
        the door is closed; on return the submission is fsynced into the
        tenant's intake queue and will be processed by the next
        :meth:`drain` (or :meth:`submit`), surviving any crash in
        between.
        """
        self._require_tenant(tenant_id)
        breaker = self._breaker(tenant_id)
        if not breaker.allows():
            self.rejections["tenant-quarantined"] += 1
            record_event(
                "admission-rejected",
                "fleet.admission",
                tenant=tenant_id,
                reason="tenant-quarantined",
            )
            raise TenantQuarantinedError(
                f"tenant {tenant_id!r} is quarantined (circuit breaker "
                f"open after {breaker.consecutive_failures} consecutive "
                f"failures); retry in {breaker.retry_after():.1f}s",
                tenant=tenant_id,
                retry_after_seconds=breaker.retry_after(),
            )
        queue = self._intake(tenant_id)
        tenant_storage, fleet_storage = self._storage_statuses(tenant_id)
        try:
            self.admission.admit(
                tenant_id,
                tenant_pending=queue.pending_count,
                total_pending=self._total_pending(),
                tenant_storage=tenant_storage,
                fleet_storage=fleet_storage,
            )
        except StorageExhaustedError:
            self.rejections["storage-exhausted"] += 1
            raise
        except TenantQuotaExceededError:
            self.rejections["tenant-quota"] += 1
            raise
        except Exception:
            self.rejections["fleet-overloaded"] += 1
            raise
        try:
            record = queue.append(model, message=message, author=author)
        except Exception:
            # A torn append leaves trailing garbage in the intake file;
            # drop the handle so the next open heals it exactly like a
            # restart would.  By the crash model the submission was not
            # accepted.
            self._intakes.pop(tenant_id, None)
            raise
        self.accepted += 1
        return record

    # -- processing ----------------------------------------------------------
    def _ack(
        self, tenant_id: str, queue: IntakeQueue, repo_sequence: int
    ) -> None:
        try:
            queue.ack(repo_sequence)
        except Exception as exc:
            # A torn ack leaves trailing garbage; drop the handle so the
            # next open heals it like a restart.  The processed build is
            # safe in the tenant journal — the next drain re-acks the
            # entry by sequence without re-running it.
            self._intakes.pop(tenant_id, None)
            record_event(
                "intake-ack-failed",
                "fleet.gateway",
                tenant=tenant_id,
                repo_sequence=repo_sequence,
                error=str(exc),
            )
            raise

    def _drain_tenant(self, tenant_id: str) -> list[BuildRecord]:
        """Process every pending intake entry of one tenant, in order.

        Idempotent by repository sequence: an entry whose sequence the
        repository already contains (the crash landed between the
        tenant-journal append and the intake ack) is re-acked without
        re-running its build.  A processing failure counts against the
        breaker, discards the (possibly poisoned) resident service —
        durable state is untouched, the next drain re-hydrates — and
        leaves the failed entry pending.
        """
        queue = self._intake(tenant_id)
        if queue.pending_count == 0:
            return []
        breaker = self._breaker(tenant_id)
        # Gate on fully-open only: a half-open drain IS the probe (and
        # submit() already consumed the door-side probe in enqueue()).
        if breaker.state is BreakerState.OPEN:
            raise TenantQuarantinedError(
                f"tenant {tenant_id!r} is quarantined; retry in "
                f"{breaker.retry_after():.1f}s",
                tenant=tenant_id,
                retry_after_seconds=breaker.retry_after(),
            )
        service = self.service(tenant_id)  # breaker-accounted on failure
        builds: list[BuildRecord] = []
        by_sequence: dict[int, BuildRecord] | None = None
        for entry in queue.pending():
            repo_length = len(service.repository)
            if entry.repo_sequence < repo_length:
                # Already journaled (and therefore already replayed into
                # this service) by the pre-crash process: heal the ack.
                if by_sequence is None:
                    by_sequence = {
                        build.commit.sequence: build
                        for build in service.builds
                    }
                self._ack(tenant_id, queue, entry.repo_sequence)
                record_event(
                    "intake-ack-healed",
                    "fleet.gateway",
                    tenant=tenant_id,
                    repo_sequence=entry.repo_sequence,
                )
                healed = by_sequence.get(entry.repo_sequence)
                if healed is not None:
                    builds.append(healed)
                continue
            if entry.repo_sequence != repo_length:
                raise PersistenceError(
                    f"intake queue for tenant {tenant_id!r} expected "
                    f"repository sequence {repo_length} but holds "
                    f"{entry.repo_sequence}; intake and state dir disagree"
                )
            try:
                fault_point("fleet.process")
                fault_point(f"fleet.process.{tenant_id}")
                service.repository.commit(
                    entry.model(),
                    message=entry.payload.get("message", ""),
                    author=entry.payload.get("author", "developer"),
                )
            except Exception as exc:
                breaker.record_failure(exc)
                self._resident.pop(tenant_id, None)
                record_event(
                    "tenant-process-failed",
                    "fleet.gateway",
                    tenant=tenant_id,
                    repo_sequence=entry.repo_sequence,
                    error=str(exc),
                )
                raise
            self._ack(tenant_id, queue, entry.repo_sequence)
            self.processed += 1
            builds.append(service.builds[-1])
        breaker.record_success()
        return builds

    def drain(self, tenant_id: str | None = None) -> DrainReport:
        """Process pending intake entries — one tenant's, or everyone's.

        With a ``tenant_id`` the tenant's failure (or open breaker)
        raises.  Fleet-wide, failing tenants are recorded in the report
        and *skipped past* — one wedged tenant never blocks the others'
        backlog; its entries stay durably pending for a later drain.
        """
        if tenant_id is not None:
            return DrainReport(
                builds={tenant_id: self._drain_tenant(tenant_id)},
                errors={},
                skipped=(),
            )
        builds: dict[str, list[BuildRecord]] = {}
        errors: dict[str, str] = {}
        skipped: list[str] = []
        for tenant in self.tenants():
            if self._intake(tenant).pending_count == 0:
                continue
            if self._breaker(tenant).state is BreakerState.OPEN:
                skipped.append(tenant)
                continue
            try:
                builds[tenant] = self._drain_tenant(tenant)
            except Exception as exc:
                errors[tenant] = str(exc)
        return DrainReport(
            builds=builds, errors=errors, skipped=tuple(skipped)
        )

    def submit(
        self,
        tenant_id: str,
        model: Any,
        *,
        message: str = "",
        author: str = "developer",
    ) -> BuildRecord:
        """The webhook path: admit, durably accept, process, return the build.

        Equivalent to :meth:`enqueue` followed by a tenant drain.  When
        processing fails the exception propagates, but the submission is
        already durable — a later drain (or a restart) completes it.
        """
        entry = self.enqueue(
            tenant_id, model, message=message, author=author
        )
        for build in self._drain_tenant(tenant_id):
            if build.commit.sequence == entry.repo_sequence:
                return build
        raise PersistenceError(
            f"tenant {tenant_id!r} drain did not produce a build for "
            f"repository sequence {entry.repo_sequence}"
        )

    # -- operations ----------------------------------------------------------
    def operations(self) -> FleetReport:
        """The fleet-level operations surface (``repro fleet``).

        Aggregates intake depth and breaker state for every tenant
        without hydrating anyone; engine-level counters are reported for
        resident tenants only.
        """
        statuses = []
        open_count = half_open_count = 0
        for tenant in self.tenants():
            breaker = self._breakers.get(tenant)
            state = breaker.state if breaker is not None else BreakerState.CLOSED
            if state is BreakerState.OPEN:
                open_count += 1
            elif state is BreakerState.HALF_OPEN:
                half_open_count += 1
            service = self._resident.get(tenant)
            # Live queues report directly; queues this process never
            # opened are scanned read-only, so a reporting-only fleet
            # (the CLI) never heals/truncates anyone's intake file.
            queue = self._intakes.get(tenant)
            pending = (
                queue.pending_count
                if queue is not None
                else scan_intake(
                    self.tenant_dir(tenant) / "intake.jsonl"
                ).pending
            )
            tenant_storage = (
                self.storage.check(self.tenant_dir(tenant))
                if self.storage is not None
                else None
            )
            statuses.append(
                TenantStatus(
                    tenant_id=tenant,
                    resident=service is not None,
                    pending=pending,
                    breaker=state.value,
                    retry_after_seconds=(
                        breaker.retry_after() if breaker is not None else 0.0
                    ),
                    builds_total=(
                        len(service.builds) if service is not None else None
                    ),
                    dead_letters=(
                        len(service.repository.dead_letters)
                        if service is not None
                        else None
                    ),
                    storage_bytes=(
                        tenant_storage.used_bytes
                        if tenant_storage is not None
                        else None
                    ),
                    storage_level=(
                        tenant_storage.level
                        if tenant_storage is not None
                        else None
                    ),
                )
            )
        fleet_storage = (
            self.fleet_storage.check(self.root)
            if self.fleet_storage is not None
            else None
        )
        return FleetReport(
            root=str(self.root),
            tenants_registered=len(statuses),
            tenants_resident=len(self._resident),
            max_resident=self.max_resident,
            pending_total=sum(status.pending for status in statuses),
            accepted=self.accepted,
            processed=self.processed,
            rejections=dict(self.rejections),
            hydrations=self.hydrations,
            evictions=self.evictions,
            breakers_open=open_count,
            breakers_half_open=half_open_count,
            tenant_status=tuple(statuses),
            storage_bytes=(
                fleet_storage.used_bytes if fleet_storage is not None else None
            ),
            storage_level=(
                fleet_storage.level if fleet_storage is not None else None
            ),
        )

    def tenant_operations(self, tenant_id: str) -> OperationsReport:
        """One tenant's full :class:`OperationsReport`.

        Resident tenants report live; evicted tenants are restored
        read-only (``record=False`` — inspection never mutates the
        journal) without being made resident.
        """
        service = self._resident.get(tenant_id)
        if service is None:
            directory = self._require_tenant(tenant_id)
            store, journal = open_state_dir(
                directory, create=False, sync=self.sync
            )
            service = CIService.restore(
                store,
                journal,
                record=False,
                keep_snapshots=self.keep_snapshots,
                storage=self.storage,
            )
        return service.operations()

    def fsck(self) -> FleetFsckReport:
        """Read-only integrity sweep across all tenant state dirs."""
        base = self.root / "tenants"
        if not base.is_dir():
            return FleetFsckReport(root=self.root, exists=False, tenants=())
        return FleetFsckReport(
            root=self.root,
            exists=True,
            tenants=tuple(
                TenantFsck(
                    tenant_id=tenant,
                    state=fsck_state_dir(base / tenant),
                    intake=scan_intake(base / tenant / "intake.jsonl"),
                )
                for tenant in self.tenants()
            ),
        )

    # -- lifecycle -----------------------------------------------------------
    def close(self) -> None:
        """Evict every resident tenant (snapshot + compact) cleanly."""
        for tenant_id in list(self._resident):
            self._try_evict(tenant_id)

    def __enter__(self) -> "CIFleet":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __iter__(self) -> Iterator[str]:
        return iter(self.tenants())

    def __len__(self) -> int:
        return len(self.tenants())
