"""Overload-safe multi-tenant fleet serving for the ease.ml/ci loop.

The :class:`CIFleet` gateway owns N tenant state directories and routes
webhook-style submissions to per-tenant
:class:`~repro.ci.service.CIService` instances, hydrated lazily from the
PR 4 snapshot + journal contract and held in a bounded LRU.  In front of
each tenant sit a durable intake queue (:class:`IntakeQueue`), admission
control (:class:`AdmissionPolicy`), and a circuit breaker
(:class:`CircuitBreaker`).  See :mod:`repro.fleet.gateway` for the full
contract and ``docs/fleet.md`` for a quickstart.
"""

from repro.fleet.admission import AdmissionPolicy
from repro.fleet.breaker import BreakerState, CircuitBreaker
from repro.fleet.gateway import (
    CIFleet,
    DrainReport,
    FleetFsckReport,
    FleetReport,
    TenantFsck,
    TenantStatus,
)
from repro.fleet.intake import IntakeQueue, IntakeRecord, IntakeScan, scan_intake

__all__ = [
    "AdmissionPolicy",
    "BreakerState",
    "CIFleet",
    "CircuitBreaker",
    "DrainReport",
    "FleetFsckReport",
    "FleetReport",
    "IntakeQueue",
    "IntakeRecord",
    "IntakeScan",
    "TenantFsck",
    "TenantStatus",
    "scan_intake",
]
