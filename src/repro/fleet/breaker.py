"""Per-tenant circuit breakers: quarantine a failing tenant, not the fleet.

A tenant whose engine fails repeatedly — a poisoned model pickle, a
corrupted state dir that fails every hydration, an injected chaos rule —
must not consume the fleet's capacity retrying forever.  The classic
three-state breaker:

* **closed** — traffic flows; consecutive failures are counted.
* **open** — ``failure_threshold`` consecutive failures trip the
  breaker: submissions are rejected *at the door* (typed
  :class:`~repro.exceptions.TenantQuarantinedError` with the remaining
  cooldown as its retry-after hint) for ``cooldown_seconds``.
* **half-open** — after the cooldown one probe submission is allowed
  through.  Success closes the breaker (and the drain that carried the
  probe processes the tenant's whole durable backlog); failure reopens
  it for another full cooldown.

Breaker state is runtime operational state, like the reliability event
log: per-process, never snapshotted.  A restarted fleet starts every
breaker closed — the first failures re-trip it, and nothing durable was
lost in the meantime because rejected submissions were never enqueued
and accepted ones survive in the intake queue.

The clock is injectable so chaos tests drive open → half-open → closed
transitions deterministically.
"""

from __future__ import annotations

import time
from enum import Enum
from typing import Callable

from repro.reliability.events import record_event

__all__ = ["BreakerState", "CircuitBreaker"]


class BreakerState(str, Enum):
    """The three classic circuit-breaker states."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


class CircuitBreaker:
    """One tenant's failure accounting.

    Parameters
    ----------
    name:
        Tenant id, used in reliability events.
    failure_threshold:
        Consecutive failures that trip the breaker open.
    cooldown_seconds:
        How long the breaker stays open before allowing a half-open
        probe.
    clock:
        Monotonic-seconds source (:func:`time.monotonic` by default);
        injectable for deterministic tests.
    """

    def __init__(
        self,
        name: str,
        *,
        failure_threshold: int = 3,
        cooldown_seconds: float = 30.0,
        clock: Callable[[], float] | None = None,
    ):
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if cooldown_seconds <= 0:
            raise ValueError(
                f"cooldown_seconds must be > 0, got {cooldown_seconds}"
            )
        self.name = name
        self.failure_threshold = int(failure_threshold)
        self.cooldown_seconds = float(cooldown_seconds)
        self._clock = clock or time.monotonic
        self._consecutive_failures = 0
        self._opened_at: float | None = None
        self._probing = False
        self.times_opened = 0

    # -- state ---------------------------------------------------------------
    @property
    def state(self) -> BreakerState:
        """The current state (open auto-advances to half-open on cooldown)."""
        if self._opened_at is None:
            return BreakerState.CLOSED
        if self._clock() - self._opened_at >= self.cooldown_seconds:
            return BreakerState.HALF_OPEN
        return BreakerState.OPEN

    @property
    def consecutive_failures(self) -> int:
        """Failures since the last success."""
        return self._consecutive_failures

    def retry_after(self) -> float:
        """Seconds until a submission could be admitted (0 when it can now)."""
        if self._opened_at is None:
            return 0.0
        return max(
            0.0, self.cooldown_seconds - (self._clock() - self._opened_at)
        )

    def allows(self) -> bool:
        """Whether a submission may pass the door right now.

        Closed always allows.  Open never does.  Half-open allows one
        probe at a time: the first caller gets through, further callers
        are rejected until that probe's outcome is recorded.
        """
        state = self.state
        if state is BreakerState.CLOSED:
            return True
        if state is BreakerState.OPEN:
            return False
        if self._probing:
            return False
        self._probing = True
        record_event(
            "breaker-half-open", "fleet.breaker", tenant=self.name
        )
        return True

    # -- outcomes ------------------------------------------------------------
    def record_success(self) -> None:
        """One successful pass through the tenant's pipeline."""
        was_open = self._opened_at is not None
        self._consecutive_failures = 0
        self._opened_at = None
        self._probing = False
        if was_open:
            record_event("breaker-close", "fleet.breaker", tenant=self.name)

    def record_failure(self, error: Exception | None = None) -> None:
        """One failed pass; trips (or re-trips) the breaker at threshold."""
        self._consecutive_failures += 1
        self._probing = False
        if self._opened_at is not None:
            # A half-open probe failed: re-open for a full cooldown.
            self._opened_at = self._clock()
            record_event(
                "breaker-reopen",
                "fleet.breaker",
                tenant=self.name,
                consecutive_failures=self._consecutive_failures,
                error=str(error) if error is not None else None,
            )
        elif self._consecutive_failures >= self.failure_threshold:
            self._opened_at = self._clock()
            self.times_opened += 1
            record_event(
                "breaker-open",
                "fleet.breaker",
                tenant=self.name,
                consecutive_failures=self._consecutive_failures,
                error=str(error) if error is not None else None,
            )
