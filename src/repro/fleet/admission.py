"""Admission control: shed load at the door, never mid-pipeline.

The gateway's first decision about a webhook submission is whether to
accept it at all.  Everything after acceptance is covered by the
durable-intake guarantee (an accepted submission is never lost), so the
*only* place load may be shed is here, before anything is written:

* the fleet-wide backlog cap (``max_pending_total``) bounds memory and
  replay work across all tenants — exceeding it raises
  :class:`~repro.exceptions.FleetOverloadedError`;
* the per-tenant quota (``max_pending_per_tenant``) stops one hot tenant
  from consuming the shared budget —
  :class:`~repro.exceptions.TenantQuotaExceededError`;
* an open circuit breaker rejects a quarantined tenant's traffic —
  :class:`~repro.exceptions.TenantQuarantinedError` (raised by the
  gateway, which owns the breakers);
* a state directory (or the fleet root) at its hard disk watermark
  rejects writes before they half-happen —
  :class:`~repro.exceptions.StorageExhaustedError` (the gateway passes
  the measured :class:`~repro.reliability.storage.StorageStatus` in).

Every rejection is typed, carries a retry-after hint, and is recorded on
the reliability event log; none of them spends statistical budget or
writes durable state.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import (
    FleetOverloadedError,
    StorageExhaustedError,
    TenantQuotaExceededError,
)
from repro.reliability.events import record_event

__all__ = ["AdmissionPolicy"]


@dataclass(frozen=True)
class AdmissionPolicy:
    """Bounds the gateway enforces before accepting a submission.

    Attributes
    ----------
    max_pending_per_tenant:
        Maximum unprocessed submissions one tenant's intake queue may
        hold (its quota).
    max_pending_total:
        Maximum unprocessed submissions across *all* tenants — the
        fleet's global backpressure bound.
    retry_after_seconds:
        The backoff hint attached to overload/quota rejections (breaker
        rejections hint the breaker's own remaining cooldown instead).
    """

    max_pending_per_tenant: int = 64
    max_pending_total: int = 1024
    retry_after_seconds: float = 1.0

    def __post_init__(self):
        if self.max_pending_per_tenant < 1:
            raise ValueError(
                "max_pending_per_tenant must be >= 1, got "
                f"{self.max_pending_per_tenant}"
            )
        if self.max_pending_total < 1:
            raise ValueError(
                f"max_pending_total must be >= 1, got {self.max_pending_total}"
            )
        if self.retry_after_seconds <= 0:
            raise ValueError(
                "retry_after_seconds must be > 0, got "
                f"{self.retry_after_seconds}"
            )

    def admit(
        self,
        tenant: str,
        *,
        tenant_pending: int,
        total_pending: int,
        tenant_storage=None,
        fleet_storage=None,
    ) -> None:
        """Raise the typed rejection when any bound is at capacity.

        The fleet-wide bound is checked first: when the whole fleet is
        saturated the answer is "overloaded" even for a tenant that is
        individually under quota.  ``tenant_storage`` / ``fleet_storage``
        are optional :class:`~repro.reliability.storage.StorageStatus`
        measurements — a hard watermark on either rejects with
        :class:`~repro.exceptions.StorageExhaustedError` (fleet-wide
        exhaustion, like fleet-wide overload, wins over the per-tenant
        view), again before anything is written.
        """
        for status, scope in ((fleet_storage, "fleet"), (tenant_storage, tenant)):
            if status is None or not status.read_only:
                continue
            record_event(
                "admission-rejected",
                "fleet.admission",
                tenant=tenant,
                reason="storage-exhausted",
                scope=scope,
                used_bytes=status.used_bytes,
                hard_bytes=status.hard_bytes,
            )
            raise StorageExhaustedError(
                f"durable storage for {scope!r} is at its hard watermark "
                f"({status.used_bytes}B >= {status.hard_bytes}B); degraded "
                f"to read-only — retry in {status.retry_after_seconds:g}s",
                tenant=tenant if scope != "fleet" else None,
                retry_after_seconds=status.retry_after_seconds,
            )
        if total_pending >= self.max_pending_total:
            record_event(
                "admission-rejected",
                "fleet.admission",
                tenant=tenant,
                reason="fleet-overloaded",
                total_pending=total_pending,
            )
            raise FleetOverloadedError(
                f"fleet intake is at capacity ({total_pending}/"
                f"{self.max_pending_total} pending submissions); retry in "
                f"{self.retry_after_seconds:g}s",
                retry_after_seconds=self.retry_after_seconds,
            )
        if tenant_pending >= self.max_pending_per_tenant:
            record_event(
                "admission-rejected",
                "fleet.admission",
                tenant=tenant,
                reason="tenant-quota",
                tenant_pending=tenant_pending,
            )
            raise TenantQuotaExceededError(
                f"tenant {tenant!r} is at its intake quota ({tenant_pending}/"
                f"{self.max_pending_per_tenant} pending submissions); retry "
                f"in {self.retry_after_seconds:g}s",
                tenant=tenant,
                retry_after_seconds=self.retry_after_seconds,
            )
