"""The durable intake queue: a webhook submission, once accepted, survives.

The fleet gateway's contract is *accept-then-never-lose*: a submission
that passes admission control is appended to the tenant's intake queue —
an append-only, CRC'd JSON-lines file, fsynced like the event journal —
before anything evaluates it.  A crash between acceptance and processing
therefore loses nothing: the next drain replays the queue, and replay is
idempotent *by sequence* because every submission records the repository
sequence it will become.

Record kinds
------------
``cursor``
    Written once at queue creation: the tenant repository's length at
    that moment.  Every later repository sequence is derived from it, so
    the queue is self-describing even when empty or freshly compacted.
``submission``
    One accepted webhook submission: the pickled model (base64, like the
    journal's ``commit-received`` records), message, author, and the
    ``repo_sequence`` this submission will occupy in the tenant's
    repository.  Submissions are processed strictly in order, so the
    mapping is fixed at append time.
``ack``
    The submission at ``repo_sequence`` has been fully processed (its
    commit is journaled in the tenant's own event journal).  A crash
    *between* the commit landing in the tenant journal and the ack being
    appended is healed at the next drain: the entry's ``repo_sequence``
    is already below the repository length, so the drain re-acks it
    without re-running the build — never a duplicate.

Crash model
-----------
Identical to :class:`repro.ci.persistence.EventJournal`: every append is
flushed (and fsynced) before returning; a torn *trailing* line is a
crash artifact whose event never happened — it is quarantined into a
sidecar file and truncated at the next open; garbage followed by intact
records is real corruption and raises :class:`PersistenceError`.
The ``intake.append`` fault-injection point simulates the mid-append
crash (``tear``); ``intake.write`` simulates the disk filling or dying
(``errno`` → ``ENOSPC``/``EIO``) before any byte lands.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Callable, Iterator

from repro.ci.persistence import decode_model, encode_model
from repro.exceptions import PersistenceError
from repro.reliability.events import record_event
from repro.reliability.faults import InjectedFault, fault_point, torn_bytes

__all__ = ["IntakeRecord", "IntakeScan", "IntakeQueue", "scan_intake"]

_CURSOR = "cursor"
_SUBMISSION = "submission"
_ACK = "ack"
_KINDS = frozenset({_CURSOR, _SUBMISSION, _ACK})


def _crc32(data: bytes) -> int:
    return zlib.crc32(data) & 0xFFFFFFFF


def _parse_intake_line(line: str) -> dict[str, Any] | None:
    """Parse one intake line, or ``None`` when it is not an intact record.

    ``None`` covers unparseable JSON, a missing/unknown ``kind``, a
    missing sequence, and a CRC mismatch against the canonical
    serialization of the rest of the line.
    """
    try:
        raw = json.loads(line)
        int(raw["sequence"])
        if raw["kind"] not in _KINDS:
            return None
    except (ValueError, KeyError, TypeError):
        return None
    if not isinstance(raw, dict):
        return None
    crc = raw.pop("crc", None)
    if crc is None:
        return None
    body = json.dumps(raw, sort_keys=True).encode("utf-8")
    if crc != _crc32(body):
        return None
    return raw


@dataclass(frozen=True)
class IntakeRecord:
    """One intact intake-queue record.

    Attributes
    ----------
    sequence:
        File-wide 1-based append counter (monotonic across compactions).
    kind:
        ``"cursor"``, ``"submission"`` or ``"ack"``.
    repo_sequence:
        For cursors: the repository length the queue starts from.  For
        submissions: the repository sequence this submission becomes.
        For acks: the acknowledged submission's ``repo_sequence``.
    payload:
        Submission-only content (``model_pickle``, ``message``,
        ``author``).
    recorded_at:
        ISO-8601 UTC stamp (operational metadata, never load-bearing).
    """

    sequence: int
    kind: str
    repo_sequence: int
    recorded_at: str
    payload: dict[str, Any] = field(default_factory=dict)

    def model(self) -> Any:
        """Unpickle the submitted model (submission records only)."""
        return decode_model(self.payload["model_pickle"])


@dataclass(frozen=True)
class IntakeScan:
    """Read-only classification of an intake file (fleet fsck).

    Attributes
    ----------
    path:
        The scanned intake file.
    exists:
        Whether the file exists at all.
    records:
        Count of intact records (all kinds).
    pending:
        Submissions with no ack — the replay a drain would perform.
    acked:
        Submissions already acknowledged.
    corrupt_lines:
        1-based numbers of damaged lines *followed by* intact records
        (real corruption; reading raises).
    torn_tail_bytes:
        Size of the invalid trailing region (tolerated crash artifact).
    """

    path: Path
    exists: bool
    records: int
    pending: int
    acked: int
    corrupt_lines: tuple[int, ...]
    torn_tail_bytes: int


class IntakeQueue:
    """One tenant's durable intake queue.

    Parameters
    ----------
    path:
        The intake file (``<tenant-dir>/intake.jsonl``).  Created — with
        its genesis cursor — by :meth:`create`; opening an existing file
        scans it once, healing a torn trailing line exactly like the
        event journal.
    sync:
        Fsync every append (default).  Turning it off trades the
        accept-then-never-lose guarantee for throughput.
    clock:
        Timestamp source for ``recorded_at``; injectable for tests.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        sync: bool = True,
        clock: Callable[[], datetime] | None = None,
    ):
        self.path = Path(path)
        self.sync = bool(sync)
        self._clock = clock or (lambda: datetime.now(timezone.utc))
        self._base = 0
        self._next_sequence = 1
        self._next_repo_sequence = 0
        self._acked: set[int] = set()
        self._pending: dict[int, IntakeRecord] = {}
        if self.path.exists():
            self._open_and_scan()
        else:
            raise PersistenceError(
                f"intake queue {self.path} does not exist; create it with "
                "IntakeQueue.create()"
            )

    @classmethod
    def create(
        cls,
        path: str | Path,
        *,
        base_repo_sequence: int = 0,
        sync: bool = True,
        clock: Callable[[], datetime] | None = None,
    ) -> "IntakeQueue":
        """Create a fresh queue anchored at ``base_repo_sequence``.

        The genesis cursor records the tenant repository's length at
        creation, so every later submission's ``repo_sequence`` is
        derivable from the file alone.
        """
        path = Path(path)
        if path.exists():
            raise PersistenceError(f"intake queue {path} already exists")
        path.parent.mkdir(parents=True, exist_ok=True)
        stamp = (clock or (lambda: datetime.now(timezone.utc)))()
        record = {
            "sequence": 1,
            "kind": _CURSOR,
            "repo_sequence": int(base_repo_sequence),
            "recorded_at": stamp.isoformat(),
            "payload": {},
        }
        body = json.dumps(record, sort_keys=True).encode("utf-8")
        record["crc"] = _crc32(body)
        data = (json.dumps(record, sort_keys=True) + "\n").encode("utf-8")
        with open(path, "wb") as handle:
            handle.write(data)
            handle.flush()
            if sync:
                os.fsync(handle.fileno())
        return cls(path, sync=sync, clock=clock)

    # -- scanning ------------------------------------------------------------
    def _open_and_scan(self) -> None:
        """Fold every intact record into counters; heal a torn tail.

        Mirrors :meth:`EventJournal._repair_and_scan`: the torn trailing
        bytes are quarantined into a sidecar (forensics, never state) and
        truncated so the append-mode writer cannot merge into them.
        """
        raw = self.path.read_bytes()
        valid_end = offset = 0
        for chunk in raw.splitlines(keepends=True):
            offset += len(chunk)
            line = chunk.decode("utf-8", errors="replace").strip()
            if not line:
                valid_end = offset
                continue
            parsed = _parse_intake_line(line)
            if parsed is None:
                continue  # valid_end stays put; trailing garbage truncates
            self._fold(parsed)
            valid_end = offset
        if valid_end < len(raw):
            torn = raw[valid_end:]
            sidecar = self.path.with_name(
                f"{self.path.name}.torn-{valid_end}.quarantined"
            )
            sidecar.write_bytes(torn)
            record_event(
                "intake-torn-tail",
                "fleet.intake",
                intake=str(self.path),
                quarantined=str(sidecar),
                torn_bytes=len(torn),
            )
            with open(self.path, "r+b") as handle:
                handle.truncate(valid_end)

    def _fold(self, parsed: dict[str, Any]) -> None:
        record = IntakeRecord(
            sequence=int(parsed["sequence"]),
            kind=str(parsed["kind"]),
            repo_sequence=int(parsed["repo_sequence"]),
            recorded_at=str(parsed.get("recorded_at", "")),
            payload=dict(parsed.get("payload") or {}),
        )
        self._next_sequence = max(self._next_sequence, record.sequence + 1)
        if record.kind == _CURSOR:
            self._base = record.repo_sequence
            self._next_repo_sequence = max(
                self._next_repo_sequence, record.repo_sequence
            )
        elif record.kind == _SUBMISSION:
            self._pending[record.repo_sequence] = record
            self._next_repo_sequence = max(
                self._next_repo_sequence, record.repo_sequence + 1
            )
        elif record.kind == _ACK:
            self._acked.add(record.repo_sequence)
            self._pending.pop(record.repo_sequence, None)

    # -- inspection ----------------------------------------------------------
    @property
    def next_repo_sequence(self) -> int:
        """The repository sequence the next accepted submission becomes."""
        return self._next_repo_sequence

    @property
    def pending_count(self) -> int:
        """Accepted-but-unacknowledged submissions (the queue's depth)."""
        return len(self._pending)

    @property
    def acked_count(self) -> int:
        """Submissions acknowledged since the last compaction."""
        return len(self._acked)

    def pending(self) -> list[IntakeRecord]:
        """Unacknowledged submissions, in repository-sequence order."""
        return [self._pending[key] for key in sorted(self._pending)]

    # -- writing -------------------------------------------------------------
    def _append_record(
        self, kind: str, repo_sequence: int, payload: dict[str, Any]
    ) -> IntakeRecord:
        record = IntakeRecord(
            sequence=self._next_sequence,
            kind=kind,
            repo_sequence=int(repo_sequence),
            recorded_at=self._clock().isoformat(),
            payload=payload,
        )
        rendered = {
            "sequence": record.sequence,
            "kind": record.kind,
            "repo_sequence": record.repo_sequence,
            "recorded_at": record.recorded_at,
            "payload": dict(record.payload),
        }
        body = json.dumps(rendered, sort_keys=True).encode("utf-8")
        rendered["crc"] = _crc32(body)
        data = (json.dumps(rendered, sort_keys=True) + "\n").encode("utf-8")
        torn = torn_bytes(data, fault_point("intake.append"))
        fault_point("intake.write")  # errno: the disk fills before any byte lands
        with open(self.path, "ab") as handle:
            handle.write(data if torn is None else torn)
            handle.flush()
            if self.sync:
                os.fsync(handle.fileno())
            if torn is not None:
                raise InjectedFault(
                    "intake.append", f"write torn at byte {len(torn)}"
                )
        self._next_sequence += 1
        return record

    def append(
        self, model: Any, *, message: str = "", author: str = "developer"
    ) -> IntakeRecord:
        """Durably accept one submission; fsynced before returning.

        The returned record's ``repo_sequence`` is the submission's
        identity for acknowledgement and for locating its eventual build
        (``BuildRecord.commit.sequence`` equals it).

        Fault-injection point: ``intake.append`` (``tear`` writes a
        partial line then raises — the crash-mid-accept the next open
        self-heals; by the crash model the submission was *not*
        accepted).
        """
        record = self._append_record(
            _SUBMISSION,
            self._next_repo_sequence,
            {
                "model_pickle": encode_model(model),
                "message": str(message),
                "author": str(author),
            },
        )
        self._pending[record.repo_sequence] = record
        self._next_repo_sequence = record.repo_sequence + 1
        return record

    def ack(self, repo_sequence: int) -> IntakeRecord:
        """Durably mark the submission at ``repo_sequence`` processed."""
        record = self._append_record(_ACK, repo_sequence, {})
        self._acked.add(record.repo_sequence)
        self._pending.pop(record.repo_sequence, None)
        return record

    def compact(self) -> int:
        """Atomically rewrite the file without acknowledged submissions.

        Keeps a fresh cursor (anchored past every acknowledged
        submission) plus the pending entries, preserving their original
        sequences — so a fleet that evicts a tenant bounds that tenant's
        intake file by its *pending* depth, not its lifetime traffic.
        Returns the number of records dropped.  Written
        temp-then-rename, so a crash mid-compaction leaves the previous
        file intact.
        """
        pending = self.pending()
        base = self._next_repo_sequence - len(pending)
        stamp = self._clock().isoformat()
        lines = []
        cursor = {
            "sequence": self._next_sequence,
            "kind": _CURSOR,
            "repo_sequence": base,
            "recorded_at": stamp,
            "payload": {},
        }
        records = [cursor] + [
            {
                "sequence": record.sequence,
                "kind": record.kind,
                "repo_sequence": record.repo_sequence,
                "recorded_at": record.recorded_at,
                "payload": dict(record.payload),
            }
            for record in pending
        ]
        for rendered in records:
            body = json.dumps(rendered, sort_keys=True).encode("utf-8")
            rendered["crc"] = _crc32(body)
            lines.append(json.dumps(rendered, sort_keys=True))
        data = ("\n".join(lines) + "\n").encode("utf-8")
        temp = self.path.with_name(self.path.name + ".tmp")
        with open(temp, "wb") as handle:
            handle.write(data)
            handle.flush()
            if self.sync:
                os.fsync(handle.fileno())
        os.replace(temp, self.path)
        dropped = len(self._acked)
        self._acked.clear()
        self._base = base
        self._next_sequence = cursor["sequence"] + 1
        return dropped

    # -- reading -------------------------------------------------------------
    def records(self) -> Iterator[IntakeRecord]:
        """Yield every intact record, oldest first.

        A damaged line followed by intact records raises
        :class:`PersistenceError` (mirroring the journal's corruption
        contract); a torn trailing line was already healed at open.
        """
        if not self.path.exists():
            return
        lines = self.path.read_text(encoding="utf-8").splitlines()
        pending_error: PersistenceError | None = None
        for number, line in enumerate(lines, start=1):
            if not line.strip():
                continue
            parsed = _parse_intake_line(line)
            if parsed is None:
                pending_error = PersistenceError(
                    f"intake queue {self.path} line {number} is corrupt "
                    "(non-trailing): malformed or checksum mismatch"
                )
                continue
            if pending_error is not None:
                raise pending_error
            yield IntakeRecord(
                sequence=int(parsed["sequence"]),
                kind=str(parsed["kind"]),
                repo_sequence=int(parsed["repo_sequence"]),
                recorded_at=str(parsed.get("recorded_at", "")),
                payload=dict(parsed.get("payload") or {}),
            )


def scan_intake(path: str | Path) -> IntakeScan:
    """Classify an intake file without opening it for repair (read-only)."""
    path = Path(path)
    if not path.exists():
        return IntakeScan(
            path=path,
            exists=False,
            records=0,
            pending=0,
            acked=0,
            corrupt_lines=(),
            torn_tail_bytes=0,
        )
    raw = path.read_bytes()
    records = 0
    submissions: set[int] = set()
    acked: set[int] = set()
    invalid_offsets: list[tuple[int, int]] = []  # (line number, start offset)
    valid_end = offset = number = 0
    for chunk in raw.splitlines(keepends=True):
        start = offset
        offset += len(chunk)
        number += 1
        line = chunk.decode("utf-8", errors="replace").strip()
        if not line:
            valid_end = offset
            continue
        parsed = _parse_intake_line(line)
        if parsed is None:
            invalid_offsets.append((number, start))
            continue
        records += 1
        valid_end = offset
        if parsed["kind"] == _SUBMISSION:
            submissions.add(int(parsed["repo_sequence"]))
        elif parsed["kind"] == _ACK:
            acked.add(int(parsed["repo_sequence"]))
    return IntakeScan(
        path=path,
        exists=True,
        records=records,
        pending=len(submissions - acked),
        acked=len(submissions & acked),
        corrupt_lines=tuple(
            n for n, start in invalid_offsets if start < valid_end
        ),
        torn_tail_bytes=len(raw) - valid_end,
    )
