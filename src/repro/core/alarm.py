"""The "new testset alarm" system utility (§2.3).

The alarm watches the engine's testset consumption and fires when the
current testset can no longer support the next committed model:

* ``BUDGET_EXHAUSTED`` — the pre-defined budget of ``H`` evaluations is
  spent (non-adaptive and fully-adaptive scenarios, §3.2–3.3);
* ``FIRST_CHANGE_PASS`` — a commit passed under ``firstChange``
  adaptivity, which retires the testset immediately (§3.4).

Alarm events carry enough context for the integration team to act (which
testset, after how many uses, why), and observers — e.g. an email
transport — can subscribe to be notified.

With a :class:`~repro.core.testset.TestsetPool` attached to the engine
the alarm's meaning shifts from "commits are blocked" to "one generation
of runway was consumed": retirement still fires the alarm exactly as
above, but the next submit rotates to the pool's next generation instead
of raising, and a :class:`~repro.core.testset.GenerationRotationEvent`
follows through the notification channel.  The pool's low-watermark
callback (not this alarm) is then the "label a new set now" signal.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable

__all__ = ["AlarmReason", "AlarmEvent", "NewTestsetAlarm"]


class AlarmReason(enum.Enum):
    """Why a fresh testset is needed."""

    BUDGET_EXHAUSTED = "budget-exhausted"
    FIRST_CHANGE_PASS = "first-change-pass"


@dataclass(frozen=True)
class AlarmEvent:
    """A fired alarm.

    Attributes
    ----------
    reason:
        Why the testset retired.
    testset_name:
        Name of the retired testset (now released to developers).
    uses:
        Evaluations the testset served before retiring.
    generation:
        Which testset generation retired (1-based).
    message:
        Rendered human-readable summary (what the alarm email would say).
    """

    reason: AlarmReason
    testset_name: str
    uses: int
    generation: int
    message: str


class NewTestsetAlarm:
    """Collects alarm events and fans them out to subscribers.

    Subscribers are callables taking an :class:`AlarmEvent`; exceptions
    from subscribers propagate (a CI deployment would rather fail loudly
    than silently drop an alarm).

    Fired events are durable alarm *state* and round-trip through
    pickling/snapshots; subscribers are runtime wiring (like repository
    observers and pool callbacks) and are dropped — re-subscribe after a
    restore.
    """

    def __init__(self):
        self._events: list[AlarmEvent] = []
        self._subscribers: list[Callable[[AlarmEvent], None]] = []

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state["_subscribers"] = []  # runtime wiring, not alarm state
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    @property
    def events(self) -> list[AlarmEvent]:
        """All fired events, in order."""
        return list(self._events)

    @property
    def fired(self) -> bool:
        """Whether any alarm has fired."""
        return bool(self._events)

    def subscribe(self, callback: Callable[[AlarmEvent], None]) -> None:
        """Register an observer for future alarm events."""
        self._subscribers.append(callback)

    def fire(
        self,
        reason: AlarmReason,
        *,
        testset_name: str,
        uses: int,
        generation: int,
    ) -> AlarmEvent:
        """Fire an alarm and notify subscribers; returns the event."""
        if reason is AlarmReason.BUDGET_EXHAUSTED:
            detail = (
                f"testset {testset_name!r} has served its full budget of "
                f"{uses} evaluations"
            )
        else:
            detail = (
                f"a commit passed under firstChange adaptivity after "
                f"{uses} evaluations on testset {testset_name!r}"
            )
        event = AlarmEvent(
            reason=reason,
            testset_name=testset_name,
            uses=uses,
            generation=generation,
            message=(
                f"[ease.ml/ci] new testset required (generation {generation}): "
                f"{detail}. The old testset is released and may now be used "
                "as a development set."
            ),
        )
        self._events.append(event)
        for subscriber in self._subscribers:
            subscriber(event)
        return event
