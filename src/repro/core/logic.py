"""Three-valued logic and the fp-free / fn-free decision mapping.

Appendix A.2: a clause evaluated over confidence intervals returns one of
{True, False, Unknown}.  The ``mode`` parameter of an ease.ml/ci script
maps this ternary outcome onto the binary pass/fail signal:

* ``fp-free`` — Unknown ⇒ False.  Whenever the system says "pass", the
  condition genuinely holds (with probability ``1 - delta``); the price is
  possible false *negatives* within the tolerance band.
* ``fn-free`` — Unknown ⇒ True.  Whenever the system says "fail", the
  condition genuinely fails; the price is possible false *positives*.

Conjunction follows Kleene's strong three-valued logic: False dominates,
then Unknown, then True.
"""

from __future__ import annotations

import enum
from typing import Iterable

from repro.exceptions import InvalidParameterError

__all__ = ["TernaryResult", "Mode", "ternary_and", "resolve_ternary"]


class TernaryResult(enum.Enum):
    """Kleene three-valued truth value."""

    TRUE = "true"
    FALSE = "false"
    UNKNOWN = "unknown"

    def __bool__(self) -> bool:  # pragma: no cover - guard rail
        raise TypeError(
            "TernaryResult cannot be coerced to bool; use resolve_ternary() "
            "with an explicit mode"
        )

    def __and__(self, other: "TernaryResult") -> "TernaryResult":
        return ternary_and((self, other))


class Mode(enum.Enum):
    """The script's ``mode`` field: which error kind is eliminated."""

    FP_FREE = "fp-free"
    FN_FREE = "fn-free"

    @classmethod
    def parse(cls, text: str) -> "Mode":
        """Parse the script spelling (``fp-free`` / ``fn-free``)."""
        normalized = text.strip().lower()
        for mode in cls:
            if mode.value == normalized:
                return mode
        raise InvalidParameterError(
            f"unknown mode {text!r}; expected 'fp-free' or 'fn-free'"
        )


def ternary_and(values: Iterable[TernaryResult]) -> TernaryResult:
    """Kleene conjunction: False < Unknown < True.

    An empty conjunction is True (the neutral element), matching the
    convention for ``all()``.
    """
    result = TernaryResult.TRUE
    for value in values:
        if not isinstance(value, TernaryResult):
            raise InvalidParameterError(f"expected TernaryResult, got {value!r}")
        if value is TernaryResult.FALSE:
            return TernaryResult.FALSE
        if value is TernaryResult.UNKNOWN:
            result = TernaryResult.UNKNOWN
    return result


def resolve_ternary(value: TernaryResult, mode: Mode | str) -> bool:
    """Collapse a ternary outcome to the binary pass/fail signal.

    Parameters
    ----------
    value:
        The three-valued evaluation outcome.
    mode:
        ``Mode.FP_FREE`` (Unknown → False) or ``Mode.FN_FREE``
        (Unknown → True); strings are parsed with :meth:`Mode.parse`.
    """
    if isinstance(mode, str):
        mode = Mode.parse(mode)
    if value is TernaryResult.TRUE:
        return True
    if value is TernaryResult.FALSE:
        return False
    return mode is Mode.FN_FREE
