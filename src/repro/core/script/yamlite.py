"""A from-scratch YAML-subset parser for ``.travis.yml``-style files.

ease.ml/ci scripts extend the Travis CI configuration format with an
``ml:`` section (§2.2).  This module implements exactly the YAML subset
those files use — block mappings, block sequences, scalars, comments —
with no external dependency:

* block mappings: ``key: value`` with nesting by indentation;
* block sequences: ``- item`` where an item is a scalar or a (possibly
  inline-starting) mapping — the paper's scripts are sequences of
  single-entry mappings, e.g. ``- condition : n - o > 0.02 +/- 0.01``;
* scalars: strings (optionally single/double quoted), integers, floats,
  booleans (``true/false``), ``null``;
* ``#`` comments and blank lines.

Intentionally **not** supported (out of scope for CI configs): anchors,
aliases, tags, flow collections, multi-line strings, documents.  Inputs
using those raise :class:`~repro.exceptions.ScriptError` rather than
being misparsed.

The value grammar is whitespace-tolerant around ``:`` (the paper's
examples write ``key : value``), and scalar values containing ``:`` are
kept intact when they cannot start a nested mapping (e.g. condition
strings and email addresses).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.exceptions import ScriptError

__all__ = ["parse_yamlite"]


@dataclass
class _Line:
    indent: int
    content: str
    number: int  # 1-based source line number


def _logical_lines(text: str) -> list[_Line]:
    lines: list[_Line] = []
    for number, raw in enumerate(text.splitlines(), start=1):
        without_comment = _strip_comment(raw)
        stripped = without_comment.strip()
        if not stripped:
            continue
        if "\t" in raw[: len(raw) - len(raw.lstrip())]:
            raise ScriptError(f"line {number}: tabs are not allowed in indentation")
        indent = len(without_comment) - len(without_comment.lstrip(" "))
        lines.append(_Line(indent=indent, content=stripped, number=number))
    return lines


def _strip_comment(line: str) -> str:
    """Remove a trailing ``#`` comment, respecting quoted strings."""
    out: list[str] = []
    quote: str | None = None
    for ch in line:
        if quote:
            out.append(ch)
            if ch == quote:
                quote = None
            continue
        if ch in ("'", '"'):
            quote = ch
            out.append(ch)
            continue
        if ch == "#":
            break
        out.append(ch)
    return "".join(out)


def parse_yamlite(text: str) -> Any:
    """Parse a YAML-subset document into dicts / lists / scalars.

    Returns ``None`` for an empty document.

    Raises
    ------
    ScriptError
        On inconsistent indentation, unsupported constructs, or duplicate
        mapping keys.
    """
    lines = _logical_lines(text)
    if not lines:
        return None
    for line in lines:
        if line.content.startswith(("&", "*", "!")) or line.content in ("---", "..."):
            raise ScriptError(
                f"line {line.number}: YAML feature {line.content.split()[0]!r} "
                "is not supported by the yamlite subset"
            )
    value, next_index = _parse_block(lines, 0, lines[0].indent)
    if next_index != len(lines):
        stray = lines[next_index]
        raise ScriptError(
            f"line {stray.number}: unexpected content at indentation "
            f"{stray.indent} (expected indentation {lines[0].indent})"
        )
    return value


def _parse_block(lines: list[_Line], index: int, indent: int) -> tuple[Any, int]:
    """Parse the block starting at ``lines[index]`` with given indentation."""
    line = lines[index]
    if line.content.startswith("- ") or line.content == "-":
        return _parse_sequence(lines, index, indent)
    return _parse_mapping(lines, index, indent)


def _parse_sequence(lines: list[_Line], index: int, indent: int) -> tuple[list, int]:
    items: list[Any] = []
    while index < len(lines):
        line = lines[index]
        if line.indent != indent or not (
            line.content.startswith("- ") or line.content == "-"
        ):
            break
        inner = line.content[1:].strip()
        if not inner:
            # A nested block follows on subsequent, deeper-indented lines.
            if index + 1 < len(lines) and lines[index + 1].indent > indent:
                value, index = _parse_block(lines, index + 1, lines[index + 1].indent)
                items.append(value)
                continue
            items.append(None)
            index += 1
            continue
        key_value = _try_split_mapping_entry(inner)
        if key_value is not None:
            key, rest = key_value
            entry: dict[str, Any] = {}
            if rest:
                entry[key] = _parse_scalar(rest)
                index += 1
            else:
                if index + 1 < len(lines) and lines[index + 1].indent > indent:
                    value, index = _parse_block(
                        lines, index + 1, lines[index + 1].indent
                    )
                    entry[key] = value
                else:
                    entry[key] = None
                    index += 1
            # Additional sibling keys of the same item appear indented
            # under the dash at indent + 2 (the "- key:\n  key2:" layout).
            while index < len(lines) and lines[index].indent == indent + 2:
                sibling, index = _parse_mapping(lines, index, indent + 2)
                for k, v in sibling.items():
                    if k in entry:
                        raise ScriptError(
                            f"line {lines[index - 1].number}: duplicate key {k!r}"
                        )
                    entry[k] = v
            items.append(entry)
            continue
        items.append(_parse_scalar(inner))
        index += 1
    return items, index


def _parse_mapping(lines: list[_Line], index: int, indent: int) -> tuple[dict, int]:
    mapping: dict[str, Any] = {}
    while index < len(lines):
        line = lines[index]
        if line.indent != indent:
            if line.indent > indent:
                raise ScriptError(
                    f"line {line.number}: unexpected indentation {line.indent} "
                    f"(expected {indent})"
                )
            break
        if line.content.startswith("- "):
            break
        key_value = _try_split_mapping_entry(line.content)
        if key_value is None:
            raise ScriptError(
                f"line {line.number}: expected 'key: value', got "
                f"{line.content!r}"
            )
        key, rest = key_value
        if key in mapping:
            raise ScriptError(f"line {line.number}: duplicate key {key!r}")
        if rest:
            mapping[key] = _parse_scalar(rest)
            index += 1
            continue
        if index + 1 < len(lines) and lines[index + 1].indent > indent:
            value, index = _parse_block(lines, index + 1, lines[index + 1].indent)
            mapping[key] = value
        else:
            mapping[key] = None
            index += 1
    return mapping, index


def _try_split_mapping_entry(content: str) -> tuple[str, str] | None:
    """Split ``key : value`` at the first top-level colon.

    Returns ``None`` when the content cannot be a mapping entry (no colon,
    or the colon sits inside a quoted string).  A colon must be followed
    by whitespace or end-of-line to count as the separator — this keeps
    scalar values like ``xx@abc.com:8080`` or times intact.
    """
    quote: str | None = None
    for i, ch in enumerate(content):
        if quote:
            if ch == quote:
                quote = None
            continue
        if ch in ("'", '"'):
            quote = ch
            continue
        if ch == ":" and (i + 1 == len(content) or content[i + 1] in " \t"):
            key = content[:i].strip()
            if not key:
                return None
            return key, content[i + 1 :].strip()
    return None


def _parse_scalar(text: str) -> Any:
    """Interpret a scalar token: quoted string, bool, null, number or str."""
    if len(text) >= 2 and text[0] == text[-1] and text[0] in ("'", '"'):
        return text[1:-1]
    lowered = text.lower()
    if lowered in ("true", "yes", "on"):
        return True
    if lowered in ("false", "no", "off"):
        return False
    if lowered in ("null", "~", "none"):
        return None
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text
