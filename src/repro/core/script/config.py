"""Typed representation of an ease.ml/ci script (§2.2).

A script is a ``.travis.yml`` file with an ``ml:`` section::

    ml:
      - script     : ./test_model.py
      - condition  : n - o > 0.02 +/- 0.01
      - reliability: 0.9999
      - mode       : fp-free
      - adaptivity : full
      - steps      : 32

:class:`CIScript` validates every field, parses the condition into the DSL
AST, and resolves the ``adaptivity: none -> email@host`` redirection
syntax into the mode plus a notification address.

One extension beyond the paper's syntax is accepted: an optional
``variance_bound`` field declaring an a-priori bound on the prediction
difference between consecutive commits, which is how the Figure 5
experiments communicate the "no more than 10% difference between any two
submissions" fact to the Pattern 2 optimizer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from repro.core.dsl.nodes import Formula
from repro.core.dsl.parser import parse_condition
from repro.core.estimators.adaptivity import Adaptivity
from repro.core.logic import Mode
from repro.core.script.yamlite import parse_yamlite
from repro.exceptions import ScriptError
from repro.utils.validation import check_positive_int, check_probability

__all__ = ["CIScript"]

_KNOWN_FIELDS = {
    "script",
    "condition",
    "reliability",
    "mode",
    "adaptivity",
    "steps",
    "variance_bound",
}


@dataclass(frozen=True)
class CIScript:
    """A validated ease.ml/ci configuration.

    Attributes
    ----------
    condition:
        The parsed test condition.
    condition_source:
        The original condition text (kept for display round-trips).
    reliability:
        ``1 - delta``; the probability with which every signal is valid.
    mode:
        ``fp-free`` or ``fn-free`` (Unknown-resolution semantics).
    adaptivity:
        ``none`` / ``full`` / ``firstChange``.
    steps:
        Testset budget ``H``.
    script_path:
        The user's test entry point (carried through; the engine does not
        execute it — model evaluation happens in-process).
    notification_email:
        Third-party address for true signals under ``adaptivity: none``.
    variance_bound:
        Optional a-priori bound on consecutive-model prediction
        difference (extension; enables Pattern 2 sizing).
    """

    condition: Formula
    condition_source: str
    reliability: float
    mode: Mode
    adaptivity: Adaptivity
    steps: int
    script_path: str | None = None
    notification_email: str | None = None
    variance_bound: float | None = None

    def __post_init__(self) -> None:
        check_probability(self.reliability, "reliability")
        check_positive_int(self.steps, "steps")
        if self.variance_bound is not None:
            check_probability(self.variance_bound, "variance_bound")
        if self.adaptivity is Adaptivity.NONE and not self.notification_email:
            raise ScriptError(
                "adaptivity 'none' requires a third-party notification "
                "address: write adaptivity : none -> someone@example.com"
            )

    @property
    def delta(self) -> float:
        """The failure budget ``1 - reliability``."""
        return 1.0 - self.reliability

    # -- constructors -----------------------------------------------------------
    @classmethod
    def from_dict(cls, fields: Mapping[str, Any]) -> "CIScript":
        """Build from a flat mapping of script fields (already merged)."""
        unknown = set(fields) - _KNOWN_FIELDS
        if unknown:
            raise ScriptError(
                f"unknown ml-section fields: {sorted(unknown)}; expected a "
                f"subset of {sorted(_KNOWN_FIELDS)}"
            )
        missing = {"condition", "reliability", "mode", "adaptivity", "steps"} - set(
            fields
        )
        if missing:
            raise ScriptError(f"ml section is missing required fields: {sorted(missing)}")

        condition_source = str(fields["condition"]).strip()
        try:
            condition = parse_condition(condition_source)
        except Exception as exc:
            raise ScriptError(f"invalid condition {condition_source!r}: {exc}") from exc

        adaptivity_raw = str(fields["adaptivity"]).strip()
        try:
            adaptivity, email = cls._parse_adaptivity(adaptivity_raw)
        except ScriptError:
            raise
        except Exception as exc:
            raise ScriptError(str(exc)) from exc

        reliability = fields["reliability"]
        if not isinstance(reliability, (int, float)) or isinstance(reliability, bool):
            raise ScriptError(f"reliability must be a number, got {reliability!r}")

        steps = fields["steps"]
        if isinstance(steps, bool) or not isinstance(steps, int):
            raise ScriptError(f"steps must be an integer, got {steps!r}")

        mode_raw = str(fields["mode"]).strip()
        try:
            mode = Mode.parse(mode_raw)
        except Exception as exc:
            raise ScriptError(str(exc)) from exc

        variance_bound = fields.get("variance_bound")
        if variance_bound is not None and (
            isinstance(variance_bound, bool)
            or not isinstance(variance_bound, (int, float))
        ):
            raise ScriptError(
                f"variance_bound must be a number, got {variance_bound!r}"
            )

        script_path = fields.get("script")
        try:
            return cls(
                condition=condition,
                condition_source=condition_source,
                reliability=float(reliability),
                mode=mode,
                adaptivity=adaptivity,
                steps=steps,
                script_path=None if script_path is None else str(script_path),
                notification_email=email,
                variance_bound=None if variance_bound is None else float(variance_bound),
            )
        except ScriptError:
            raise
        except Exception as exc:
            raise ScriptError(str(exc)) from exc

    @classmethod
    def from_yaml(cls, text: str) -> "CIScript":
        """Parse a full ``.travis.yml``-style document and extract ``ml:``."""
        document = parse_yamlite(text)
        if not isinstance(document, dict) or "ml" not in document:
            raise ScriptError("document has no 'ml' section")
        section = document["ml"]
        return cls.from_dict(cls._merge_ml_section(section))

    @classmethod
    def from_file(cls, path: str | Path) -> "CIScript":
        """Read and parse a script file."""
        return cls.from_yaml(Path(path).read_text())

    # -- helpers --------------------------------------------------------------
    @staticmethod
    def _merge_ml_section(section: Any) -> dict[str, Any]:
        """The paper's ml section is a list of single-key maps; merge it.

        A plain mapping is also accepted (the natural YAML alternative).
        """
        if isinstance(section, dict):
            return dict(section)
        if isinstance(section, list):
            merged: dict[str, Any] = {}
            for item in section:
                if not isinstance(item, dict):
                    raise ScriptError(
                        f"ml section entries must be 'key: value' items, got {item!r}"
                    )
                for key, value in item.items():
                    if key in merged:
                        raise ScriptError(f"duplicate ml field {key!r}")
                    merged[key] = value
            return merged
        raise ScriptError(f"ml section must be a list or mapping, got {section!r}")

    @staticmethod
    def _parse_adaptivity(text: str) -> tuple[Adaptivity, str | None]:
        """Resolve ``none -> xx@abc.com`` into (mode, email)."""
        if "->" in text:
            mode_part, _, email_part = text.partition("->")
            adaptivity = Adaptivity.parse(mode_part)
            email = email_part.strip()
            if adaptivity is not Adaptivity.NONE:
                raise ScriptError(
                    "an email redirection is only meaningful with "
                    f"adaptivity 'none', got {text!r}"
                )
            if not email or "@" not in email:
                raise ScriptError(f"invalid notification address {email!r}")
            return adaptivity, email
        return Adaptivity.parse(text), None

    def describe(self) -> str:
        """Render the script back as an ml section (for logs/examples)."""
        lines = ["ml:"]
        if self.script_path:
            lines.append(f"  - script     : {self.script_path}")
        lines.append(f"  - condition  : {self.condition_source}")
        lines.append(f"  - reliability: {self.reliability}")
        lines.append(f"  - mode       : {self.mode.value}")
        adaptivity = self.adaptivity.value
        if self.notification_email:
            adaptivity += f" -> {self.notification_email}"
        lines.append(f"  - adaptivity : {adaptivity}")
        lines.append(f"  - steps      : {self.steps}")
        if self.variance_bound is not None:
            lines.append(f"  - variance_bound : {self.variance_bound}")
        return "\n".join(lines)
