"""ease.ml/ci script parsing: the yamlite subset parser and the typed
:class:`CIScript` configuration object."""

from repro.core.script.yamlite import parse_yamlite
from repro.core.script.config import CIScript

__all__ = ["parse_yamlite", "CIScript"]
