"""Testset objects and their statistical-budget lifecycle (§2.3).

A :class:`Testset` is the labeled data the *integration team* provides.  A
:class:`TestsetManager` tracks how much statistical power remains: every
evaluation consumes one of the ``H`` budgeted uses; when the budget is
spent (or a ``firstChange`` pass retires the set early), the manager marks
the testset *released* — it may then be handed to the development team as
a validation set, and a fresh testset must be installed before the next
commit can be evaluated.

A :class:`TestsetPool` sits one level above the manager: an ordered queue
of *pending* generations the integration team has labeled ahead of time.
A pool-aware engine pops the next generation whenever the active one
retires, so heavy commit traffic flows across generations without ever
surfacing :class:`~repro.exceptions.TestsetExhaustedError` to callers —
the error remains only for a pool that is truly dry.  The pool also hosts
the *low-watermark* hook: when the runway (pending generations, or their
total remaining-evaluation budget) drops to the configured watermark, the
pool calls back into "label a new set now" workflows, giving the labeling
team lead time proportional to the commit rate instead of a hard stop.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro.exceptions import EngineStateError, TestsetExhaustedError
from repro.utils.validation import check_positive_int

__all__ = [
    "Testset",
    "TestsetManager",
    "TestsetPool",
    "PoolLowWatermarkEvent",
    "GenerationRotationEvent",
]


@dataclass
class Testset:
    """A labeled evaluation set.

    Attributes
    ----------
    labels:
        Ground-truth labels, shape ``(N,)``.
    features:
        Model inputs aligned with ``labels``.  For simulated experiments
        this is typically ``np.arange(N)`` — simulated models map example
        indices to predictions — but any array a model's ``predict``
        accepts works.
    name:
        Human-readable identifier used in alarms and logs.
    """

    labels: np.ndarray
    features: np.ndarray | None = None
    name: str = "testset"

    #: keep pytest from collecting this as a test class
    __test__ = False

    def __post_init__(self) -> None:
        self.labels = np.asarray(self.labels)
        if self.labels.ndim != 1:
            raise EngineStateError(
                f"labels must be one-dimensional, got shape {self.labels.shape}"
            )
        if self.features is None:
            self.features = np.arange(len(self.labels))
        else:
            self.features = np.asarray(self.features)
            if len(self.features) != len(self.labels):
                raise EngineStateError(
                    f"features ({len(self.features)}) and labels "
                    f"({len(self.labels)}) must align"
                )

    def __len__(self) -> int:
        return len(self.labels)

    @property
    def size(self) -> int:
        """Number of labeled examples."""
        return len(self.labels)

    def predict_with(self, model: Any) -> np.ndarray:
        """Run ``model.predict`` over this testset's features."""
        predictions = np.asarray(model.predict(self.features))
        if len(predictions) != len(self.labels):
            raise EngineStateError(
                f"model returned {len(predictions)} predictions for "
                f"{len(self.labels)} examples"
            )
        return predictions


@dataclass
class _TestsetRecord:
    """Internal bookkeeping for one testset generation."""

    testset: Testset
    budget: int
    uses: int = 0
    released: bool = False


class TestsetManager:
    """Tracks statistical-budget consumption across testset generations.

    Parameters
    ----------
    testset:
        The initial testset.
    budget:
        Number of evaluations (``steps`` / ``H``) the testset supports.

    Notes
    -----
    The manager is deliberately ignorant of *why* a testset retires —
    budget exhaustion vs. hybrid-mode early retirement — the engine
    decides that and calls :meth:`retire` accordingly.  The manager's
    invariants: a released testset can never be consumed again, and
    exactly one testset is active at a time.
    """

    __test__ = False  # not a test class despite the name

    def __init__(self, testset: Testset, budget: int):
        self._budget = check_positive_int(budget, "budget")
        self._current = _TestsetRecord(testset=testset, budget=self._budget)
        self._released: list[Testset] = []
        self._generation = 1

    # -- inspection ---------------------------------------------------------
    @property
    def current(self) -> Testset:
        """The active testset.

        Raises :class:`TestsetExhaustedError` if the current set has been
        released and no replacement installed.
        """
        if self._current.released:
            raise TestsetExhaustedError(
                f"testset {self._current.testset.name!r} has been released; "
                "install a fresh testset before evaluating further commits"
            )
        return self._current.testset

    @property
    def uses(self) -> int:
        """Evaluations consumed on the current testset."""
        return self._current.uses

    @property
    def remaining(self) -> int:
        """Evaluations left in the current budget (0 when released)."""
        if self._current.released:
            return 0
        return self._current.budget - self._current.uses

    @property
    def budget(self) -> int:
        """The current generation's full evaluation budget ``H``.

        Reported (alongside :attr:`uses` and :attr:`remaining`) on the
        service's operations surface; unlike :attr:`current` this stays
        readable after the generation retires.
        """
        return self._current.budget

    @property
    def generation(self) -> int:
        """1-based counter of testsets installed so far."""
        return self._generation

    @property
    def released_testsets(self) -> list[Testset]:
        """Retired testsets, now safe to hand to developers as dev sets."""
        return list(self._released)

    @property
    def is_exhausted(self) -> bool:
        """Whether a fresh testset is required before the next evaluation."""
        return self._current.released

    # -- lifecycle ------------------------------------------------------------
    def consume(self) -> int:
        """Spend one evaluation; returns the use count after spending.

        Raises
        ------
        TestsetExhaustedError
            When the current testset is already released.
        """
        if self._current.released:
            raise TestsetExhaustedError(
                "no statistical budget left: the current testset is released"
            )
        self._current.uses += 1
        return self._current.uses

    @property
    def budget_spent(self) -> bool:
        """True when the current testset has served its full budget."""
        return self._current.uses >= self._current.budget

    def retire(self) -> Testset:
        """Release the current testset (making it a dev set) and return it."""
        if self._current.released:
            raise EngineStateError("testset already released")
        self._current.released = True
        self._released.append(self._current.testset)
        return self._current.testset

    def install(self, testset: Testset, budget: int | None = None) -> None:
        """Install a fresh testset, starting a new generation.

        The previous testset must have been retired first — silently
        replacing a live testset would discard statistical budget without
        an audit trail.
        """
        if not self._current.released:
            raise EngineStateError(
                "retire() the current testset before installing a new one"
            )
        self._current = _TestsetRecord(
            testset=testset,
            budget=(
                check_positive_int(budget, "budget")
                if budget is not None
                else self._budget
            ),
        )
        self._generation += 1


# ---------------------------------------------------------------------------
# The testset pool: generations labeled ahead of time
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class PoolLowWatermarkEvent:
    """Fired when the pool's runway drops to (or below) the watermark.

    Attributes
    ----------
    pending_generations:
        Generations still queued in the pool after the pop that triggered
        the event.
    remaining_evaluations:
        Total evaluation budget left across those pending generations.
    popped_testset_name:
        Name of the generation that was just handed to the engine.
    message:
        Rendered human-readable summary (what a "label a new set now"
        ticket would say).
    """

    pending_generations: int
    remaining_evaluations: int
    popped_testset_name: str
    message: str


@dataclass(frozen=True)
class GenerationRotationEvent:
    """A pool-aware engine rotated to the next testset generation.

    Attributes
    ----------
    retired_testset_name:
        Name of the generation that just retired (now a dev set).
    installed_testset_name:
        Name of the generation that replaced it.
    from_generation, to_generation:
        The 1-based generation counters before and after the rotation.
    pending_generations:
        Generations still queued in the pool after the rotation.
    message:
        Rendered human-readable summary (what the rotation notice sent
        through the notification channel says).
    """

    retired_testset_name: str
    installed_testset_name: str
    from_generation: int
    to_generation: int
    pending_generations: int
    message: str


@dataclass
class _PoolEntry:
    """One pending generation: a testset plus its (optional) budget."""

    testset: Testset
    budget: int | None = None


class TestsetPool:
    """An ordered queue of pre-labeled testset generations (§3.2 lifecycle).

    Parameters
    ----------
    testsets:
        Initial pending generations, in the order they will be installed.
    budgets:
        Optional per-generation evaluation budgets aligned with
        ``testsets``; ``None`` entries (and a ``None`` sequence) fall back
        to :attr:`default_budget` at pop time.
    default_budget:
        Budget assumed for entries without an explicit one.  A pool-aware
        engine fills this in from the script's ``H``/adaptivity accounting
        (:meth:`repro.core.estimators.adaptivity.Adaptivity.evaluations_per_testset`)
        when the pool is attached, so it is usually left ``None`` here.
    low_watermark:
        When, after a pop, the number of pending generations is at or
        below this value, the low-watermark callbacks fire.  ``0`` fires
        only when the pool just went dry; the default ``1`` gives the
        labeling team one full generation of lead time.

    Notes
    -----
    The pool is deliberately passive: it never talks to the engine, it
    only hands out generations (:meth:`pop`) and reports runway
    (:attr:`pending`, :meth:`remaining_evaluations`).  Low-watermark
    callbacks are runtime wiring, like repository observers — they are
    **not** carried through pickling (pool *state*: the queued testsets,
    budgets, watermark and counters round-trips; re-register callbacks
    after unpickling).
    """

    __test__ = False  # not a test class despite the name

    def __init__(
        self,
        testsets: Any = (),
        *,
        budgets: Any = None,
        default_budget: int | None = None,
        low_watermark: int = 1,
    ):
        testsets = list(testsets)
        if budgets is not None:
            budgets = [
                check_positive_int(b, "budget") if b is not None else None
                for b in budgets
            ]
            if len(budgets) != len(testsets):
                raise EngineStateError(
                    f"got {len(budgets)} budgets for {len(testsets)} testsets"
                )
        else:
            budgets = [None] * len(testsets)
        if low_watermark < 0:
            raise EngineStateError(
                f"low_watermark must be >= 0, got {low_watermark}"
            )
        if default_budget is not None:
            default_budget = check_positive_int(default_budget, "default_budget")
        self.default_budget = default_budget
        self.low_watermark = low_watermark
        self._entries: deque[_PoolEntry] = deque(
            _PoolEntry(testset=t, budget=b) for t, b in zip(testsets, budgets)
        )
        self._popped = 0
        self._callbacks: list[Callable[[PoolLowWatermarkEvent], None]] = []

    # -- inspection ---------------------------------------------------------
    @property
    def pending(self) -> int:
        """Generations still queued (not yet handed to an engine)."""
        return len(self._entries)

    @property
    def pending_testsets(self) -> list[Testset]:
        """The queued testsets, in installation order."""
        return [entry.testset for entry in self._entries]

    @property
    def popped(self) -> int:
        """Generations handed out over the pool's lifetime."""
        return self._popped

    @property
    def is_empty(self) -> bool:
        """Whether the pool is dry (the exhaustion error becomes real)."""
        return not self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def remaining_evaluations(self) -> int:
        """Total evaluation budget across all pending generations.

        Entries without an explicit budget count as :attr:`default_budget`
        (or 0 while no default is known — before an engine attached the
        pool and filled in the ``H`` accounting).
        """
        default = self.default_budget or 0
        return sum(
            entry.budget if entry.budget is not None else default
            for entry in self._entries
        )

    # -- lifecycle ----------------------------------------------------------
    def add(self, testset: Testset, budget: int | None = None) -> None:
        """Queue a freshly labeled generation at the back of the pool."""
        if budget is not None:
            budget = check_positive_int(budget, "budget")
        self._entries.append(_PoolEntry(testset=testset, budget=budget))

    def pop(self) -> tuple[Testset, int | None]:
        """Hand out the next generation (and its budget) in FIFO order.

        Fires the low-watermark callbacks when the remaining runway is at
        or below :attr:`low_watermark` after the pop.

        Raises
        ------
        TestsetExhaustedError
            When the pool is dry.
        """
        if not self._entries:
            raise TestsetExhaustedError(
                "the testset pool is dry: no pending generations left; "
                "label and add() a fresh testset"
            )
        entry = self._entries.popleft()
        self._popped += 1
        if len(self._entries) <= self.low_watermark and self._callbacks:
            event = PoolLowWatermarkEvent(
                pending_generations=len(self._entries),
                remaining_evaluations=self.remaining_evaluations(),
                popped_testset_name=entry.testset.name,
                message=(
                    f"[ease.ml/ci] testset pool low: {len(self._entries)} "
                    f"pending generation(s) "
                    f"({self.remaining_evaluations()} evaluations of runway) "
                    f"after installing {entry.testset.name!r}. Label a new "
                    "testset now to keep commits flowing."
                ),
            )
            for callback in self._callbacks:
                callback(event)
        return entry.testset, entry.budget

    def on_low_watermark(
        self, callback: Callable[[PoolLowWatermarkEvent], None]
    ) -> None:
        """Register a "label a new set now" callback.

        Callbacks fire on every :meth:`pop` that leaves the pending count
        at or below :attr:`low_watermark` — each rotation below the
        watermark is a fresh reminder, and a callback that immediately
        labels and :meth:`add`\\ s a generation keeps the pool in steady
        state.  Exceptions propagate (a labeling pipeline would rather
        fail loudly than silently run the pool dry).
        """
        self._callbacks.append(callback)

    # -- pickling -----------------------------------------------------------
    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state["_callbacks"] = []  # runtime wiring, not pool state
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
