"""Testset objects and their statistical-budget lifecycle (§2.3).

A :class:`Testset` is the labeled data the *integration team* provides.  A
:class:`TestsetManager` tracks how much statistical power remains: every
evaluation consumes one of the ``H`` budgeted uses; when the budget is
spent (or a ``firstChange`` pass retires the set early), the manager marks
the testset *released* — it may then be handed to the development team as
a validation set, and a fresh testset must be installed before the next
commit can be evaluated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.exceptions import EngineStateError, TestsetExhaustedError
from repro.utils.validation import check_positive_int

__all__ = ["Testset", "TestsetManager"]


@dataclass
class Testset:
    """A labeled evaluation set.

    Attributes
    ----------
    labels:
        Ground-truth labels, shape ``(N,)``.
    features:
        Model inputs aligned with ``labels``.  For simulated experiments
        this is typically ``np.arange(N)`` — simulated models map example
        indices to predictions — but any array a model's ``predict``
        accepts works.
    name:
        Human-readable identifier used in alarms and logs.
    """

    labels: np.ndarray
    features: np.ndarray | None = None
    name: str = "testset"

    #: keep pytest from collecting this as a test class
    __test__ = False

    def __post_init__(self) -> None:
        self.labels = np.asarray(self.labels)
        if self.labels.ndim != 1:
            raise EngineStateError(
                f"labels must be one-dimensional, got shape {self.labels.shape}"
            )
        if self.features is None:
            self.features = np.arange(len(self.labels))
        else:
            self.features = np.asarray(self.features)
            if len(self.features) != len(self.labels):
                raise EngineStateError(
                    f"features ({len(self.features)}) and labels "
                    f"({len(self.labels)}) must align"
                )

    def __len__(self) -> int:
        return len(self.labels)

    @property
    def size(self) -> int:
        """Number of labeled examples."""
        return len(self.labels)

    def predict_with(self, model: Any) -> np.ndarray:
        """Run ``model.predict`` over this testset's features."""
        predictions = np.asarray(model.predict(self.features))
        if len(predictions) != len(self.labels):
            raise EngineStateError(
                f"model returned {len(predictions)} predictions for "
                f"{len(self.labels)} examples"
            )
        return predictions


@dataclass
class _TestsetRecord:
    """Internal bookkeeping for one testset generation."""

    testset: Testset
    budget: int
    uses: int = 0
    released: bool = False


class TestsetManager:
    """Tracks statistical-budget consumption across testset generations.

    Parameters
    ----------
    testset:
        The initial testset.
    budget:
        Number of evaluations (``steps`` / ``H``) the testset supports.

    Notes
    -----
    The manager is deliberately ignorant of *why* a testset retires —
    budget exhaustion vs. hybrid-mode early retirement — the engine
    decides that and calls :meth:`retire` accordingly.  The manager's
    invariants: a released testset can never be consumed again, and
    exactly one testset is active at a time.
    """

    __test__ = False  # not a test class despite the name

    def __init__(self, testset: Testset, budget: int):
        self._budget = check_positive_int(budget, "budget")
        self._current = _TestsetRecord(testset=testset, budget=self._budget)
        self._released: list[Testset] = []
        self._generation = 1

    # -- inspection ---------------------------------------------------------
    @property
    def current(self) -> Testset:
        """The active testset.

        Raises :class:`TestsetExhaustedError` if the current set has been
        released and no replacement installed.
        """
        if self._current.released:
            raise TestsetExhaustedError(
                f"testset {self._current.testset.name!r} has been released; "
                "install a fresh testset before evaluating further commits"
            )
        return self._current.testset

    @property
    def uses(self) -> int:
        """Evaluations consumed on the current testset."""
        return self._current.uses

    @property
    def remaining(self) -> int:
        """Evaluations left in the current budget (0 when released)."""
        if self._current.released:
            return 0
        return self._current.budget - self._current.uses

    @property
    def generation(self) -> int:
        """1-based counter of testsets installed so far."""
        return self._generation

    @property
    def released_testsets(self) -> list[Testset]:
        """Retired testsets, now safe to hand to developers as dev sets."""
        return list(self._released)

    @property
    def is_exhausted(self) -> bool:
        """Whether a fresh testset is required before the next evaluation."""
        return self._current.released

    # -- lifecycle ------------------------------------------------------------
    def consume(self) -> int:
        """Spend one evaluation; returns the use count after spending.

        Raises
        ------
        TestsetExhaustedError
            When the current testset is already released.
        """
        if self._current.released:
            raise TestsetExhaustedError(
                "no statistical budget left: the current testset is released"
            )
        self._current.uses += 1
        return self._current.uses

    @property
    def budget_spent(self) -> bool:
        """True when the current testset has served its full budget."""
        return self._current.uses >= self._current.budget

    def retire(self) -> Testset:
        """Release the current testset (making it a dev set) and return it."""
        if self._current.released:
            raise EngineStateError("testset already released")
        self._current.released = True
        self._released.append(self._current.testset)
        return self._current.testset

    def install(self, testset: Testset, budget: int | None = None) -> None:
        """Install a fresh testset, starting a new generation.

        The previous testset must have been retired first — silently
        replacing a live testset would discard statistical budget without
        an audit trail.
        """
        if not self._current.released:
            raise EngineStateError(
                "retire() the current testset before installing a new one"
            )
        self._current = _TestsetRecord(
            testset=testset,
            budget=check_positive_int(budget, "budget") if budget else self._budget,
        )
        self._generation += 1
