"""Named registries for kernel components and composed backends.

Components register under stable names — ``register_planner``,
``register_evaluator``, ``register_state_store`` — and a *backend* is a
named triple of component names (``register_backend``).  The engine and
service resolve everything through :func:`get_backend`, so a new
planning tier or durability layer ships by registering itself (from its
own module, or even from test code) and never by editing
``core/engine.py``.

Factories, not instances, are registered:

* planner factory — ``f(*, workers=None, estimator=None, config=None)``
  returning a :class:`~repro.core.kernel.interfaces.Planner`.  ``config``
  is a mapping previously produced by ``Planner.export_config()`` (the
  restore path); ``estimator`` is a caller-supplied estimator object the
  planner should wrap (the ``CIEngine(estimator=...)`` compatibility
  path); ``workers`` is the parallel-planning request.  At most one of
  ``estimator`` / ``config`` is passed per call.
* evaluator factory — ``f(plan, mode, *, enforce_sample_size=True)``
  returning an :class:`~repro.core.kernel.interfaces.Evaluator`.
* state-store factory — ``f(path, *, create=True, sync=True)`` returning
  a :class:`~repro.core.kernel.interfaces.StateStore` rooted at ``path``.

Backends resolve component names lazily (at call time), so registration
order between components and backends does not matter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping

from repro.core.kernel.interfaces import Evaluator, Planner, StateStore

__all__ = [
    "KernelBackend",
    "register_planner",
    "register_evaluator",
    "register_state_store",
    "register_backend",
    "get_backend",
    "available_backends",
    "available_planners",
    "available_evaluators",
    "available_state_stores",
]

PlannerFactory = Callable[..., Planner]
EvaluatorFactory = Callable[..., Evaluator]
StateStoreFactory = Callable[..., StateStore]

_PLANNERS: dict[str, PlannerFactory] = {}
_EVALUATORS: dict[str, EvaluatorFactory] = {}
_STATE_STORES: dict[str, StateStoreFactory] = {}
_BACKENDS: dict[str, "KernelBackend"] = {}


def _register(table: dict[str, Any], kind: str, name: str, value: Any) -> None:
    if not name or not isinstance(name, str):
        raise ValueError(f"{kind} name must be a non-empty string, got {name!r}")
    if name in table and table[name] is not value:
        raise ValueError(f"{kind} {name!r} is already registered")
    table[name] = value


def register_planner(name: str, factory: PlannerFactory) -> PlannerFactory:
    """Register a planner factory under ``name`` (idempotent per object)."""

    _register(_PLANNERS, "planner", name, factory)
    return factory


def register_evaluator(name: str, factory: EvaluatorFactory) -> EvaluatorFactory:
    """Register an evaluator factory under ``name``."""

    _register(_EVALUATORS, "evaluator", name, factory)
    return factory


def register_state_store(name: str, factory: StateStoreFactory) -> StateStoreFactory:
    """Register a state-store factory under ``name``."""

    _register(_STATE_STORES, "state store", name, factory)
    return factory


def _lookup(table: Mapping[str, Any], kind: str, name: str) -> Any:
    try:
        return table[name]
    except KeyError:
        known = ", ".join(sorted(table)) or "<none>"
        raise KeyError(f"unknown {kind} {name!r}; registered: {known}") from None


@dataclass(frozen=True)
class KernelBackend:
    """A named (planner, evaluator, state store) triple.

    Holds component *names* and resolves their factories at call time,
    so backends may be composed from components registered later.
    """

    name: str
    planner: str = "default"
    evaluator: str = "default"
    state_store: str = "default"

    def make_planner(
        self,
        *,
        workers: int | str | None = None,
        estimator: Any = None,
    ) -> Planner:
        """A fresh planner for engine construction."""

        factory = _lookup(_PLANNERS, "planner", self.planner)
        return factory(workers=workers, estimator=estimator)

    def planner_from_config(self, config: Mapping[str, Any]) -> Planner:
        """Rebuild a planner from a persisted ``export_config()`` mapping."""

        factory = _lookup(_PLANNERS, "planner", self.planner)
        return factory(config=dict(config))

    def make_evaluator(
        self, plan: Any, mode: Any, *, enforce_sample_size: bool = True
    ) -> Evaluator:
        """An evaluator bound to one plan and adaptivity mode."""

        factory = _lookup(_EVALUATORS, "evaluator", self.evaluator)
        return factory(plan, mode, enforce_sample_size=enforce_sample_size)

    def open_state_store(
        self, path: Any, *, create: bool = True, sync: bool = True
    ) -> StateStore:
        """A state store rooted at ``path``."""

        factory = _lookup(_STATE_STORES, "state store", self.state_store)
        return factory(path, create=create, sync=sync)


def register_backend(
    name: str,
    *,
    planner: str = "default",
    evaluator: str = "default",
    state_store: str = "default",
) -> KernelBackend:
    """Compose and register a backend from component names."""

    backend = KernelBackend(
        name=name, planner=planner, evaluator=evaluator, state_store=state_store
    )
    if name in _BACKENDS and _BACKENDS[name] != backend:
        raise ValueError(f"backend {name!r} is already registered")
    _BACKENDS[name] = backend
    return backend


def get_backend(name: str | KernelBackend | None = None) -> KernelBackend:
    """Resolve ``name`` to a backend (``None`` = ``"default"``).

    A :class:`KernelBackend` instance passes through unchanged, so call
    sites can accept either a registry name or an ad-hoc composition.
    """

    if isinstance(name, KernelBackend):
        return name
    return _lookup(_BACKENDS, "backend", name or "default")


def available_backends() -> tuple[str, ...]:
    """The registered backend names, sorted."""

    return tuple(sorted(_BACKENDS))


def available_planners() -> tuple[str, ...]:
    return tuple(sorted(_PLANNERS))


def available_evaluators() -> tuple[str, ...]:
    return tuple(sorted(_EVALUATORS))


def available_state_stores() -> tuple[str, ...]:
    return tuple(sorted(_STATE_STORES))
