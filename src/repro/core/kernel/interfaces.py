"""The service-kernel protocols: ``Planner``, ``Evaluator``, ``StateStore``.

The guarantee chain of the paper — estimate the sample size, evaluate the
condition over confidence intervals, account for adaptivity — used to be
threaded through one concrete class per layer.  These three protocols are
the narrow seams the :class:`~repro.core.engine.CIEngine` and
:class:`~repro.ci.service.CIService` orchestrate over instead, so a new
planning tier (Bayesian posteriors), a new serving kernel (a jit'd
evaluator) or a new durability layer plugs in by *registration*
(:mod:`repro.core.kernel.registry`) — never by editing the engine.

What a backend must promise
---------------------------
The contracts are behavioral, and they are **parity-locked**: whatever an
implementation does internally, its observable outputs must be
element-wise identical to the stock backend's on the same inputs.  The
reusable conformance kit (``tests/conformance/``, run with
``pytest tests/conformance --engine-backend <name>``) certifies exactly
that — submit/submit_many parity in all three adaptivity modes, pool
rotation, restart parity through the backend's own state store, crash
replay, and the export/warm-manifest contracts.

* :class:`Planner` — pure planning: the plan for a script must be a
  deterministic function of (condition, reliability spec, planner
  config).  ``plan_for`` may cache; ``replan_for`` is the rotation-time
  call and may overlap serving, but must return a plan equal to
  ``plan_for``'s.  ``export_config()`` must round-trip through the
  backend's ``planner_from_config`` into a planner producing equal plans
  (this is what snapshots persist instead of plan objects).
* :class:`Evaluator` — the §3.5 interval semantics over one plan:
  ``evaluate_batch(batch)[i]`` must equal ``evaluate(batch.sample(i))``
  for every ``i``, and both must be pure functions of (plan, mode,
  sample).  ``prepack()`` is a warm-up hint — it may precompute derived
  state but must never change results.
* :class:`StateStore` — the PR-4 snapshot/journal export-restore
  contract behind one object: atomically durable snapshots of exported
  state mappings, an append-only event record, and replay-supporting
  reads.  ``load_latest`` after any crash-at-a-boundary must return a
  state from which journal replay reproduces the uninterrupted run.

Protocols are ``runtime_checkable`` so registries can sanity-check what
they are handed; structural typing means implementations need not import
anything from this module.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Any,
    Iterable,
    Mapping,
    Protocol,
    Sequence,
    runtime_checkable,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.ci.persistence import JournalRecord, SnapshotInfo
    from repro.core.estimators.plans import SampleSizePlan
    from repro.core.evaluation import EvaluationResult
    from repro.core.script.config import CIScript
    from repro.stats.estimation import PairedSample, PairedSampleBatch

__all__ = ["Planner", "Evaluator", "StateStore"]


@runtime_checkable
class Planner(Protocol):
    """Produces (and re-produces) the :class:`SampleSizePlan` for a script.

    The engine calls ``plan_for`` at construction and restore,
    ``replan_for`` on every pool rotation, ``export_config`` into
    snapshots, and ``plan_requests`` to build the warm manifest a
    restorer replays.  Plans must be deterministic in (script, config):
    two planners with equal configs must return equal plans, and a
    rotation re-plan that lands on an unchanged plan should return the
    *same object* when it can (the engine reuses the prepacked evaluator
    in that case — an equal-but-new object only costs a repack).
    """

    @property
    def workers(self) -> int | str | None:
        """The parallel-planning configuration (``None`` = serial)."""

    def plan_for(self, script: "CIScript") -> "SampleSizePlan":
        """The plan for ``script`` (construction / restore path)."""

    def replan_for(self, script: "CIScript") -> "SampleSizePlan":
        """The rotation-time re-plan; must equal :meth:`plan_for`'s result."""

    def export_config(self) -> dict[str, Any]:
        """Snapshot-persisted config; round-trips via ``planner_from_config``."""

    def plan_requests(self, script: "CIScript") -> list[dict[str, Any]]:
        """Warm-manifest entries a restorer replays to re-derive the plan."""


@runtime_checkable
class Evaluator(Protocol):
    """Evaluates one plan's formula against paired model predictions.

    Built per plan by the backend's evaluator factory; the engine holds
    one at a time and rebuilds it only when a rotation re-plan returns a
    genuinely different plan.
    """

    plan: "SampleSizePlan"
    enforce_sample_size: bool

    def evaluate(self, sample: "PairedSample") -> "EvaluationResult":
        """The scalar reference evaluation of one paired sample."""

    def evaluate_batch(
        self, batch: "PairedSampleBatch"
    ) -> tuple["EvaluationResult", ...]:
        """Element-wise equal to ``evaluate`` over ``batch.sample(i)``."""

    def prepack(self) -> None:
        """Precompute derived evaluation state; must never change results."""


@runtime_checkable
class StateStore(Protocol):
    """Durable snapshots plus an append-only event record, as one seam.

    The default implementation composes the PR-4
    :class:`~repro.ci.persistence.SnapshotStore` and
    :class:`~repro.ci.persistence.EventJournal`; any implementation must
    honor the same crash model — a snapshot is atomically whole or
    absent, an appended event survives process death, and
    ``records_of("commit-received")`` after a crash returns every commit
    whose append completed, in order.
    """

    @property
    def location(self) -> str:
        """Human-readable description of where the state lives."""

    @property
    def journal_sequence(self) -> int | None:
        """Newest durable event sequence (``None`` = no event record)."""

    def save_snapshot(self, state: Mapping[str, Any]) -> "SnapshotInfo":
        """Durably persist one exported-state mapping, atomically."""

    def load_latest(
        self, *, quarantine: bool = True
    ) -> tuple[dict[str, Any], "SnapshotInfo"] | None:
        """The newest restorable snapshot (``None`` for an empty store)."""

    def append_event(self, type: str, payload: Mapping[str, Any]) -> None:
        """Durably append one event (a no-op when no journal is attached)."""

    def records_of(self, type: str) -> Iterable["JournalRecord"]:
        """Every durable event of ``type``, in append order."""

    def latest_info(self) -> "SnapshotInfo | None":
        """Metadata of the newest restorable snapshot, without its payload."""

    def quarantined(self) -> Sequence[Any]:
        """Damage artifacts set aside by self-healing (empty when clean)."""
