"""The ``"jit"`` kernel backend: Numba-compiled windowed-tail planning.

A :class:`~repro.core.kernel.default.DefaultPlanner` whose estimator
routes exact-binomial probes through the Numba windowed scan
(``kernel="jit"``; see :mod:`repro.stats.jit`).  The jit loop performs
the same float64 arithmetic as the NumPy tiers but accumulates each row
left-to-right instead of pairwise, so its results are near- but not
bit-identical to the default backend — exactly the situation the PR-8
registry exists for: the backend registers under its own name, plans
under its own memo keys, and is certified by ``tests/conformance/``
rather than trusted as a drop-in.

Importing this module is always safe.  Registration is conditional on
numba being importable — without numba, :func:`available_backends` simply
omits ``"jit"`` and requesting it raises the registry's usual unknown-
backend error, so a numba-less host degrades to an accurate message
instead of a deferred compile failure.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.core.estimators.api import SampleSizeEstimator
from repro.core.kernel.default import DefaultPlanner
from repro.core.kernel.registry import register_backend, register_planner
from repro.stats.jit import NUMBA_AVAILABLE
from repro.stats.parallel import resolve_workers

__all__ = ["JitPlanner"]


class JitPlanner(DefaultPlanner):
    """:class:`DefaultPlanner` pinned to the ``kernel="jit"`` estimator."""

    @classmethod
    def build(
        cls,
        *,
        workers: int | str | None = None,
        estimator: SampleSizeEstimator | None = None,
        config: Mapping[str, Any] | None = None,
    ) -> "JitPlanner":
        """The registered factory: graft ``kernel="jit"`` onto any source.

        Mirrors :meth:`DefaultPlanner.build`, with one addition: whatever
        the estimator's provenance (persisted config, caller-supplied
        instance, or fresh), it is (re)built with ``kernel="jit"`` so
        every plan this backend produces really exercises the jit scan.
        """
        if config is not None:
            rebuilt = dict(config)
            rebuilt["kernel"] = "jit"
            estimator = SampleSizeEstimator(**rebuilt)
        elif estimator is None:
            estimator = SampleSizeEstimator(workers=workers, kernel="jit")
        else:
            rebuilt = estimator.export_config()
            rebuilt["kernel"] = "jit"
            if workers is not None and resolve_workers(workers) > 1:
                rebuilt["workers"] = workers
            estimator = type(estimator)(**rebuilt)
        return cls(estimator)


if NUMBA_AVAILABLE:  # pragma: no cover - exercised only where numba is installed
    register_planner("jit", JitPlanner.build)
    register_backend("jit", planner="jit")
