"""The service kernel: planning, evaluation and durability as plug-in seams.

``CIEngine`` and ``CIService`` orchestrate over three protocols —
:class:`Planner`, :class:`Evaluator`, :class:`StateStore` — resolved
through a named backend registry.  The stock implementations register as
backend ``"default"`` on import; alternative backends register their own
components (:func:`register_planner` and friends) and compose them with
:func:`register_backend`, with zero edits to the engine.  The backend
conformance kit (``tests/conformance/``) certifies any registered triple
against the stock behavior, element-wise.
"""

from repro.core.kernel.default import DefaultPlanner, DirectoryStateStore
from repro.core.kernel.interfaces import Evaluator, Planner, StateStore
from repro.core.kernel.jit import JitPlanner
from repro.core.kernel.registry import (
    KernelBackend,
    available_backends,
    available_evaluators,
    available_planners,
    available_state_stores,
    get_backend,
    register_backend,
    register_evaluator,
    register_planner,
    register_state_store,
)

__all__ = [
    "Planner",
    "Evaluator",
    "StateStore",
    "KernelBackend",
    "DefaultPlanner",
    "JitPlanner",
    "DirectoryStateStore",
    "register_planner",
    "register_evaluator",
    "register_state_store",
    "register_backend",
    "get_backend",
    "available_backends",
    "available_planners",
    "available_evaluators",
    "available_state_stores",
]
