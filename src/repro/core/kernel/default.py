"""The stock kernel components, registered as backend ``"default"``.

Nothing here is new behavior — these classes adapt the implementations
the engine grew PR by PR (:class:`SampleSizeEstimator`,
:class:`ConditionEvaluator`, the PR-4 snapshot/journal pair) onto the
:mod:`repro.core.kernel.interfaces` protocols, so the refactored
:class:`~repro.core.engine.CIEngine` stays element-wise identical to the
pre-kernel engine on every input.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable, Mapping, Sequence

from repro.core.estimators.api import SampleSizeEstimator
from repro.core.evaluation import ConditionEvaluator
from repro.core.kernel.registry import (
    register_backend,
    register_evaluator,
    register_planner,
    register_state_store,
)
from repro.stats.parallel import resolve_workers

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.ci.persistence import (
        EventJournal,
        JournalRecord,
        SnapshotInfo,
        SnapshotStore,
    )
    from repro.core.estimators.plans import SampleSizePlan
    from repro.core.script.config import CIScript

__all__ = ["DefaultPlanner", "DirectoryStateStore"]


class DefaultPlanner:
    """The stock :class:`Planner`: a thin seam over ``SampleSizeEstimator``.

    Plans are served from the estimator's process-wide LRU cache, so the
    rotation-time :meth:`replan_for` normally returns the *same object*
    the engine already evaluates with — the engine's prepacked evaluator
    survives the rotation.
    """

    def __init__(self, estimator: SampleSizeEstimator):
        self.estimator = estimator

    @classmethod
    def build(
        cls,
        *,
        workers: int | str | None = None,
        estimator: SampleSizeEstimator | None = None,
        config: Mapping[str, Any] | None = None,
    ) -> "DefaultPlanner":
        """The registered planner factory (see the registry docstring).

        ``config`` rebuilds from a persisted ``export_config()`` mapping;
        a caller-supplied ``estimator`` combined with a *parallel*
        ``workers`` setting is rebuilt — same class — from its exported
        config with ``workers`` applied, so subclass planning behavior
        survives while the engine's parallel request is honoured (a
        serial setting leaves the supplied instance untouched).
        """
        if config is not None:
            estimator = SampleSizeEstimator(**dict(config))
        elif estimator is None:
            estimator = SampleSizeEstimator(workers=workers)
        elif workers is not None and resolve_workers(workers) > 1:
            rebuilt = estimator.export_config()
            rebuilt["workers"] = workers
            estimator = type(estimator)(**rebuilt)
        return cls(estimator)

    @property
    def workers(self) -> int | str | None:
        return self.estimator.workers

    def plan_for(self, script: "CIScript") -> "SampleSizePlan":
        return self.estimator.plan(
            script.condition,
            delta=script.delta,
            adaptivity=script.adaptivity,
            steps=script.steps,
            known_variance_bound=script.variance_bound,
        )

    def replan_for(self, script: "CIScript") -> "SampleSizePlan":
        # Same derivation; the shared plan cache makes it a lookup, and a
        # workers-configured estimator derives cold re-plans in worker
        # processes while the serving thread keeps draining commits.
        return self.plan_for(script)

    def export_config(self) -> dict[str, Any]:
        return self.estimator.export_config()

    def plan_requests(self, script: "CIScript") -> list[dict[str, Any]]:
        return [
            {
                "condition": script.condition_source,
                "delta": script.delta,
                "adaptivity": script.adaptivity.value,
                "steps": script.steps,
                "known_variance_bound": script.variance_bound,
                "estimator": self.estimator.export_config(),
            }
        ]


def _default_evaluator(
    plan: "SampleSizePlan", mode: Any, *, enforce_sample_size: bool = True
) -> ConditionEvaluator:
    """The registered evaluator factory: the stock ``ConditionEvaluator``."""

    return ConditionEvaluator(plan, mode, enforce_sample_size=enforce_sample_size)


class DirectoryStateStore:
    """The stock :class:`StateStore`: PR-4 snapshots + journal in one seam.

    Composes a :class:`~repro.ci.persistence.SnapshotStore` and an
    (optional) :class:`~repro.ci.persistence.EventJournal`; the
    underlying pair stays reachable as :attr:`snapshots` / :attr:`journal`
    for call sites that still speak the two-object contract.
    """

    def __init__(
        self, snapshots: "SnapshotStore", journal: "EventJournal | None" = None
    ):
        self.snapshots = snapshots
        self.journal = journal

    @classmethod
    def open(
        cls, path: Any, *, create: bool = True, sync: bool = True
    ) -> "DirectoryStateStore":
        """The registered state-store factory: a PR-4 state directory."""

        from repro.ci.persistence import open_state_dir

        snapshots, journal = open_state_dir(path, create=create, sync=sync)
        return cls(snapshots, journal)

    @property
    def location(self) -> str:
        return str(self.snapshots.directory)

    @property
    def journal_sequence(self) -> int | None:
        return None if self.journal is None else self.journal.last_sequence

    def save_snapshot(self, state: Mapping[str, Any]) -> "SnapshotInfo":
        sequence = self.journal_sequence
        return self.snapshots.save(
            dict(state), journal_sequence=0 if sequence is None else sequence
        )

    def load_latest(
        self, *, quarantine: bool = True
    ) -> "tuple[dict[str, Any], SnapshotInfo] | None":
        return self.snapshots.load_latest(quarantine=quarantine)

    def append_event(self, type: str, payload: Mapping[str, Any]) -> None:
        if self.journal is not None:
            self.journal.append(type, dict(payload))

    def records_of(self, type: str) -> "Iterable[JournalRecord]":
        if self.journal is None:
            return ()
        return self.journal.records_of(type)

    def latest_info(self) -> "SnapshotInfo | None":
        return self.snapshots.latest_info()

    def quarantined(self) -> Sequence[Any]:
        return self.snapshots.quarantined()


register_planner("default", DefaultPlanner.build)
register_evaluator("default", _default_evaluator)
register_state_store("default", DirectoryStateStore.open)
register_backend("default")
