"""Result objects of sample-size estimation.

A :class:`SampleSizePlan` is the contract between the estimator and the
rest of the system:

* the **sample size** the user must provide (``plan.samples``);
* per-clause :class:`ClausePlan` entries recording the strategy (plain
  Hoeffding per variable vs. Bennett on the paired difference), the
  failure-probability budget, and the per-term tolerance allocation —
  exactly what the condition evaluator needs to build its confidence
  intervals;
* labeling metadata (which clauses need labels at all, and what fraction
  of examples active labeling expects to label per commit).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Mapping

from repro.core.dsl.nodes import Clause, Formula
from repro.core.estimators.adaptivity import Adaptivity
from repro.core.estimators.allocation import TermAllocation

__all__ = ["ClauseStrategy", "ClausePlan", "SampleSizePlan"]


class ClauseStrategy(enum.Enum):
    """How a clause's left-hand side is estimated."""

    #: Baseline (§3.1): estimate each variable independently with Hoeffding
    #: and combine through interval algebra.
    HOEFFDING_PER_VARIABLE = "hoeffding-per-variable"
    #: Optimized (§4.1/4.2): estimate the paired difference ``n - o``
    #: directly, using Bennett's inequality with a variance bound.
    BENNETT_PAIRED = "bennett-paired"
    #: Single Bernoulli variable sized by exact binomial inversion (§4.3).
    EXACT_BINOMIAL = "exact-binomial"


@dataclass(frozen=True)
class ClausePlan:
    """Sizing decision for one clause.

    Attributes
    ----------
    clause:
        The parsed clause this plan covers.
    strategy:
        Estimation strategy (see :class:`ClauseStrategy`).
    delta:
        Failure budget assigned to the clause (after the adaptivity and
        formula-level splits).
    samples:
        Real-valued sample requirement.
    terms:
        Per-variable tolerance allocations (``HOEFFDING_PER_VARIABLE`` and
        ``EXACT_BINOMIAL``); empty for ``BENNETT_PAIRED``.
    variance_bound:
        The variance bound ``p`` used by ``BENNETT_PAIRED`` (else ``None``).
    requires_labels:
        Whether evaluating this clause needs ground-truth labels.  A pure
        ``d`` clause is label-free (Technical Observation 2).
    labeled_fraction:
        Expected fraction of the testset needing labels per evaluation
        (1.0 for accuracy clauses without active labeling; ``p`` for a
        ``BENNETT_PAIRED`` clause under active labeling).
    """

    clause: Clause
    strategy: ClauseStrategy
    delta: float
    samples: float
    terms: tuple[TermAllocation, ...] = ()
    variance_bound: float | None = None
    requires_labels: bool = True
    labeled_fraction: float = 1.0

    @property
    def samples_int(self) -> int:
        """Integer (ceil) sample requirement."""
        return int(math.ceil(self.samples - 1e-9))

    def variable_tolerances(self) -> Mapping[str, float]:
        """Tolerance on each raw variable (for interval construction)."""
        return {t.variable: t.variable_tolerance for t in self.terms}

    @property
    def expression_tolerance(self) -> float:
        """The clause's total LHS tolerance (should equal ``clause.tolerance``)."""
        if self.terms:
            return sum(t.tolerance for t in self.terms)
        return self.clause.tolerance


@dataclass(frozen=True)
class SampleSizePlan:
    """The full sizing decision for a formula over an ``H``-step process.

    Attributes
    ----------
    formula:
        The parsed condition.
    delta:
        The user's total failure budget (``1 - reliability``).
    adaptivity:
        Interaction mode (drives the per-evaluation budget).
    steps:
        Testset lifetime ``H`` in evaluations.
    clause_plans:
        One :class:`ClausePlan` per clause.
    notes:
        Free-form provenance notes (which optimizations fired and why).
    """

    formula: Formula
    delta: float
    adaptivity: Adaptivity
    steps: int
    clause_plans: tuple[ClausePlan, ...]
    notes: tuple[str, ...] = field(default_factory=tuple)

    @property
    def samples_real(self) -> float:
        """Real-valued *labeled* sample requirement (see :attr:`samples`)."""
        labeled = [p.samples for p in self.clause_plans if p.requires_labels]
        return max(labeled) if labeled else 0.0

    @property
    def samples(self) -> int:
        """Labels the user must provide — the paper's headline quantity.

        Max over the clauses that require ground truth (§3.1 rule 3).
        Clauses over ``d`` alone are excluded: they are evaluated on
        unlabeled data (Technical Observation 2), whose cost the paper
        treats as negligible next to labeling.  For baseline plans (every
        clause needs labels) this equals :attr:`pool_size`.
        """
        return int(math.ceil(self.samples_real - 1e-9))

    @property
    def pool_size(self) -> int:
        """Total examples (labeled + unlabeled) the engine needs on hand.

        Max over *all* clauses — label-free ``d`` clauses still consume
        unlabeled draws from the pool.
        """
        return int(math.ceil(max(p.samples for p in self.clause_plans) - 1e-9))

    @property
    def labels_per_evaluation(self) -> int:
        """Expected fresh labels per commit under active labeling (§4.1.2).

        For ``BENNETT_PAIRED`` clauses only the disagreeing fraction
        (at most the variance bound ``p``) needs labels each evaluation.
        """
        needs = [
            p.samples * p.labeled_fraction
            for p in self.clause_plans
            if p.requires_labels
        ]
        return int(math.ceil(max(needs) - 1e-9)) if needs else 0

    @property
    def effective_delta(self) -> float:
        """Per-evaluation failure budget after the adaptivity split."""
        return self.adaptivity.effective_delta(self.delta, self.steps)

    def clause_plan_for(self, clause: Clause) -> ClausePlan:
        """Look up the plan for a specific clause instance."""
        for plan in self.clause_plans:
            if plan.clause == clause:
                return plan
        raise KeyError(f"no plan for clause {clause.to_source()!r}")

    def describe(self) -> str:
        """Human-readable multi-line summary (used by examples/benchmarks)."""
        lines = [
            f"condition   : {self.formula.to_source()}",
            f"reliability : {1.0 - self.delta}",
            f"adaptivity  : {self.adaptivity.value}",
            f"steps (H)   : {self.steps}",
            f"labels      : {self.samples:,}",
        ]
        if self.pool_size != self.samples:
            lines.append(f"pool size   : {self.pool_size:,} (extra examples unlabeled)")
        if self.labels_per_evaluation != self.samples:
            lines.append(
                f"per commit  : {self.labels_per_evaluation:,} fresh labels "
                "(active labeling)"
            )
        for plan in self.clause_plans:
            lines.append(
                f"  clause {plan.clause.to_source()!r}: "
                f"{plan.strategy.value}, delta={plan.delta:.3g}, "
                f"n={plan.samples_int:,}"
                + (
                    f", variance bound p={plan.variance_bound:g}"
                    if plan.variance_bound is not None
                    else ""
                )
                + ("" if plan.requires_labels else " [label-free]")
            )
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)
