"""Adaptivity modes and their failure-probability budgets (§3.2–3.4).

The statistical cost of reusing one testset for ``H`` commits depends on how
much information flows back to the developer:

* ``none`` — the pass/fail bit goes to a third party; the ``H`` models are
  (conditionally) independent of the testset, so a plain union bound gives
  per-model budget ``delta / H``.
* ``full`` — the developer sees each bit immediately.  A deterministic (or
  pseudo-random) developer's next model is a function of the feedback
  history, of which there are at most ``2^H``; union-bounding over those
  histories gives ``delta / 2^H`` (the Ladder-style argument of §3.3).
* ``firstChange`` — the developer sees the bit, but the system retires the
  testset the moment a commit passes.  While the testset lives, the
  feedback stream is the constant "fail", so only ``H`` states need the
  union bound: budget ``delta / H``, same as non-adaptive — the leak is
  paid for with a shorter testset lifetime, not more samples (§3.4).

The trivial fully-adaptive alternative — a fresh testset per commit, total
``H * n(delta / H)`` — is provided for the ablation benchmarks.
"""

from __future__ import annotations

import enum
import math

from repro.exceptions import InvalidParameterError
from repro.utils.validation import check_positive_int, check_probability

__all__ = ["Adaptivity"]


class Adaptivity(enum.Enum):
    """The script's ``adaptivity`` flag."""

    NONE = "none"
    FULL = "full"
    FIRST_CHANGE = "firstChange"

    @classmethod
    def parse(cls, text: str) -> "Adaptivity":
        """Parse the script spelling (case-insensitive for convenience).

        The ``none -> email@host`` redirection syntax is handled one level
        up in the script config; this parser expects the bare mode name.
        """
        normalized = text.strip()
        for mode in cls:
            if mode.value.lower() == normalized.lower():
                return mode
        raise InvalidParameterError(
            f"unknown adaptivity {text!r}; expected one of "
            f"{[m.value for m in cls]}"
        )

    def effective_delta(self, delta: float, steps: int) -> float:
        """The per-evaluation failure budget for an ``H``-step process.

        Returns ``delta / H`` for ``none`` and ``firstChange``; for ``full``
        the ``delta / 2^H`` budget is computed in log-space to avoid
        underflow at large ``H`` (the downstream consumers only ever take
        ``log`` of it, via :meth:`log_effective_delta`).
        """
        check_probability(delta, "delta")
        steps = check_positive_int(steps, "steps")
        return math.exp(self.log_effective_delta(delta, steps))

    def log_effective_delta(self, delta: float, steps: int) -> float:
        """``ln`` of :meth:`effective_delta`, safe for very large ``H``."""
        check_probability(delta, "delta")
        steps = check_positive_int(steps, "steps")
        if self is Adaptivity.FULL:
            return math.log(delta) - steps * math.log(2.0)
        return math.log(delta) - math.log(steps)

    def evaluations_per_testset(self, steps: int) -> int:
        """How many evaluations one testset generation is budgeted for.

        The (epsilon, delta) accounting of §3.2–3.4 always budgets a
        testset for the full ``H`` evaluations — the union bound is taken
        over ``H`` whichever mode is active — so every mode returns
        ``steps``.  The distinction lives in how the budget is *spent*:
        ``none`` and ``full`` serve exactly ``H`` evaluations before the
        alarm fires, while ``firstChange`` may retire the set early (on
        its first pass), making ``H`` a worst case rather than a
        guarantee of service.  Pool-aware engines use this to derive the
        per-generation budget a :class:`~repro.core.testset.TestsetPool`
        entry defaults to.
        """
        return check_positive_int(steps, "steps")

    @property
    def releases_signal_to_developer(self) -> bool:
        """Whether the developer observes the pass/fail bit."""
        return self is not Adaptivity.NONE

    @property
    def retires_testset_on_pass(self) -> bool:
        """Whether a passing commit immediately triggers the alarm (§3.4)."""
        return self is Adaptivity.FIRST_CHANGE
