"""Optimal tolerance allocation across the terms of a linear expression.

Section 3.1, rule 2: estimating ``EXP1 + EXP2`` to tolerance ``epsilon``
requires splitting the tolerance, ``epsilon_1 + epsilon_2 <= epsilon``, and
the estimator solves ``min_{split} max_i n_i(epsilon_i)`` — e.g. the
optimization displayed for ``n - 1.1 * o > 0.01 +/- 0.01 /\\ d < 0.1``.

Under Hoeffding, term ``i`` (variable ``v_i`` scaled by coefficient
``c_i``, range ``r_i``, failure budget ``delta_i``) needs

.. math:: n_i(\\epsilon_i) = \\frac{(c_i r_i)^2 \\ln(1/\\delta_i)}
          {2 \\epsilon_i^2} = \\frac{A_i}{\\epsilon_i^2}.

Because every term shares the ``1/epsilon_i^2`` shape, the min-max has a
closed form: the optimum equalizes all ``n_i``, giving

.. math:: \\epsilon_i^* = \\epsilon \\cdot
          \\frac{\\sqrt{A_i}}{\\sum_j \\sqrt{A_j}},
          \\qquad
          n^* = \\frac{(\\sum_j \\sqrt{A_j})^2}{\\epsilon^2}.

With equal per-term deltas this reduces to the intuitive
``n* = (sum_j |c_j| r_j)^2 ln(1/delta) / (2 epsilon^2)``.  A numeric
equalizer is also provided and tested to agree with the closed form; it
exists so alternative inequalities (whose ``n_i(epsilon_i)`` is not a pure
power law, e.g. Bennett) can reuse the allocation machinery.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.exceptions import InvalidParameterError
from repro.utils.validation import check_positive, check_probability

__all__ = ["TermAllocation", "allocate_tolerances", "allocate_numeric"]


@dataclass(frozen=True)
class TermAllocation:
    """The allocation computed for one variable term of a clause.

    Attributes
    ----------
    variable:
        Variable name (``n``, ``o`` or ``d``).
    coefficient:
        The term's coefficient in the linear expression.
    value_range:
        Range length of the underlying variable (1 for accuracies).
    delta:
        Failure-probability budget assigned to this term.
    tolerance:
        The tolerance ``epsilon_i`` allocated to this term.  The clause's
        expression-level tolerance is ``sum_i tolerance_i`` (coefficients
        are already folded in — ``tolerance_i`` bounds the error of
        ``c_i * v_i``, not of ``v_i``).
    samples:
        Real-valued sample requirement for this term at its allocation.
    """

    variable: str
    coefficient: float
    value_range: float
    delta: float
    tolerance: float
    samples: float

    @property
    def variable_tolerance(self) -> float:
        """Tolerance on the *variable itself* (``tolerance / |coefficient|``)."""
        return self.tolerance / abs(self.coefficient)


def allocate_tolerances(
    terms: Sequence[tuple[str, float, float, float]],
    epsilon: float,
) -> list[TermAllocation]:
    """Closed-form optimal allocation for Hoeffding-style terms.

    Parameters
    ----------
    terms:
        Sequence of ``(variable, coefficient, value_range, delta)`` tuples,
        one per variable term of the linear expression.
    epsilon:
        Total expression tolerance to distribute.

    Returns
    -------
    list[TermAllocation]
        One allocation per term; all ``samples`` values are equal (the
        equalization property of the optimum) and equal to the clause's
        sample requirement.
    """
    check_positive(epsilon, "epsilon")
    if not terms:
        raise InvalidParameterError("allocate_tolerances needs at least one term")
    weights: list[float] = []
    for variable, coefficient, value_range, delta in terms:
        check_probability(delta, "delta")
        if coefficient == 0.0:
            raise InvalidParameterError(f"zero coefficient for variable {variable!r}")
        check_positive(value_range, "value_range")
        # sqrt(A_i) with A_i = (c r)^2 ln(1/delta) / 2
        weights.append(
            abs(coefficient) * value_range * math.sqrt(math.log(1.0 / delta) / 2.0)
        )
    total_weight = sum(weights)
    n_star = (total_weight / epsilon) ** 2
    allocations: list[TermAllocation] = []
    for (variable, coefficient, value_range, delta), w in zip(terms, weights):
        eps_i = epsilon * w / total_weight
        allocations.append(
            TermAllocation(
                variable=variable,
                coefficient=coefficient,
                value_range=value_range,
                delta=delta,
                tolerance=eps_i,
                samples=n_star,
            )
        )
    return allocations


def allocate_numeric(
    samples_at: Sequence[Callable[[float], float]],
    epsilon: float,
    *,
    tol: float = 1e-10,
    max_iter: int = 200,
) -> tuple[list[float], float]:
    """Numeric min-max allocation for arbitrary per-term cost curves.

    Parameters
    ----------
    samples_at:
        One callable per term mapping a candidate tolerance ``epsilon_i``
        to the (real-valued) sample requirement; each must be strictly
        decreasing in its argument.
    epsilon:
        Total tolerance.

    Returns
    -------
    (tolerances, samples):
        The allocation and the equalized sample requirement.

    Notes
    -----
    Works by bisecting on the common sample count ``n``: for a candidate
    ``n``, each term's needed tolerance ``epsilon_i(n)`` is found by inner
    bisection (the inverse of a decreasing function), and feasibility is
    ``sum_i epsilon_i(n) <= epsilon``.  The outer function is decreasing in
    ``n``, so plain bisection applies.
    """
    check_positive(epsilon, "epsilon")
    if not samples_at:
        raise InvalidParameterError("allocate_numeric needs at least one term")

    def eps_needed(fn: Callable[[float], float], n: float) -> float:
        # Find eps with fn(eps) = n via bisection on (0, epsilon].
        lo, hi = 0.0, epsilon
        if fn(hi) > n:
            return math.inf  # even the whole budget is not enough
        for _ in range(200):
            mid = (lo + hi) / 2.0
            if mid <= 0.0:
                break
            if fn(mid) > n:
                lo = mid
            else:
                hi = mid
            if hi - lo <= tol * epsilon:
                break
        return hi

    def total_eps(n: float) -> float:
        return sum(eps_needed(fn, n) for fn in samples_at)

    # Bracket n: start from the single-term requirement at full budget.
    n_lo = max(fn(epsilon) for fn in samples_at)
    n_hi = n_lo
    for _ in range(200):
        if total_eps(n_hi) <= epsilon:
            break
        n_hi *= 2.0
    else:  # pragma: no cover - defensive
        raise InvalidParameterError("allocation search failed to bracket")
    for _ in range(max_iter):
        n_mid = (n_lo + n_hi) / 2.0
        if total_eps(n_mid) <= epsilon:
            n_hi = n_mid
        else:
            n_lo = n_mid
        if n_hi - n_lo <= tol * max(1.0, n_hi):
            break
    tolerances = [eps_needed(fn, n_hi) for fn in samples_at]
    return tolerances, n_hi
