"""The sample-size estimator facade.

This is the paper's "Sample Size Estimator" system utility (§2.3): it takes
a condition (source text or parsed :class:`Formula`), the reliability
parameters, and the interaction mode, and produces a
:class:`~repro.core.estimators.plans.SampleSizePlan`.

Planning proceeds in three stages:

1. **Adaptivity split** — the per-evaluation budget
   ``delta_eff = delta/H`` (none, firstChange) or ``delta/2^H`` (full);
2. **Formula split** — each of the ``k`` clauses receives ``delta_eff/k``
   (§3.1 rule 3);
3. **Clause sizing** — baseline Hoeffding with optimal tolerance
   allocation over the expression's variable terms (§3.1 rules 1–2), or a
   pattern-optimized strategy (§4) when one applies:

   * a ``d < A`` clause is sized label-free (Technical Observation 2);
   * a gain clause ``n - o > C`` co-occurring with a difference clause
     (Pattern 1) or given an explicit ``known_variance_bound`` (Pattern 2,
     e.g. Figure 5's "no more than 10% difference between submissions") is
     sized with two-sided Bennett on the paired difference;
   * optionally, single-variable clauses can be sized by exact binomial
     inversion (§4.3) instead of Hoeffding.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Mapping

from repro.core.dsl.linear import linearize
from repro.core.dsl.nodes import Clause, Formula
from repro.core.dsl.parser import parse_condition
from repro.core.estimators.adaptivity import Adaptivity
from repro.core.estimators.allocation import TermAllocation, allocate_tolerances
from repro.core.estimators.plans import ClausePlan, ClauseStrategy, SampleSizePlan
from repro.core.patterns.matcher import (
    find_difference_clause,
    find_gain_clause,
    match_pattern1,
)
from repro.exceptions import InfeasibleConditionError, InvalidParameterError
from repro.stats.cache import (
    CacheInfo,
    LRUCache,
    register_cache,
    register_restore_warmer,
)
from repro.stats.inequalities import BennettInequality
from repro.stats.parallel import get_executor, resolve_workers
from repro.stats.tight_bounds import tight_sample_size
from repro.utils.validation import check_positive_int, check_probability

__all__ = ["SampleSizeEstimator"]

# Process-wide plan cache shared by every estimator instance: plans are
# frozen dataclasses, so handing the same object to every caller is safe.
# Keys include the normalized formula source *and* the estimator
# configuration, so differently-configured estimators never collide.
_PLAN_CACHE = register_cache("estimators.plan_cache", LRUCache(maxsize=512))


@dataclass(frozen=True)
class _ReliabilitySpec:
    """Normalized (delta, adaptivity, steps) triple."""

    delta: float
    adaptivity: Adaptivity
    steps: int

    @property
    def log_effective_delta(self) -> float:
        return self.adaptivity.log_effective_delta(self.delta, self.steps)


class SampleSizeEstimator:
    """Computes testset sizes for ease.ml/ci conditions.

    Parameters
    ----------
    optimizations:
        ``"auto"`` (default) applies the Section 4 optimizations whenever a
        pattern matches; ``"none"`` forces the Section 3 baseline (used for
        the baseline columns of every benchmark).
    variance_bound_policy:
        How Pattern 1 turns the difference clause ``d < A +/- B`` into a
        variance bound for Bennett: ``"threshold"`` uses ``p = A`` (what
        the paper's §4.1.1 numbers do — 29K/67K at ``p = 0.1``);
        ``"inflated"`` uses the strictly safe ``p = A + 2B`` available
        after the hierarchical filter passes.
    use_exact_binomial:
        Size single-variable clauses by §4.3 exact binomial inversion
        instead of Hoeffding (never larger; 10–40% smaller typically).
        Off by default because the paper's headline tables use Hoeffding.
    precision:
        Accumulation tier of the exact-binomial planning kernels:
        ``"float64"`` (default, bit-identical to every release so far) or
        ``"float32"`` (half the memory traffic in the bandwidth-bound
        scans).  Reduced-precision probes are *certified, not trusted* —
        every adopted sample size is re-checked against the float64
        reference, so plans never weaken (see
        :func:`repro.stats.tight_bounds.tight_sample_size`).
    kernel:
        ``"numpy"`` (default) or ``"jit"`` — the optional Numba windowed
        scan registered as kernel backend ``"jit"`` and certified by the
        conformance suite.  Requires numba; validated eagerly.
    use_plan_cache:
        Serve repeated :meth:`plan` calls from a process-wide LRU cache
        keyed on the normalized condition source, the reliability spec and
        the estimator configuration (on by default).  A CI service
        re-planning the same condition on every commit therefore pays the
        planning cost once; see :meth:`plan_cache_info` /
        :meth:`clear_plan_cache`.
    workers:
        Route *cold* plan derivations through the parallel planning
        executor (:mod:`repro.stats.parallel`): ``None`` (the default)
        defers to ``$REPRO_PLAN_WORKERS`` and otherwise stays serial,
        ``"auto"`` uses one worker process per CPU, an integer sets the
        count explicitly.  Worker count never changes results — the
        executor's manifest merge leaves this process's caches exactly
        as warm as a serial derivation would — so ``workers`` is *not*
        part of the plan-cache key: differently-parallel estimators
        share plans.

    Examples
    --------
    >>> est = SampleSizeEstimator(optimizations="none")
    >>> plan = est.plan("n > 0.8 +/- 0.05", reliability=0.9999,
    ...                 adaptivity="full", steps=32)
    >>> plan.samples
    6279
    """

    _POLICIES = ("threshold", "inflated")

    def __init__(
        self,
        *,
        optimizations: str = "auto",
        variance_bound_policy: str = "threshold",
        use_exact_binomial: bool = False,
        use_plan_cache: bool = True,
        workers: int | str | None = None,
        precision: str = "float64",
        kernel: str = "numpy",
    ):
        if optimizations not in ("auto", "none"):
            raise InvalidParameterError(
                f"optimizations must be 'auto' or 'none', got {optimizations!r}"
            )
        if variance_bound_policy not in self._POLICIES:
            raise InvalidParameterError(
                f"variance_bound_policy must be one of {self._POLICIES}, "
                f"got {variance_bound_policy!r}"
            )
        if precision not in ("float64", "float32"):
            raise InvalidParameterError(
                f"precision must be 'float64' or 'float32', got {precision!r}"
            )
        if kernel not in ("numpy", "jit"):
            raise InvalidParameterError(
                f"kernel must be 'numpy' or 'jit', got {kernel!r}"
            )
        if kernel == "jit":
            from repro.stats.jit import NUMBA_AVAILABLE

            if not NUMBA_AVAILABLE:
                raise InvalidParameterError(
                    "kernel='jit' requires numba, which is not importable"
                )
        if workers is not None:
            resolve_workers(workers)  # validate eagerly; resolve per call
        self.optimizations = optimizations
        self.variance_bound_policy = variance_bound_policy
        self.use_exact_binomial = bool(use_exact_binomial)
        self.use_plan_cache = bool(use_plan_cache)
        self.workers = workers
        self.precision = precision
        self.kernel = kernel

    # -- plan cache --------------------------------------------------------------
    def _config_key(self) -> tuple:
        return (
            self.optimizations,
            self.variance_bound_policy,
            self.use_exact_binomial,
            self.precision,
            self.kernel,
        )

    def export_config(self) -> dict[str, Any]:
        """Constructor kwargs reproducing this estimator.

        This is what engine snapshots persist instead of the estimator
        object's caches: ``SampleSizeEstimator(**config)`` on restore
        yields an estimator whose plans are bit-identical to the
        originals (plans are pure functions of condition, spec and this
        configuration).
        """
        return {
            "optimizations": self.optimizations,
            "variance_bound_policy": self.variance_bound_policy,
            "use_exact_binomial": self.use_exact_binomial,
            "use_plan_cache": self.use_plan_cache,
            "workers": self.workers,
            "precision": self.precision,
            "kernel": self.kernel,
        }

    @staticmethod
    def plan_cache_info() -> CacheInfo:
        """Hit/miss statistics of the shared plan cache."""
        return _PLAN_CACHE.info()

    @staticmethod
    def clear_plan_cache() -> None:
        """Invalidate the shared plan cache (all estimator instances).

        Also reachable through
        :func:`repro.stats.cache.clear_all_caches`, which additionally
        drops the memoized tight bounds underneath the plans.
        """
        _PLAN_CACHE.clear()

    # -- public API ----------------------------------------------------------
    def plan(
        self,
        condition: str | Formula,
        *,
        reliability: float | None = None,
        delta: float | None = None,
        adaptivity: str | Adaptivity = Adaptivity.NONE,
        steps: int = 1,
        known_variance_bound: float | None = None,
        strict_parse: bool = False,
    ) -> SampleSizePlan:
        """Produce a :class:`SampleSizePlan` for ``condition``.

        Parameters
        ----------
        condition:
            DSL source text or an already-parsed :class:`Formula`.
        reliability:
            The script's ``reliability`` field (``1 - delta``).  Exactly
            one of ``reliability`` and ``delta`` must be given.
        delta:
            The failure budget directly.
        adaptivity:
            ``"none"``, ``"full"``, ``"firstChange"`` or an
            :class:`Adaptivity` member.
        steps:
            The script's ``steps`` field — testset lifetime ``H``.
        known_variance_bound:
            An a-priori upper bound on the prediction-difference rate
            between consecutive models, enabling the Pattern 2 / Figure 5
            optimization even without an explicit ``d`` clause.
        strict_parse:
            Enforce the literal Appendix A.1 grammar.
        """
        formula = self._coerce_formula(condition, strict_parse)
        spec = self._coerce_spec(reliability, delta, adaptivity, steps)
        if known_variance_bound is not None:
            check_probability(known_variance_bound, "known_variance_bound")

        # The cache key normalizes the condition through the parsed
        # formula's canonical source, so textual variants of the same
        # condition ("n>0.8+/-0.05" vs "n > 0.8 +/- 0.05") share an entry.
        cache_key = (
            formula.to_source(),
            spec.delta,
            spec.adaptivity,
            spec.steps,
            known_variance_bound,
            self._config_key(),
        )
        if self.use_plan_cache:
            cached = _PLAN_CACHE.get(cache_key)
            if cached is not None:
                return cached
            workers = resolve_workers(self.workers)
            if workers > 1:
                # Cold derivation with a parallel executor configured:
                # derive the plan in a worker process (this thread only
                # merges the returned manifest — a serving thread keeps
                # running while the planning CPU burns elsewhere), then
                # serve it from the now-warm shared cache.  Results are
                # identical to the serial derivation; see
                # repro.stats.parallel for the determinism argument.
                get_executor(workers).warm_plans(
                    [
                        {
                            "condition": formula.to_source(),
                            "delta": spec.delta,
                            "adaptivity": spec.adaptivity.value,
                            "steps": spec.steps,
                            "known_variance_bound": known_variance_bound,
                            "estimator": self.export_config(),
                        }
                    ]
                )
                # peek, not get: the miss above is this call's one
                # recorded lookup — serving the worker-derived plan must
                # not inflate the hit statistics operators watch.
                cached = _PLAN_CACHE.peek(cache_key)
                if cached is not None:
                    return cached

        notes: list[str] = []
        strategies = self._choose_strategies(formula, known_variance_bound, notes)
        k = len(formula)
        log_delta_clause = spec.log_effective_delta - math.log(k)
        clause_plans = tuple(
            self._plan_clause(clause, strategies[i], log_delta_clause)
            for i, clause in enumerate(formula)
        )
        plan = SampleSizePlan(
            formula=formula,
            delta=spec.delta,
            adaptivity=spec.adaptivity,
            steps=spec.steps,
            clause_plans=clause_plans,
            notes=tuple(notes),
        )
        if self.use_plan_cache:
            _PLAN_CACHE.put(cache_key, plan)
        return plan

    def baseline_plan(self, condition: str | Formula, **kwargs) -> SampleSizePlan:
        """:meth:`plan` with all optimizations disabled (§3 baseline)."""
        baseline = SampleSizeEstimator(
            optimizations="none", use_plan_cache=self.use_plan_cache
        )
        return baseline.plan(condition, **kwargs)

    def trivial_fully_adaptive_total(
        self,
        condition: str | Formula,
        *,
        reliability: float | None = None,
        delta: float | None = None,
        steps: int = 1,
    ) -> int:
        """Total labels under the trivial strategy of §3.3: a fresh testset
        per commit, ``H * n(F, epsilon, delta / H)``.

        Provided for the ablation that motivates the ``2^H`` bound: for
        moderate ``H`` the single reusable testset sized at ``delta/2^H``
        is far cheaper than ``H`` disposable testsets at ``delta/H``.
        """
        per_step = self.plan(
            condition,
            reliability=reliability,
            delta=delta,
            adaptivity=Adaptivity.NONE,
            steps=steps,
        )
        return per_step.samples * check_positive_int(steps, "steps")

    # -- strategy selection ----------------------------------------------------
    def _choose_strategies(
        self,
        formula: Formula,
        known_variance_bound: float | None,
        notes: list[str],
    ) -> list[tuple[ClauseStrategy, float | None, bool]]:
        """Per-clause (strategy, variance_bound, requires_labels) choices."""
        default: list[tuple[ClauseStrategy, float | None, bool]] = []
        difference = find_difference_clause(formula) if self.optimizations == "auto" else None
        gain = find_gain_clause(formula) if self.optimizations == "auto" else None
        pattern1 = match_pattern1(formula) if self.optimizations == "auto" else None

        gain_bound: float | None = None
        if self.optimizations == "auto":
            if pattern1 is not None:
                gain_bound = (
                    pattern1.difference.threshold
                    if self.variance_bound_policy == "threshold"
                    else pattern1.difference.inflated_variance_bound
                )
                # The per-example difference is a {-1, 0, 1} variable, so its
                # second moment can never exceed 1.
                gain_bound = min(1.0, gain_bound)
                notes.append(
                    "pattern 1 (hierarchical testing): gain clause sized with "
                    f"Bennett at variance bound p={gain_bound:g} from "
                    f"{pattern1.difference.clause.to_source()!r}"
                )
            elif gain is not None and known_variance_bound is not None:
                gain_bound = known_variance_bound
                notes.append(
                    "pattern 2 (implicit variance bound): gain clause sized "
                    f"with Bennett at known variance bound p={gain_bound:g}"
                )

        for clause in formula:
            lin = linearize(clause)
            variables = lin.variables()
            requires_labels = variables != {"d"}
            if (
                gain is not None
                and clause == gain.clause
                and gain_bound is not None
            ):
                default.append((ClauseStrategy.BENNETT_PAIRED, gain_bound, True))
                continue
            if (
                self.use_exact_binomial
                and len(variables) == 1
                and abs(abs(lin.coefficient(next(iter(variables)))) - 1.0) < 1e-12
            ):
                default.append((ClauseStrategy.EXACT_BINOMIAL, None, requires_labels))
                continue
            default.append(
                (ClauseStrategy.HOEFFDING_PER_VARIABLE, None, requires_labels)
            )
        return default

    # -- clause sizing -----------------------------------------------------------
    def _plan_clause(
        self,
        clause: Clause,
        strategy_info: tuple[ClauseStrategy, float | None, bool],
        log_delta_clause: float,
    ) -> ClausePlan:
        strategy, variance_bound, requires_labels = strategy_info
        delta_clause = math.exp(log_delta_clause)
        if strategy is ClauseStrategy.BENNETT_PAIRED:
            return self._plan_bennett_clause(
                clause, variance_bound, delta_clause, requires_labels
            )
        if strategy is ClauseStrategy.EXACT_BINOMIAL:
            samples = float(
                tight_sample_size(
                    clause.tolerance,
                    min(delta_clause, 0.5),
                    precision=self.precision,
                    kernel=self.kernel,
                )
            )
            lin = linearize(clause)
            (variable,) = lin.variables()
            term = TermAllocation(
                variable=variable,
                coefficient=lin.coefficient(variable),
                value_range=1.0,
                delta=delta_clause,
                tolerance=clause.tolerance,
                samples=samples,
            )
            return ClausePlan(
                clause=clause,
                strategy=strategy,
                delta=delta_clause,
                samples=samples,
                terms=(term,),
                requires_labels=requires_labels,
            )
        return self._plan_hoeffding_clause(clause, delta_clause, requires_labels)

    def _plan_hoeffding_clause(
        self, clause: Clause, delta_clause: float, requires_labels: bool
    ) -> ClausePlan:
        """Baseline §3.1: Hoeffding per variable, optimal tolerance split."""
        lin = linearize(clause)
        variables = sorted(lin.variables())
        if not variables:
            raise InfeasibleConditionError(
                f"clause {clause.to_source()!r} references no variable"
            )
        m = len(variables)
        delta_term = delta_clause / m
        terms_spec = [
            (v, lin.coefficient(v), 1.0, delta_term) for v in variables
        ]
        allocations = allocate_tolerances(terms_spec, clause.tolerance)
        samples = allocations[0].samples
        return ClausePlan(
            clause=clause,
            strategy=ClauseStrategy.HOEFFDING_PER_VARIABLE,
            delta=delta_clause,
            samples=samples,
            terms=tuple(allocations),
            requires_labels=requires_labels,
        )

    def _plan_bennett_clause(
        self,
        clause: Clause,
        variance_bound: float | None,
        delta_clause: float,
        requires_labels: bool,
    ) -> ClausePlan:
        """Optimized §4.1/4.2: two-sided Bennett on the paired difference.

        For a gain clause ``a*(n - o) > C``, the per-example variable is
        ``a * (n_i - o_i)`` with ``|X| <= a`` and ``E[X^2] <= a^2 p``.
        """
        if variance_bound is None:  # pragma: no cover - guarded by caller
            raise InvalidParameterError("BENNETT_PAIRED requires a variance bound")
        lin = linearize(clause)
        scale = abs(lin.coefficient("n"))
        bennett = BennettInequality(
            variance_bound=scale * scale * variance_bound,
            magnitude_bound=scale,
            two_sided=True,
        )
        samples = bennett.sample_size(clause.tolerance, delta_clause)
        return ClausePlan(
            clause=clause,
            strategy=ClauseStrategy.BENNETT_PAIRED,
            delta=delta_clause,
            samples=samples,
            variance_bound=variance_bound,
            requires_labels=requires_labels,
            labeled_fraction=min(1.0, variance_bound),
        )

    # -- coercions ---------------------------------------------------------------
    @staticmethod
    def _coerce_formula(condition: str | Formula, strict_parse: bool) -> Formula:
        if isinstance(condition, Formula):
            return condition
        if isinstance(condition, str):
            return parse_condition(condition, strict=strict_parse)
        raise InvalidParameterError(
            f"condition must be a string or Formula, got {type(condition).__name__}"
        )

    @staticmethod
    def _coerce_spec(
        reliability: float | None,
        delta: float | None,
        adaptivity: str | Adaptivity,
        steps: int,
    ) -> _ReliabilitySpec:
        if (reliability is None) == (delta is None):
            raise InvalidParameterError(
                "specify exactly one of reliability (= 1 - delta) or delta"
            )
        if delta is None:
            reliability = check_probability(reliability, "reliability")
            delta = 1.0 - reliability
        delta = check_probability(delta, "delta")
        if not isinstance(adaptivity, Adaptivity):
            adaptivity = Adaptivity.parse(str(adaptivity))
        steps = check_positive_int(steps, "steps")
        return _ReliabilitySpec(delta=delta, adaptivity=adaptivity, steps=steps)


# ---------------------------------------------------------------------------
# Restore warmer: re-derive snapshot-manifested plans into the shared cache
# ---------------------------------------------------------------------------

def _warm_plan_cache(manifest: Mapping[str, Any]) -> None:
    """Re-derive every plan request named in a snapshot's warm manifest.

    Engine snapshots never serialize :class:`SampleSizePlan` objects; they
    carry ``manifest["plans"]`` — a list of plan *requests* (condition
    source, delta, adaptivity, steps, variance bound, estimator config).
    Replaying the requests here repopulates the process-wide plan cache
    (and, transitively, the tight-bound caches underneath), so a restored
    engine's re-derived plan is served warm and bit-identical.  The
    derivation is forced serial whatever ``workers`` the snapshotted
    estimator carried — a crash-recovery path should never block on
    spawning a worker pool, and worker count does not affect the plan.
    """
    for request in manifest.get("plans", ()):
        config = dict(request.get("estimator") or {})
        config["workers"] = "serial"
        estimator = SampleSizeEstimator(**config)
        estimator.plan(
            request["condition"],
            delta=request["delta"],
            adaptivity=request["adaptivity"],
            steps=request["steps"],
            known_variance_bound=request.get("known_variance_bound"),
        )


register_restore_warmer("estimators.plan_cache", _warm_plan_cache)
