"""Sample-size estimation (Sections 3 and 4 of the paper).

The public entry point is :class:`SampleSizeEstimator`, which turns a parsed
formula plus reliability parameters into a :class:`SampleSizePlan` — the
number of test examples to request from the user, along with the
per-clause / per-variable tolerance and failure-probability allocations that
the condition evaluator later consumes (so the (epsilon, delta) contract is
honoured end to end by construction).

Layering:

* :mod:`adaptivity` — the none / full / firstChange delta budgets (§3.2–3.4);
* :mod:`allocation` — optimal tolerance allocation across the terms of a
  linear expression (the ``min max`` problem of §3.1, in closed form);
* :mod:`plans` — the frozen result dataclasses;
* :mod:`api` — the estimator facade, including pattern-optimized planning.
"""

from repro.core.estimators.adaptivity import Adaptivity
from repro.core.estimators.allocation import allocate_tolerances, TermAllocation
from repro.core.estimators.plans import ClausePlan, SampleSizePlan, ClauseStrategy
from repro.core.estimators.api import SampleSizeEstimator

__all__ = [
    "Adaptivity",
    "allocate_tolerances",
    "TermAllocation",
    "ClauseStrategy",
    "ClausePlan",
    "SampleSizePlan",
    "SampleSizeEstimator",
]
