"""Interval arithmetic for confidence-interval-based condition evaluation.

Section 3.5: instead of comparing point estimates against thresholds (which
produces uncontrolled false positives *and* negatives), ease.ml/ci replaces
each estimate by its confidence interval and evaluates clause left-hand
sides with a simple interval algebra, e.g. ``[a, b] + [c, d] = [a+c, b+d]``.
A comparison of an interval against a constant then yields three-valued
output (True / False / Unknown) — see :mod:`repro.core.logic`.

Only the operations the DSL needs are implemented: addition, subtraction,
scaling by a constant, and containment/ordering queries.  Multiplication of
two intervals is intentionally absent (the DSL is linear).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.logic import TernaryResult
from repro.exceptions import InvalidParameterError

__all__ = ["Interval"]


@dataclass(frozen=True)
class Interval:
    """A closed real interval ``[low, high]``.

    Used to carry ``point estimate ± tolerance`` through expression
    evaluation.  Degenerate intervals (``low == high``) represent exact
    values.
    """

    low: float
    high: float

    def __post_init__(self) -> None:
        if not self.low <= self.high:
            raise InvalidParameterError(
                f"interval bounds out of order: [{self.low}, {self.high}]"
            )

    # -- constructors --------------------------------------------------------
    @classmethod
    def from_estimate(cls, center: float, tolerance: float) -> "Interval":
        """The interval ``[center - tolerance, center + tolerance]``."""
        if tolerance < 0:
            raise InvalidParameterError(f"tolerance must be >= 0, got {tolerance}")
        return cls(center - tolerance, center + tolerance)

    @classmethod
    def exact(cls, value: float) -> "Interval":
        """A degenerate (zero-width) interval."""
        return cls(value, value)

    # -- geometry ------------------------------------------------------------
    @property
    def width(self) -> float:
        """``high - low``."""
        return self.high - self.low

    @property
    def center(self) -> float:
        """Midpoint."""
        return (self.low + self.high) / 2.0

    def contains(self, value: float) -> bool:
        """Whether ``value`` lies in the closed interval."""
        return self.low <= value <= self.high

    # -- algebra (Section 3.5) -------------------------------------------------
    def __add__(self, other: "Interval") -> "Interval":
        return Interval(self.low + other.low, self.high + other.high)

    def __sub__(self, other: "Interval") -> "Interval":
        return Interval(self.low - other.high, self.high - other.low)

    def __neg__(self) -> "Interval":
        return Interval(-self.high, -self.low)

    def scale(self, factor: float) -> "Interval":
        """Multiply by a scalar (flipping endpoints for negative factors)."""
        a, b = self.low * factor, self.high * factor
        return Interval(min(a, b), max(a, b))

    def shift(self, offset: float) -> "Interval":
        """Translate both endpoints by ``offset``."""
        return Interval(self.low + offset, self.high + offset)

    def intersect(self, other: "Interval") -> "Interval | None":
        """Intersection, or ``None`` when disjoint."""
        lo, hi = max(self.low, other.low), min(self.high, other.high)
        return Interval(lo, hi) if lo <= hi else None

    # -- three-valued comparisons (Appendix A.2) -------------------------------
    def compare_greater(self, threshold: float) -> TernaryResult:
        """Three-valued ``self > threshold``.

        True when the entire interval clears the threshold, False when the
        entire interval is at or below it, Unknown when it straddles.
        """
        if self.low > threshold:
            return TernaryResult.TRUE
        if self.high <= threshold:
            return TernaryResult.FALSE
        return TernaryResult.UNKNOWN

    def compare_less(self, threshold: float) -> TernaryResult:
        """Three-valued ``self < threshold``."""
        if self.high < threshold:
            return TernaryResult.TRUE
        if self.low >= threshold:
            return TernaryResult.FALSE
        return TernaryResult.UNKNOWN

    def compare(self, comparator: str, threshold: float) -> TernaryResult:
        """Dispatch on the DSL comparator (``">"`` or ``"<"``)."""
        if comparator == ">":
            return self.compare_greater(threshold)
        if comparator == "<":
            return self.compare_less(threshold)
        raise InvalidParameterError(f"unknown comparator {comparator!r}")

    def __str__(self) -> str:
        return f"[{self.low:g}, {self.high:g}]"
