"""Label-complexity optimizations (Section 4 of the paper).

ease.ml/ci improves on the worst-case ``O(1/epsilon^2)`` Hoeffding sizing
not in general, but for a sub-family of practically popular conditions:

* **Pattern 1** (:mod:`hierarchical`) — formulas containing
  ``d < A +/- B /\\ n - o > C +/- D``: the difference clause bounds the
  variance of the paired difference, unlocking Bennett's inequality
  (up to ~10x fewer labels at one-point tolerance), and the difference can
  be *tested on unlabeled data* (hierarchical testing).
* **Active labeling** (:mod:`active`) — only predictions that differ
  between the two models need labels, so the per-commit labeling effort is
  a further factor ``p`` smaller and can be amortized day by day.
* **Pattern 2** (:mod:`implicit_variance`) — bare ``n - o > C +/- D``
  conditions: the system estimates the disagreement on a (16x smaller)
  unlabeled testset first, then applies the Pattern 1 machinery with the
  estimated variance bound.
* **Coarse-to-fine** (:mod:`implicit_variance`) — ``n > A +/- B`` with
  large ``A``: a coarse lower bound on ``n`` bounds the Bernoulli variance
  by ``lb (1 - lb)``, again enabling Bennett.

:mod:`matcher` contains the structural formula matching shared by all of
them.
"""

from repro.core.patterns.matcher import (
    DifferenceClauseMatch,
    GainClauseMatch,
    AccuracyBoundMatch,
    find_difference_clause,
    find_gain_clause,
    find_accuracy_bound_clause,
    match_pattern1,
    match_pattern2,
    Pattern1Match,
)
from repro.core.patterns.hierarchical import HierarchicalTest, FilterOutcome
from repro.core.patterns.active import ActiveLabelingSession, ActiveLabelingStep
from repro.core.patterns.implicit_variance import (
    ImplicitVarianceProcedure,
    CoarseToFineAccuracyTest,
)

__all__ = [
    "DifferenceClauseMatch",
    "GainClauseMatch",
    "AccuracyBoundMatch",
    "find_difference_clause",
    "find_gain_clause",
    "find_accuracy_bound_clause",
    "match_pattern1",
    "match_pattern2",
    "Pattern1Match",
    "HierarchicalTest",
    "FilterOutcome",
    "ActiveLabelingSession",
    "ActiveLabelingStep",
    "ImplicitVarianceProcedure",
    "CoarseToFineAccuracyTest",
]
