"""Pattern 2 (§4.2): implicit variance bounds when no ``d`` clause exists.

Even without an explicit disagreement constraint, consecutive commits in a
real development process rarely differ much (the paper's ImageNet-winners
observation: five years of architectures disagree on at most 25% of top-1
predictions).  Pattern 2 exploits this in two steps:

1. estimate the disagreement ``d`` on a *first*, unlabeled testset up to
   tolerance ``2D`` — a testset 16x smaller than what testing ``n - o``
   directly at ``D`` would need (4x from the doubled tolerance, 4x from
   the halved range);
2. use ``p_hat = d_hat + 2D`` as the variance bound for a Bennett test of
   ``n - o`` at tolerance ``D`` on a *second* testset, growing the labeled
   portion incrementally (active labeling) since the required size is
   unknown before step 1 runs.

The module also implements the §4.2 coarse-to-fine refinement for
``n > A +/- B`` with large ``A``: a coarse accuracy estimate pins the
Bernoulli variance near ``A (1 - A)``, which is small when ``A`` is close
to 1.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.intervals import Interval
from repro.core.logic import Mode, TernaryResult, resolve_ternary
from repro.core.patterns.matcher import AccuracyBoundMatch, GainClauseMatch
from repro.exceptions import InvalidParameterError, TestsetSizeError
from repro.stats.estimation import PairedSample
from repro.stats.inequalities import BennettInequality, HoeffdingInequality
from repro.utils.validation import check_probability

__all__ = [
    "ImplicitVarianceOutcome",
    "ImplicitVarianceProcedure",
    "CoarseToFineAccuracyTest",
]


@dataclass(frozen=True)
class ImplicitVarianceOutcome:
    """Outcome of the two-testset Pattern 2 procedure.

    Attributes
    ----------
    difference_estimate:
        ``d_hat`` measured on the first (unlabeled) testset.
    variance_bound:
        The bound ``p_hat = d_hat + 2D`` handed to Bennett.
    test_samples_required:
        Size of the second testset demanded by the Bennett step (known
        only after the first stage — the "incremental growth" caveat).
    gain_estimate:
        Paired gain on the second testset.
    gain_interval:
        ``gain ± D``.
    outcome, passed:
        Ternary outcome and resolved binary signal.
    """

    difference_estimate: float
    variance_bound: float
    test_samples_required: int
    gain_estimate: float
    gain_interval: Interval
    outcome: TernaryResult
    passed: bool


class ImplicitVarianceProcedure:
    """Runtime driver for Pattern 2.

    Parameters
    ----------
    gain:
        The matched ``n - o > C +/- D`` clause.
    delta:
        Per-evaluation failure budget; split evenly between the two stages.
    mode:
        Signal resolution mode.
    """

    def __init__(self, gain: GainClauseMatch, delta: float, mode: Mode | str = Mode.FP_FREE):
        self.gain = gain
        self.delta = check_probability(delta, "delta")
        self.mode = Mode.parse(mode) if isinstance(mode, str) else mode

    @property
    def difference_tolerance(self) -> float:
        """Stage 1 estimates ``d`` up to ``2D`` (§4.2)."""
        return 2.0 * self.gain.tolerance

    @property
    def difference_samples(self) -> int:
        """Size of the first (unlabeled) testset.

        16x smaller than the Hoeffding baseline for ``n - o`` at ``D``:
        the tolerance doubles (4x) and the range halves (4x).
        """
        hoeffding = HoeffdingInequality(value_range=1.0, two_sided=False)
        return int(
            math.ceil(
                hoeffding.sample_size(self.difference_tolerance, self.delta / 2.0)
            )
        )

    def test_samples_for(self, variance_bound: float) -> int:
        """Size of the second testset once ``p_hat`` is known.

        ``variance_bound = 1`` is the degenerate no-information case
        (Bennett then roughly matches Hoeffding on the paired variable).
        """
        from repro.utils.validation import check_in_range

        check_in_range(
            variance_bound, "variance_bound", 0.0, 1.0, low_inclusive=False
        )
        bennett = BennettInequality(
            variance_bound=min(1.0, variance_bound * self.gain.scale**2),
            magnitude_bound=self.gain.scale,
            two_sided=True,
        )
        return int(math.ceil(bennett.sample_size(self.gain.tolerance, self.delta / 2.0)))

    def run(
        self,
        difference_sample: PairedSample,
        test_sample: PairedSample,
    ) -> ImplicitVarianceOutcome:
        """Execute both stages.

        Parameters
        ----------
        difference_sample:
            Unlabeled paired predictions for stage 1 (must have at least
            :attr:`difference_samples` examples).
        test_sample:
            Labeled paired predictions for stage 2 (size checked against
            the stage-1-determined requirement).
        """
        if len(difference_sample) < self.difference_samples:
            raise TestsetSizeError(
                f"stage 1 needs {self.difference_samples} examples, got "
                f"{len(difference_sample)}"
            )
        d_hat = difference_sample.difference
        p_hat = min(1.0, d_hat + self.difference_tolerance)
        required = self.test_samples_for(p_hat)
        if len(test_sample) < required:
            raise TestsetSizeError(
                f"stage 2 needs {required} examples at p_hat={p_hat:g}, got "
                f"{len(test_sample)}; grow the labeled testset incrementally"
            )
        gain_estimate = self.gain.scale * test_sample.accuracy_gain
        interval = Interval.from_estimate(gain_estimate, self.gain.tolerance)
        outcome = interval.compare(">", self.gain.threshold)
        return ImplicitVarianceOutcome(
            difference_estimate=d_hat,
            variance_bound=p_hat,
            test_samples_required=required,
            gain_estimate=gain_estimate,
            gain_interval=interval,
            outcome=outcome,
            passed=resolve_ternary(outcome, self.mode),
        )


class CoarseToFineAccuracyTest:
    """§4.2's refinement for ``n > A +/- B`` with large ``A``.

    Stage 1 estimates the accuracy coarsely (tolerance ``coarse_tolerance``,
    budget ``delta/2``) to establish a lower bound ``lb = n_hat - coarse``.
    When ``lb >= 1/2``, the Bernoulli variance of the correctness
    indicator is at most ``lb (1 - lb)``, so stage 2 runs Bennett on the
    *centered* correctness variable at tolerance ``B`` and budget
    ``delta/2``.  The improvement is real only when ``A`` is large
    (e.g. 0.9 or 0.95): at ``A = 0.95`` the variance bound ~0.05 brings
    roughly the same ~10x savings as Pattern 1 at ``p = 0.1``.

    Parameters
    ----------
    bound:
        The matched ``n > A +/- B`` clause.
    delta:
        Per-evaluation budget, split across the two stages.
    coarse_tolerance:
        Stage 1 tolerance; defaults to ``(1 - A) / 2``, comfortably coarse.
    """

    def __init__(
        self,
        bound: AccuracyBoundMatch,
        delta: float,
        mode: Mode | str = Mode.FN_FREE,
        *,
        coarse_tolerance: float | None = None,
    ):
        self.bound = bound
        self.delta = check_probability(delta, "delta")
        self.mode = Mode.parse(mode) if isinstance(mode, str) else mode
        if coarse_tolerance is None:
            coarse_tolerance = max((1.0 - bound.threshold) / 2.0, bound.tolerance)
        if coarse_tolerance <= 0:
            raise InvalidParameterError("coarse_tolerance must be positive")
        self.coarse_tolerance = coarse_tolerance

    @property
    def coarse_samples(self) -> int:
        """Stage 1 sample size (two-sided: the bound cuts both ways)."""
        hoeffding = HoeffdingInequality(value_range=1.0, two_sided=True)
        return int(
            math.ceil(hoeffding.sample_size(self.coarse_tolerance, self.delta / 2.0))
        )

    def fine_samples_for(self, lower_bound: float) -> int:
        """Stage 2 Bennett size given the established accuracy lower bound.

        Falls back to plain Hoeffding when the lower bound is below 1/2
        (no useful variance bound exists there).
        """
        if lower_bound < 0.5:
            hoeffding = HoeffdingInequality(value_range=1.0, two_sided=True)
            return int(
                math.ceil(hoeffding.sample_size(self.bound.tolerance, self.delta / 2.0))
            )
        variance = lower_bound * (1.0 - lower_bound)
        variance = max(variance, 1e-12)
        bennett = BennettInequality(
            variance_bound=variance, magnitude_bound=1.0, two_sided=True
        )
        return int(
            math.ceil(bennett.sample_size(self.bound.tolerance, self.delta / 2.0))
        )

    def run(self, coarse_accuracy: float, fine_sample_accuracy: float, fine_n: int):
        """Evaluate given the two stages' measured accuracies.

        Returns ``(lower_bound, required_fine_n, ternary, passed)``;
        raises :class:`TestsetSizeError` when ``fine_n`` is insufficient
        for the variance bound implied by ``coarse_accuracy``.
        """
        lower_bound = max(0.0, coarse_accuracy - self.coarse_tolerance)
        required = self.fine_samples_for(lower_bound)
        if fine_n < required:
            raise TestsetSizeError(
                f"fine stage needs {required} samples at lower bound "
                f"{lower_bound:g}, got {fine_n}"
            )
        interval = Interval.from_estimate(fine_sample_accuracy, self.bound.tolerance)
        outcome = interval.compare(">", self.bound.threshold)
        return lower_bound, required, outcome, resolve_ternary(outcome, self.mode)
