"""Hierarchical testing (Pattern 1, §4.1.1).

The two-level test for formulas ``d < A +/- B /\\ n - o > C +/- D``:

1. **Filter** — estimate the disagreement ``d`` on *unlabeled* data to an
   ``(epsilon', delta/2)`` guarantee.  If ``d_hat > A + epsilon'`` the
   condition already fails (the difference clause cannot hold), and no
   labels are spent at all.
2. **Test** — conditioned on the filter passing, the per-example paired
   difference has second moment at most ``p`` (``= A`` under the paper's
   "threshold" policy, ``= A + 2 epsilon'`` under the strictly safe
   "inflated" policy), so the gain clause is tested with two-sided
   Bennett at budget ``delta/2``.

With ``p = 0.1``, ``1 - delta = 0.9999`` and one-point tolerance this
yields 29K samples for 32 non-adaptive steps and ~68K for 32
fully-adaptive steps — about 10x below the Hoeffding baseline (§4.1.1).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from repro.core.intervals import Interval
from repro.core.logic import Mode, TernaryResult, resolve_ternary, ternary_and
from repro.core.patterns.matcher import DifferenceClauseMatch, GainClauseMatch
from repro.exceptions import InvalidParameterError, TestsetSizeError
from repro.stats.estimation import PairedSample
from repro.stats.inequalities import BennettInequality, HoeffdingInequality
from repro.utils.validation import check_probability

__all__ = ["FilterOutcome", "HierarchicalOutcome", "HierarchicalTest"]


class FilterOutcome(enum.Enum):
    """Result of the unlabeled filter stage."""

    #: ``d_hat > A + epsilon'`` — reject without labeling anything.
    REJECTED = "rejected"
    #: The difference is plausibly below the cap; proceed to the test stage.
    PROCEED = "proceed"


@dataclass(frozen=True)
class HierarchicalOutcome:
    """Full outcome of a hierarchical evaluation.

    Attributes
    ----------
    filter_outcome:
        Whether the unlabeled filter rejected the commit outright.
    difference_estimate:
        ``d_hat`` from the filter stage.
    difference_outcome:
        Ternary outcome of the difference clause itself.
    gain_interval:
        Confidence interval for the gain clause LHS (``None`` when the
        filter rejected, since the test stage never ran).
    gain_outcome:
        Ternary outcome of the gain clause (``FALSE`` on filter rejection:
        the conjunction is already decided).
    ternary:
        Conjunction outcome.
    passed:
        Binary signal after mode resolution.
    labels_used:
        Number of labeled examples consumed (0 on filter rejection).
    """

    filter_outcome: FilterOutcome
    difference_estimate: float
    difference_outcome: TernaryResult
    gain_interval: Interval | None
    gain_outcome: TernaryResult
    ternary: TernaryResult
    passed: bool
    labels_used: int


class HierarchicalTest:
    """Runtime two-stage evaluator for Pattern 1 formulas.

    Parameters
    ----------
    difference:
        The matched ``d < A +/- B`` clause.
    gain:
        The matched ``n - o > C +/- D`` clause.
    delta:
        The per-evaluation failure budget (already divided by ``H`` or
        ``2^H`` by the caller); split ``delta/2`` filter, ``delta/2`` test.
    mode:
        fp-free / fn-free resolution for the final signal.
    variance_bound_policy:
        ``"threshold"`` (``p = A``, paper §4.1.1 numbers) or ``"inflated"``
        (``p = A + 2B``).
    """

    def __init__(
        self,
        difference: DifferenceClauseMatch,
        gain: GainClauseMatch,
        delta: float,
        mode: Mode | str = Mode.FP_FREE,
        *,
        variance_bound_policy: str = "threshold",
    ):
        self.difference = difference
        self.gain = gain
        self.delta = check_probability(delta, "delta")
        self.mode = Mode.parse(mode) if isinstance(mode, str) else mode
        if variance_bound_policy not in ("threshold", "inflated"):
            raise InvalidParameterError(
                f"unknown variance_bound_policy {variance_bound_policy!r}"
            )
        self.variance_bound_policy = variance_bound_policy

    # -- sizing ----------------------------------------------------------------
    @property
    def variance_bound(self) -> float:
        """The ``p`` used by the Bennett test stage."""
        if self.variance_bound_policy == "threshold":
            return min(1.0, self.difference.threshold)
        return min(1.0, self.difference.inflated_variance_bound)

    @property
    def filter_samples(self) -> int:
        """Unlabeled samples for the ``(epsilon', delta/2)`` filter."""
        hoeffding = HoeffdingInequality(value_range=1.0, two_sided=False)
        return int(
            math.ceil(
                hoeffding.sample_size(self.difference.tolerance, self.delta / 2.0)
            )
        )

    @property
    def test_samples(self) -> int:
        """Samples for the Bennett test stage (labels only on disagreements)."""
        bennett = BennettInequality(
            variance_bound=self.variance_bound, magnitude_bound=1.0, two_sided=True
        )
        return int(
            math.ceil(bennett.sample_size(self.gain.tolerance, self.delta / 2.0))
        )

    @property
    def expected_labels(self) -> int:
        """Expected labels per evaluation: only disagreements are labeled."""
        return int(math.ceil(self.test_samples * self.variance_bound))

    # -- runtime ---------------------------------------------------------------
    def run(self, sample: PairedSample) -> HierarchicalOutcome:
        """Run filter then (conditionally) test on one paired sample.

        ``sample`` may be unlabeled; labels are only touched if the filter
        lets the commit through, and only the disagreement subset is read
        (callers integrating with a labeling workflow should consult
        :attr:`HierarchicalOutcome.labels_used`).
        """
        if len(sample) < max(self.filter_samples, self.test_samples):
            raise TestsetSizeError(
                f"sample has {len(sample)} examples; hierarchical test needs "
                f"max(filter={self.filter_samples}, test={self.test_samples})"
            )
        d_hat = sample.difference
        eps_prime = self.difference.tolerance
        diff_interval = Interval.from_estimate(d_hat, eps_prime)
        diff_outcome = diff_interval.compare("<", self.difference.threshold)

        if d_hat > self.difference.threshold + eps_prime:
            # Step 1 of §4.1.1: reject with no labeling at all.
            ternary = TernaryResult.FALSE
            return HierarchicalOutcome(
                filter_outcome=FilterOutcome.REJECTED,
                difference_estimate=d_hat,
                difference_outcome=TernaryResult.FALSE,
                gain_interval=None,
                gain_outcome=TernaryResult.FALSE,
                ternary=ternary,
                passed=resolve_ternary(ternary, self.mode),
                labels_used=0,
            )

        # Step 2: Bennett test of the gain clause on labeled disagreements.
        gain_estimate = self.gain.scale * sample.accuracy_gain
        gain_interval = Interval.from_estimate(gain_estimate, self.gain.tolerance)
        gain_outcome = gain_interval.compare(">", self.gain.threshold)
        ternary = ternary_and((diff_outcome, gain_outcome))
        labels_used = int(sample.disagreement_mask.sum())
        return HierarchicalOutcome(
            filter_outcome=FilterOutcome.PROCEED,
            difference_estimate=d_hat,
            difference_outcome=diff_outcome,
            gain_interval=gain_interval,
            gain_outcome=gain_outcome,
            ternary=ternary,
            passed=resolve_ternary(ternary, self.mode),
            labels_used=labels_used,
        )
