"""Active labeling (§4.1.2): label only what the models disagree on.

To estimate the paired gain ``n - o``, examples where old and new models
agree contribute exactly zero to the sum of per-example differences — so
their labels are never read.  When consecutive commits differ on at most a
fraction ``p`` of predictions, each commit needs at most ``p * N`` fresh
labels, and labels accumulate in a pool: an example labeled for commit 3
is free for commit 7.

This module implements the bookkeeping as a session object over a fixed
unlabeled pool (the paper's stationarity requirement: "ask the user to
provide a pool of unlabeled data points at the same time, and then only
ask for labels when needed").  The label source is any callable mapping
pool indices to labels — in production a human labeling queue, in the
experiments an oracle backed by the synthetic dataset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.intervals import Interval
from repro.core.logic import Mode, TernaryResult, resolve_ternary
from repro.core.patterns.matcher import GainClauseMatch
from repro.exceptions import InvalidParameterError, LabelBudgetExceededError
from repro.utils.validation import check_positive_int

__all__ = ["ActiveLabelingStep", "ActiveLabelingSession"]

#: Signature of a label source: receives ascending pool indices, returns
#: the corresponding labels.
LabelSource = Callable[[np.ndarray], np.ndarray]


@dataclass(frozen=True)
class ActiveLabelingStep:
    """Outcome of evaluating one commit inside an active-labeling session.

    Attributes
    ----------
    commit_index:
        0-based index of the evaluation within the session.
    difference_estimate:
        ``d_hat`` between the new model and the session's reference model,
        computed label-free on the full pool.
    gain_estimate:
        Paired estimate of ``n - o`` over the full pool (labels read only
        on disagreements).
    gain_interval:
        ``gain_estimate ± tolerance``.
    outcome:
        Ternary comparison of the gain clause.
    passed:
        Binary signal after mode resolution.
    fresh_labels:
        Labels newly acquired for this commit.
    cumulative_labels:
        Total labels acquired since the session started.
    """

    commit_index: int
    difference_estimate: float
    gain_estimate: float
    gain_interval: Interval
    outcome: TernaryResult
    passed: bool
    fresh_labels: int
    cumulative_labels: int


class ActiveLabelingSession:
    """Amortized labeling over a fixed unlabeled pool.

    Parameters
    ----------
    pool_size:
        Number of examples in the unlabeled pool (the Bennett-sized
        testset).
    label_source:
        Callable invoked with the indices that need fresh labels; must
        return the labels in the same order.
    gain:
        The matched gain clause being tested.
    mode:
        fp-free / fn-free signal resolution.
    reference_predictions:
        Predictions of the deployed (old) model on the pool.
    max_labels:
        Optional hard cap on total labels; exceeding it raises
        :class:`LabelBudgetExceededError` (for budget-bounded workflows).
    """

    def __init__(
        self,
        pool_size: int,
        label_source: LabelSource,
        gain: GainClauseMatch,
        reference_predictions: np.ndarray,
        mode: Mode | str = Mode.FP_FREE,
        *,
        max_labels: int | None = None,
    ):
        self.pool_size = check_positive_int(pool_size, "pool_size")
        reference_predictions = np.asarray(reference_predictions)
        if len(reference_predictions) != self.pool_size:
            raise InvalidParameterError(
                f"reference_predictions has {len(reference_predictions)} entries "
                f"for a pool of {self.pool_size}"
            )
        self.label_source = label_source
        self.gain = gain
        self.mode = Mode.parse(mode) if isinstance(mode, str) else mode
        self.reference_predictions = reference_predictions
        self.max_labels = max_labels
        # labels[i] is meaningful only where labeled_mask[i] is True.
        self._labels = np.zeros(self.pool_size, dtype=reference_predictions.dtype)
        self._labeled_mask = np.zeros(self.pool_size, dtype=bool)
        self._steps: list[ActiveLabelingStep] = []

    # -- inspection -------------------------------------------------------------
    @property
    def labeled_count(self) -> int:
        """Total pool examples labeled so far."""
        return int(self._labeled_mask.sum())

    @property
    def steps(self) -> list[ActiveLabelingStep]:
        """History of evaluations, in order."""
        return list(self._steps)

    @property
    def labeled_fraction(self) -> float:
        """Fraction of the pool labeled so far."""
        return self.labeled_count / self.pool_size

    # -- the core operation --------------------------------------------------------
    def evaluate_commit(self, new_predictions: np.ndarray) -> ActiveLabelingStep:
        """Evaluate a new model against the session's reference model.

        Acquires labels only for disagreeing examples not labeled before,
        then forms the paired gain estimate over the *entire* pool
        (agreements contribute zero difference regardless of their label).
        """
        new_predictions = np.asarray(new_predictions)
        if len(new_predictions) != self.pool_size:
            raise InvalidParameterError(
                f"new_predictions has {len(new_predictions)} entries for a "
                f"pool of {self.pool_size}"
            )
        disagree = new_predictions != self.reference_predictions
        d_hat = float(disagree.mean())

        need = np.flatnonzero(disagree & ~self._labeled_mask)
        if self.max_labels is not None and self.labeled_count + len(need) > self.max_labels:
            raise LabelBudgetExceededError(
                f"commit needs {len(need)} fresh labels; budget "
                f"{self.max_labels - self.labeled_count} remaining"
            )
        if len(need) > 0:
            fresh = np.asarray(self.label_source(need))
            if len(fresh) != len(need):
                raise InvalidParameterError(
                    f"label_source returned {len(fresh)} labels for "
                    f"{len(need)} requests"
                )
            self._labels[need] = fresh
            self._labeled_mask[need] = True

        # Paired gain over the full pool: zero on agreements by construction.
        idx = np.flatnonzero(disagree)
        if len(idx) == 0:
            gain_estimate = 0.0
        else:
            labels = self._labels[idx]
            new_correct = (new_predictions[idx] == labels).astype(np.int8)
            old_correct = (self.reference_predictions[idx] == labels).astype(np.int8)
            gain_estimate = float((new_correct - old_correct).sum() / self.pool_size)

        scaled = self.gain.scale * gain_estimate
        interval = Interval.from_estimate(scaled, self.gain.tolerance)
        outcome = interval.compare(">", self.gain.threshold)
        step = ActiveLabelingStep(
            commit_index=len(self._steps),
            difference_estimate=d_hat,
            gain_estimate=gain_estimate,
            gain_interval=interval,
            outcome=outcome,
            passed=resolve_ternary(outcome, self.mode),
            fresh_labels=len(need),
            cumulative_labels=self.labeled_count,
        )
        self._steps.append(step)
        return step

    def promote_reference(self, new_predictions: np.ndarray) -> None:
        """Make a (passing) model the new reference for later commits."""
        new_predictions = np.asarray(new_predictions)
        if len(new_predictions) != self.pool_size:
            raise InvalidParameterError(
                "promoted predictions must cover the whole pool"
            )
        self.reference_predictions = new_predictions
