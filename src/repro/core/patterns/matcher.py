"""Structural pattern matching on parsed formulas.

The optimizer looks for three clause shapes (after linear canonicalization,
so ``o * -1 + n > ...`` matches just like ``n - o > ...``):

* a **difference clause** ``d < A +/- B`` — coefficient exactly 1 on ``d``,
  nothing else;
* a **gain clause** ``a*(n - o) > C +/- D`` — opposite coefficients on
  ``n`` and ``o`` (positive on ``n``), no ``d`` term; ``a`` is usually 1;
* an **accuracy bound clause** ``n > A +/- B`` — coefficient 1 on ``n``
  alone, used by the coarse-to-fine optimization when ``A`` is large.

Matching is purely structural; whether an optimization actually *fires*
(e.g. Pattern 1 needs both a difference and a gain clause) is decided by
:func:`match_pattern1` / :func:`match_pattern2` and ultimately by the
estimator facade.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.dsl.linear import linearize
from repro.core.dsl.nodes import Clause, Formula

__all__ = [
    "DifferenceClauseMatch",
    "GainClauseMatch",
    "AccuracyBoundMatch",
    "find_difference_clause",
    "find_gain_clause",
    "find_accuracy_bound_clause",
    "Pattern1Match",
    "match_pattern1",
    "match_pattern2",
]

#: Tolerance for float coefficient comparisons during matching.
_COEF_ATOL = 1e-12


@dataclass(frozen=True)
class DifferenceClauseMatch:
    """A clause of the form ``d < A +/- B``.

    Attributes
    ----------
    clause:
        The matched clause.
    threshold:
        ``A`` — the disagreement cap, which doubles as the variance bound
        for the Bennett step.
    tolerance:
        ``B`` — the filter tolerance ``epsilon'``.
    """

    clause: Clause
    threshold: float
    tolerance: float

    @property
    def inflated_variance_bound(self) -> float:
        """The conservative bound ``A + 2 epsilon'`` available after the
        hierarchical filter passes (step 2 of §4.1.1)."""
        return self.threshold + 2.0 * self.tolerance


@dataclass(frozen=True)
class GainClauseMatch:
    """A clause of the form ``a * (n - o) > C +/- D`` with ``a > 0``.

    Attributes
    ----------
    clause:
        The matched clause.
    scale:
        The common coefficient magnitude ``a`` (1 in all paper examples).
    threshold:
        ``C`` (already including any constant folded from the expression).
    tolerance:
        ``D``.
    """

    clause: Clause
    scale: float
    threshold: float
    tolerance: float


@dataclass(frozen=True)
class AccuracyBoundMatch:
    """A clause of the form ``n > A +/- B`` (new-model accuracy floor)."""

    clause: Clause
    threshold: float
    tolerance: float


def find_difference_clause(formula: Formula) -> DifferenceClauseMatch | None:
    """First clause matching ``d < A +/- B``, or ``None``."""
    for clause in formula:
        lin = linearize(clause)
        if (
            clause.comparator == "<"
            and set(lin.variables()) == {"d"}
            and abs(lin.coefficient("d") - 1.0) <= _COEF_ATOL
        ):
            # Fold any constant into the threshold: d + c < A  <=>  d < A - c.
            threshold = clause.threshold - lin.constant
            if 0.0 < threshold <= 1.0:
                return DifferenceClauseMatch(
                    clause=clause, threshold=threshold, tolerance=clause.tolerance
                )
    return None


def find_gain_clause(formula: Formula) -> GainClauseMatch | None:
    """First clause matching ``a*(n - o) > C +/- D`` (``a > 0``), or ``None``."""
    for clause in formula:
        lin = linearize(clause)
        if clause.comparator != ">":
            continue
        if set(lin.variables()) != {"n", "o"}:
            continue
        cn, co = lin.coefficient("n"), lin.coefficient("o")
        if cn <= 0.0 or abs(cn + co) > _COEF_ATOL:
            continue
        return GainClauseMatch(
            clause=clause,
            scale=cn,
            threshold=clause.threshold - lin.constant,
            tolerance=clause.tolerance,
        )
    return None


def find_accuracy_bound_clause(formula: Formula) -> AccuracyBoundMatch | None:
    """First clause matching ``n > A +/- B``, or ``None``."""
    for clause in formula:
        lin = linearize(clause)
        if (
            clause.comparator == ">"
            and set(lin.variables()) == {"n"}
            and abs(lin.coefficient("n") - 1.0) <= _COEF_ATOL
        ):
            threshold = clause.threshold - lin.constant
            if 0.0 <= threshold < 1.0:
                return AccuracyBoundMatch(
                    clause=clause, threshold=threshold, tolerance=clause.tolerance
                )
    return None


@dataclass(frozen=True)
class Pattern1Match:
    """Pattern 1 (§4.1): a difference clause plus a gain clause."""

    difference: DifferenceClauseMatch
    gain: GainClauseMatch


def match_pattern1(formula: Formula) -> Pattern1Match | None:
    """Match ``d < A +/- B /\\ n - o > C +/- D`` (in any clause order,
    possibly with extra clauses alongside)."""
    difference = find_difference_clause(formula)
    gain = find_gain_clause(formula)
    if difference is None or gain is None:
        return None
    return Pattern1Match(difference=difference, gain=gain)


def match_pattern2(formula: Formula) -> GainClauseMatch | None:
    """Match a gain clause *without* an accompanying difference clause.

    Pattern 2 (§4.2) fires when the user asks for ``n - o > C +/- D`` but
    supplied no explicit disagreement constraint — the system then
    estimates the disagreement itself on unlabeled data.
    """
    if find_difference_clause(formula) is not None:
        return None
    return find_gain_clause(formula)
