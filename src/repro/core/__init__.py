"""The paper's primary contribution: the ease.ml/ci condition DSL, the
sample-size estimators, the pattern optimizations, and the CI engine.

Import the convenience surface from :mod:`repro` directly; this package
exists to organize the implementation by subsystem (see DESIGN.md §4).
"""

from repro.core.dsl import parse_condition, parse_expression
from repro.core.intervals import Interval
from repro.core.logic import TernaryResult, resolve_ternary
from repro.core.estimators import SampleSizeEstimator, SampleSizePlan
from repro.core.evaluation import ConditionEvaluator, EvaluationResult
from repro.core.testset import Testset, TestsetManager
from repro.core.alarm import NewTestsetAlarm, AlarmEvent
from repro.core.engine import CIEngine, CommitResult

__all__ = [
    "parse_condition",
    "parse_expression",
    "Interval",
    "TernaryResult",
    "resolve_ternary",
    "SampleSizeEstimator",
    "SampleSizePlan",
    "ConditionEvaluator",
    "EvaluationResult",
    "Testset",
    "TestsetManager",
    "NewTestsetAlarm",
    "AlarmEvent",
    "CIEngine",
    "CommitResult",
]
