"""Abstract syntax tree for the condition DSL.

The node classes are frozen dataclasses: hashable, comparable by value, and
printable back to DSL source via :meth:`Expression.to_source` (a round-trip
property tested with hypothesis).  Expressions evaluate against exact
variable assignments via :meth:`Expression.evaluate`, which the Monte-Carlo
validation uses to compute ground-truth clause outcomes.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Iterator, Mapping

from repro.exceptions import SemanticError

__all__ = [
    "VARIABLES",
    "Expression",
    "Variable",
    "Constant",
    "BinaryOp",
    "Negation",
    "Clause",
    "Formula",
]

#: The logical data model of Section 2.2: new accuracy, old accuracy,
#: prediction difference.  All range over ``[0, 1]``.
VARIABLES: tuple[str, ...] = ("n", "o", "d")


class Expression(ABC):
    """Base class for arithmetic expressions over ``{n, o, d}``."""

    @abstractmethod
    def evaluate(self, assignment: Mapping[str, float]) -> float:
        """Evaluate with exact variable values (no uncertainty)."""

    @abstractmethod
    def to_source(self) -> str:
        """Render back to DSL-parseable source text."""

    @abstractmethod
    def variables(self) -> frozenset[str]:
        """The set of variable names appearing in this expression."""

    def __str__(self) -> str:
        return self.to_source()


@dataclass(frozen=True)
class Variable(Expression):
    """A reference to one of the three model-quality variables."""

    name: str

    def __post_init__(self) -> None:
        if self.name not in VARIABLES:
            raise SemanticError(
                f"unknown variable {self.name!r}; expected one of {VARIABLES}"
            )

    def evaluate(self, assignment: Mapping[str, float]) -> float:
        try:
            return float(assignment[self.name])
        except KeyError:
            raise SemanticError(f"no value provided for variable {self.name!r}") from None

    def to_source(self) -> str:
        return self.name

    def variables(self) -> frozenset[str]:
        return frozenset({self.name})


@dataclass(frozen=True)
class Constant(Expression):
    """A floating-point literal."""

    value: float

    def evaluate(self, assignment: Mapping[str, float]) -> float:
        return self.value

    def to_source(self) -> str:
        return _format_number(self.value)

    def variables(self) -> frozenset[str]:
        return frozenset()


@dataclass(frozen=True)
class Negation(Expression):
    """Unary minus (an extension beyond the literal grammar)."""

    operand: Expression

    def evaluate(self, assignment: Mapping[str, float]) -> float:
        return -self.operand.evaluate(assignment)

    def to_source(self) -> str:
        inner = self.operand.to_source()
        if isinstance(self.operand, BinaryOp):
            inner = f"({inner})"
        return f"-{inner}"

    def variables(self) -> frozenset[str]:
        return self.operand.variables()


@dataclass(frozen=True)
class BinaryOp(Expression):
    """A binary arithmetic node; ``op`` is one of ``+``, ``-``, ``*``.

    Division is deliberately absent (Section 2.2 leaves ratio statistics
    to future work); the lexer already rejects ``/``.
    """

    op: str
    left: Expression
    right: Expression

    _VALID_OPS = ("+", "-", "*")

    def __post_init__(self) -> None:
        if self.op not in self._VALID_OPS:
            raise SemanticError(f"unsupported operator {self.op!r}")

    def evaluate(self, assignment: Mapping[str, float]) -> float:
        lhs = self.left.evaluate(assignment)
        rhs = self.right.evaluate(assignment)
        if self.op == "+":
            return lhs + rhs
        if self.op == "-":
            return lhs - rhs
        return lhs * rhs

    def to_source(self) -> str:
        left = self.left.to_source()
        right = self.right.to_source()
        if self.op == "*":
            if isinstance(self.left, BinaryOp) and self.left.op in "+-":
                left = f"({left})"
            if isinstance(self.right, BinaryOp) and self.right.op in "+-":
                right = f"({right})"
        elif self.op == "-" and isinstance(self.right, BinaryOp) and self.right.op in "+-":
            right = f"({right})"
        return f"{left} {self.op} {right}"

    def variables(self) -> frozenset[str]:
        return self.left.variables() | self.right.variables()


@dataclass(frozen=True)
class Clause:
    """One comparison ``EXP cmp c +/- c``.

    Attributes
    ----------
    expression:
        The left-hand-side arithmetic expression.
    comparator:
        ``">"`` or ``"<"``.
    threshold:
        The right-hand-side constant the expression is compared against.
    tolerance:
        The ``+/-`` error tolerance ``epsilon`` for estimating the
        expression.  Must be strictly positive: a zero tolerance would
        demand an exact estimate, which no finite testset provides.
    """

    expression: Expression
    comparator: str
    threshold: float
    tolerance: float

    def __post_init__(self) -> None:
        if self.comparator not in (">", "<"):
            raise SemanticError(f"comparator must be '>' or '<', got {self.comparator!r}")
        if not self.tolerance > 0.0:
            raise SemanticError(
                f"tolerance must be strictly positive, got {self.tolerance}"
            )
        if not self.expression.variables():
            raise SemanticError(
                "clause expression references no variable; testing a constant "
                f"is vacuous: {self.expression.to_source()!r}"
            )

    def evaluate_exact(self, assignment: Mapping[str, float]) -> bool:
        """Ground-truth outcome under exact variable values."""
        value = self.expression.evaluate(assignment)
        return value > self.threshold if self.comparator == ">" else value < self.threshold

    def to_source(self) -> str:
        """Render back to DSL source."""
        return (
            f"{self.expression.to_source()} {self.comparator} "
            f"{_format_number(self.threshold)} +/- {_format_number(self.tolerance)}"
        )

    def variables(self) -> frozenset[str]:
        """Variables referenced by the clause expression."""
        return self.expression.variables()

    def __str__(self) -> str:
        return self.to_source()


@dataclass(frozen=True)
class Formula:
    """A conjunction of clauses — the full test condition ``F``."""

    clauses: tuple[Clause, ...]

    def __post_init__(self) -> None:
        if not self.clauses:
            raise SemanticError("a formula must contain at least one clause")
        object.__setattr__(self, "clauses", tuple(self.clauses))

    def __len__(self) -> int:
        return len(self.clauses)

    def __iter__(self) -> Iterator[Clause]:
        return iter(self.clauses)

    def evaluate_exact(self, assignment: Mapping[str, float]) -> bool:
        """Ground-truth conjunction outcome under exact values."""
        return all(c.evaluate_exact(assignment) for c in self.clauses)

    def variables(self) -> frozenset[str]:
        """Union of variables over all clauses."""
        out: frozenset[str] = frozenset()
        for clause in self.clauses:
            out |= clause.variables()
        return out

    def to_source(self) -> str:
        """Render back to DSL source."""
        return " /\\ ".join(c.to_source() for c in self.clauses)

    def __str__(self) -> str:
        return self.to_source()


def _format_number(value: float) -> str:
    """Format a float for source round-tripping (no trailing zeros)."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)
