"""The ease.ml/ci condition DSL (Appendix A.1 of the paper).

Grammar::

    c    :-  floating point constant
    v    :-  n | o | d
    op1  :-  + | -
    op2  :-  *
    EXP  :-  v | v op1 EXP | EXP op2 c
    cmp  :-  > | <
    C    :-  EXP cmp c +/- c
    F    :-  C | C /\\ F

The implementation is a classical pipeline: :mod:`lexer` tokenizes,
:mod:`parser` builds the AST of :mod:`nodes`, and :mod:`linear`
canonicalizes expressions into the linear form
``sum_v coeff_v * v + constant`` that the estimator layer consumes.

The parser accepts a slight superset of the paper's grammar (parentheses,
constants on either side of ``*``, unary minus, standard precedence) and a
``strict=True`` mode that rejects anything outside the literal Appendix A.1
productions.
"""

from repro.core.dsl.tokens import Token, TokenType
from repro.core.dsl.lexer import tokenize
from repro.core.dsl.nodes import (
    BinaryOp,
    Clause,
    Constant,
    Expression,
    Formula,
    Negation,
    Variable,
    VARIABLES,
)
from repro.core.dsl.parser import parse_condition, parse_clause, parse_expression
from repro.core.dsl.linear import LinearExpression, linearize

__all__ = [
    "Token",
    "TokenType",
    "tokenize",
    "Expression",
    "Variable",
    "Constant",
    "BinaryOp",
    "Negation",
    "Clause",
    "Formula",
    "VARIABLES",
    "parse_condition",
    "parse_clause",
    "parse_expression",
    "LinearExpression",
    "linearize",
]
