"""Token definitions for the condition DSL lexer."""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["TokenType", "Token"]


class TokenType(enum.Enum):
    """Terminal symbols of the Appendix A.1 grammar (plus parentheses)."""

    NUMBER = "NUMBER"  #: floating point constant, e.g. ``0.02``
    VARIABLE = "VARIABLE"  #: one of ``n``, ``o``, ``d``
    PLUS = "PLUS"  #: ``+``
    MINUS = "MINUS"  #: ``-``
    STAR = "STAR"  #: ``*``
    GREATER = "GREATER"  #: ``>``
    LESS = "LESS"  #: ``<``
    PLUS_MINUS = "PLUS_MINUS"  #: ``+/-`` — the error-tolerance marker
    AND = "AND"  #: ``/\`` — clause conjunction
    LPAREN = "LPAREN"  #: ``(``
    RPAREN = "RPAREN"  #: ``)``
    EOF = "EOF"  #: end of input sentinel


@dataclass(frozen=True)
class Token:
    """A lexed token.

    Attributes
    ----------
    type:
        The terminal category.
    text:
        The exact source substring.
    position:
        Zero-based character offset of the first character in the source,
        used for caret diagnostics in parse errors.
    value:
        The parsed float for ``NUMBER`` tokens, ``None`` otherwise.
    """

    type: TokenType
    text: str
    position: int
    value: float | None = None

    def __repr__(self) -> str:
        if self.type is TokenType.NUMBER:
            return f"Token({self.type.name}, {self.value})"
        return f"Token({self.type.name}, {self.text!r})"
