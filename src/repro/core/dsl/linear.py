"""Canonicalization of DSL expressions into linear form.

Every expression the grammar can produce is linear in the variables
``{n, o, d}`` (multiplication only pairs an expression with a constant).
:func:`linearize` folds an AST into a :class:`LinearExpression` —
``sum_v coeff_v * v + constant`` — which is the representation the
sample-size estimator operates on: each variable term contributes a
Hoeffding budget scaled by ``|coeff| * range`` (rule 1 of Section 3.1), and
the per-term tolerances are allocated across terms (rule 2).

Products of two variable-bearing subexpressions (expressible only through
the permissive parser with parentheses, e.g. ``(n - o) * (n + o)``) are
rejected with :class:`~repro.exceptions.SemanticError`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.core.dsl.nodes import (
    BinaryOp,
    Clause,
    Constant,
    Expression,
    Negation,
    Variable,
    VARIABLES,
)
from repro.exceptions import SemanticError

__all__ = ["LinearExpression", "linearize"]


@dataclass(frozen=True)
class LinearExpression:
    """An expression in canonical linear form.

    Attributes
    ----------
    coefficients:
        Mapping from variable name to its (possibly zero) coefficient.
        Only nonzero coefficients are stored.
    constant:
        The additive constant term.
    """

    coefficients: Mapping[str, float] = field(default_factory=dict)
    constant: float = 0.0

    def __post_init__(self) -> None:
        cleaned = {
            name: float(coef)
            for name, coef in self.coefficients.items()
            if coef != 0.0
        }
        for name in cleaned:
            if name not in VARIABLES:
                raise SemanticError(f"unknown variable {name!r} in linear form")
        object.__setattr__(self, "coefficients", cleaned)

    def coefficient(self, name: str) -> float:
        """The coefficient of ``name`` (zero when absent)."""
        return self.coefficients.get(name, 0.0)

    def variables(self) -> frozenset[str]:
        """Variables with nonzero coefficients."""
        return frozenset(self.coefficients)

    @property
    def is_constant(self) -> bool:
        """Whether no variable appears (the expression is degenerate)."""
        return not self.coefficients

    def evaluate(self, assignment: Mapping[str, float]) -> float:
        """Evaluate with exact variable values."""
        total = self.constant
        for name, coef in self.coefficients.items():
            total += coef * float(assignment[name])
        return total

    def value_range(self, variable_ranges: Mapping[str, float] | None = None) -> float:
        """Length of the interval the expression can span.

        With each variable ``v`` ranging over an interval of length
        ``r_v`` (default 1 for all three variables), a linear combination
        spans an interval of length ``sum_v |coeff_v| * r_v``.
        """
        total = 0.0
        for name, coef in self.coefficients.items():
            r = 1.0 if variable_ranges is None else float(variable_ranges[name])
            total += abs(coef) * r
        return total

    # -- algebra -------------------------------------------------------------
    def __add__(self, other: "LinearExpression") -> "LinearExpression":
        coeffs = dict(self.coefficients)
        for name, coef in other.coefficients.items():
            coeffs[name] = coeffs.get(name, 0.0) + coef
        return LinearExpression(coeffs, self.constant + other.constant)

    def __sub__(self, other: "LinearExpression") -> "LinearExpression":
        return self + other.scale(-1.0)

    def scale(self, factor: float) -> "LinearExpression":
        """Multiply every coefficient and the constant by ``factor``."""
        return LinearExpression(
            {name: coef * factor for name, coef in self.coefficients.items()},
            self.constant * factor,
        )

    def to_source(self) -> str:
        """Render as DSL-compatible source (canonical variable order)."""
        parts: list[str] = []
        for name in VARIABLES:
            coef = self.coefficient(name)
            if coef == 0.0:
                continue
            if not parts:
                prefix = "" if coef > 0 else "-"
            else:
                prefix = " + " if coef > 0 else " - "
            mag = abs(coef)
            term = name if mag == 1.0 else f"{mag:g} * {name}"
            parts.append(f"{prefix}{term}")
        if self.constant != 0.0 or not parts:
            sign = " + " if self.constant >= 0 else " - "
            if not parts:
                sign = "" if self.constant >= 0 else "-"
            parts.append(f"{sign}{abs(self.constant):g}")
        return "".join(parts)

    def __str__(self) -> str:
        return self.to_source()


def linearize(expression: Expression | Clause) -> LinearExpression:
    """Fold an AST expression (or a clause's LHS) into linear form.

    Raises
    ------
    SemanticError
        If the expression multiplies two variable-bearing subexpressions
        (nonlinear, outside the DSL's semantics).
    """
    if isinstance(expression, Clause):
        expression = expression.expression
    return _linearize(expression)


def _linearize(node: Expression) -> LinearExpression:
    if isinstance(node, Variable):
        return LinearExpression({node.name: 1.0})
    if isinstance(node, Constant):
        return LinearExpression({}, node.value)
    if isinstance(node, Negation):
        return _linearize(node.operand).scale(-1.0)
    if isinstance(node, BinaryOp):
        left = _linearize(node.left)
        right = _linearize(node.right)
        if node.op == "+":
            return left + right
        if node.op == "-":
            return left - right
        # Multiplication: at least one side must be constant.
        if left.is_constant:
            return right.scale(left.constant)
        if right.is_constant:
            return left.scale(right.constant)
        raise SemanticError(
            "nonlinear expression: cannot multiply two variable-bearing "
            f"subexpressions ({node.left.to_source()!r} * {node.right.to_source()!r})"
        )
    raise SemanticError(f"unknown expression node {type(node).__name__}")
