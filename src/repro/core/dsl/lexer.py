"""Tokenizer for the condition DSL.

Hand-rolled scanner (no regex dispatch) so that the two multi-character
operators ``+/-`` and ``/\\`` are matched greedily and error positions are
exact.  The full token vocabulary is defined in
:mod:`repro.core.dsl.tokens`.
"""

from __future__ import annotations

from repro.core.dsl.tokens import Token, TokenType
from repro.exceptions import LexerError

__all__ = ["tokenize"]

#: The three random variables of the logical data model (Section 2.2).
_VARIABLE_NAMES = frozenset({"n", "o", "d"})


def tokenize(source: str) -> list[Token]:
    """Convert ``source`` into a token list ending with an ``EOF`` token.

    Raises
    ------
    LexerError
        On any character outside the DSL alphabet, a malformed number, or
        a ``/`` not followed by ``\\`` (division is intentionally excluded
        from the grammar — see Section 2.2 "Ratio statistics").
    """
    tokens: list[Token] = []
    i = 0
    length = len(source)
    while i < length:
        ch = source[i]
        if ch in " \t\r\n":
            i += 1
            continue
        if ch == "+":
            # Greedy: "+/-" is a single token.
            if source.startswith("+/-", i):
                tokens.append(Token(TokenType.PLUS_MINUS, "+/-", i))
                i += 3
            else:
                tokens.append(Token(TokenType.PLUS, "+", i))
                i += 1
            continue
        if ch == "-":
            tokens.append(Token(TokenType.MINUS, "-", i))
            i += 1
            continue
        if ch == "*":
            tokens.append(Token(TokenType.STAR, "*", i))
            i += 1
            continue
        if ch == ">":
            tokens.append(Token(TokenType.GREATER, ">", i))
            i += 1
            continue
        if ch == "<":
            tokens.append(Token(TokenType.LESS, "<", i))
            i += 1
            continue
        if ch == "(":
            tokens.append(Token(TokenType.LPAREN, "(", i))
            i += 1
            continue
        if ch == ")":
            tokens.append(Token(TokenType.RPAREN, ")", i))
            i += 1
            continue
        if ch == "/":
            if source.startswith("/\\", i):
                tokens.append(Token(TokenType.AND, "/\\", i))
                i += 2
                continue
            raise LexerError(
                "'/' is not an operator in the DSL (division is unsupported; "
                "did you mean the conjunction '/\\'?)",
                position=i,
                source=source,
            )
        if ch.isdigit() or ch == ".":
            text, value, consumed = _scan_number(source, i)
            tokens.append(Token(TokenType.NUMBER, text, i, value=value))
            i += consumed
            continue
        if ch.isalpha():
            text, consumed = _scan_word(source, i)
            if text in _VARIABLE_NAMES:
                tokens.append(Token(TokenType.VARIABLE, text, i))
                i += consumed
                continue
            raise LexerError(
                f"unknown identifier {text!r}; the only variables are "
                "'n' (new accuracy), 'o' (old accuracy) and 'd' (difference)",
                position=i,
                source=source,
            )
        raise LexerError(f"unexpected character {ch!r}", position=i, source=source)
    tokens.append(Token(TokenType.EOF, "", length))
    return tokens


def _scan_number(source: str, start: int) -> tuple[str, float, int]:
    """Scan a float literal (``12``, ``0.5``, ``.5``, ``1e-3``)."""
    i = start
    length = len(source)
    seen_dot = False
    while i < length and (source[i].isdigit() or (source[i] == "." and not seen_dot)):
        if source[i] == ".":
            seen_dot = True
        i += 1
    # Optional exponent part.
    if i < length and source[i] in "eE":
        j = i + 1
        if j < length and source[j] in "+-":
            j += 1
        if j < length and source[j].isdigit():
            while j < length and source[j].isdigit():
                j += 1
            i = j
    text = source[start:i]
    try:
        value = float(text)
    except ValueError:
        raise LexerError(
            f"malformed number literal {text!r}", position=start, source=source
        ) from None
    return text, value, i - start


def _scan_word(source: str, start: int) -> tuple[str, int]:
    """Scan a maximal alphabetic identifier."""
    i = start
    while i < len(source) and source[i].isalpha():
        i += 1
    return source[start:i], i - start
