"""Recursive-descent parser for the condition DSL.

Produces the AST of :mod:`repro.core.dsl.nodes` from source text such as::

    n - o > 0.02 +/- 0.01 /\\ d < 0.1 +/- 0.01

The default mode accepts a pragmatic superset of the Appendix A.1 grammar
(parentheses, standard ``*`` precedence, constants on either side of ``*``,
unary minus).  ``strict=True`` enforces the literal paper grammar:

* ``EXP :- v | v op1 EXP | EXP op2 c`` — additive chains must start with a
  variable, and ``*`` must have the constant on the right;
* no parentheses, no unary minus.
"""

from __future__ import annotations

from repro.core.dsl.lexer import tokenize
from repro.core.dsl.nodes import (
    BinaryOp,
    Clause,
    Constant,
    Expression,
    Formula,
    Negation,
    Variable,
)
from repro.core.dsl.tokens import Token, TokenType
from repro.exceptions import SyntaxParseError

__all__ = ["parse_condition", "parse_clause", "parse_expression"]


def parse_condition(source: str, *, strict: bool = False) -> Formula:
    """Parse a full test condition (one or more ``/\\``-joined clauses).

    Parameters
    ----------
    source:
        DSL text, e.g. ``"n - o > 0.02 +/- 0.01"``.
    strict:
        Enforce the literal Appendix A.1 grammar (see module docstring).

    Returns
    -------
    Formula
        The parsed conjunction.

    Raises
    ------
    LexerError, SyntaxParseError, SemanticError
        On malformed input.
    """
    parser = _Parser(source, strict=strict)
    formula = parser.parse_formula()
    parser.expect(TokenType.EOF)
    return formula


def parse_clause(source: str, *, strict: bool = False) -> Clause:
    """Parse a single clause ``EXP cmp c +/- c``."""
    parser = _Parser(source, strict=strict)
    clause = parser.parse_clause()
    parser.expect(TokenType.EOF)
    return clause


def parse_expression(source: str, *, strict: bool = False) -> Expression:
    """Parse a bare arithmetic expression over ``{n, o, d}``."""
    parser = _Parser(source, strict=strict)
    expr = parser.parse_expression()
    parser.expect(TokenType.EOF)
    return expr


class _Parser:
    """Token-stream cursor with one production method per nonterminal."""

    def __init__(self, source: str, *, strict: bool):
        self.source = source
        self.strict = strict
        self.tokens = tokenize(source)
        self.index = 0

    # -- cursor helpers ----------------------------------------------------
    @property
    def current(self) -> Token:
        return self.tokens[self.index]

    def advance(self) -> Token:
        token = self.current
        if token.type is not TokenType.EOF:
            self.index += 1
        return token

    def match(self, *types: TokenType) -> bool:
        return self.current.type in types

    def expect(self, token_type: TokenType) -> Token:
        if not self.match(token_type):
            raise SyntaxParseError(
                f"expected {token_type.value}, found "
                f"{self.current.text or 'end of input'!r}",
                position=self.current.position,
                source=self.source,
            )
        return self.advance()

    def _error(self, message: str) -> SyntaxParseError:
        return SyntaxParseError(
            message, position=self.current.position, source=self.source
        )

    # -- productions ---------------------------------------------------------
    def parse_formula(self) -> Formula:
        clauses = [self.parse_clause()]
        while self.match(TokenType.AND):
            self.advance()
            clauses.append(self.parse_clause())
        return Formula(tuple(clauses))

    def parse_clause(self) -> Clause:
        expression = self.parse_expression()
        if not self.match(TokenType.GREATER, TokenType.LESS):
            raise self._error(
                f"expected a comparison ('>' or '<'), found "
                f"{self.current.text or 'end of input'!r}"
            )
        comparator = self.advance().text
        threshold = self._parse_signed_constant("threshold")
        self._expect_plus_minus()
        tolerance = self._parse_signed_constant("tolerance")
        return Clause(
            expression=expression,
            comparator=comparator,
            threshold=threshold,
            tolerance=tolerance,
        )

    def _expect_plus_minus(self) -> None:
        if not self.match(TokenType.PLUS_MINUS):
            raise self._error(
                "every clause needs an explicit error tolerance: expected "
                f"'+/-', found {self.current.text or 'end of input'!r}"
            )
        self.advance()

    def _parse_signed_constant(self, what: str) -> float:
        sign = 1.0
        if self.match(TokenType.MINUS):
            if self.strict:
                raise self._error(f"negative {what} is not allowed in strict mode")
            self.advance()
            sign = -1.0
        if not self.match(TokenType.NUMBER):
            raise self._error(
                f"expected a numeric {what}, found "
                f"{self.current.text or 'end of input'!r}"
            )
        token = self.advance()
        assert token.value is not None
        return sign * token.value

    def parse_expression(self) -> Expression:
        if self.strict:
            return self._parse_strict_expression()
        return self._parse_additive()

    # Permissive grammar: standard precedence with * above +/-.
    def _parse_additive(self) -> Expression:
        expr = self._parse_multiplicative()
        while self.match(TokenType.PLUS, TokenType.MINUS):
            op = self.advance().text
            right = self._parse_multiplicative()
            expr = BinaryOp(op, expr, right)
        return expr

    def _parse_multiplicative(self) -> Expression:
        expr = self._parse_unary()
        while self.match(TokenType.STAR):
            self.advance()
            right = self._parse_unary()
            expr = BinaryOp("*", expr, right)
        return expr

    def _parse_unary(self) -> Expression:
        if self.match(TokenType.MINUS):
            self.advance()
            return Negation(self._parse_unary())
        return self._parse_atom()

    def _parse_atom(self) -> Expression:
        if self.match(TokenType.VARIABLE):
            return Variable(self.advance().text)
        if self.match(TokenType.NUMBER):
            token = self.advance()
            assert token.value is not None
            return Constant(token.value)
        if self.match(TokenType.LPAREN):
            self.advance()
            expr = self._parse_additive()
            self.expect(TokenType.RPAREN)
            return expr
        raise self._error(
            f"expected a variable, number or '(', found "
            f"{self.current.text or 'end of input'!r}"
        )

    # Strict grammar: EXP :- v | v op1 EXP | EXP op2 c.
    # The productions are right-recursive for op1 and left-recursive for
    # op2; we parse "TERM (op1 TERM)*" where TERM is "v ('*' c)*" or
    # "c '*' v"-free (strict mode requires the constant on the right), and
    # verify the head of each additive chain is a variable term.
    def _parse_strict_expression(self) -> Expression:
        expr = self._parse_strict_term(head=True)
        while self.match(TokenType.PLUS, TokenType.MINUS):
            op = self.advance().text
            right = self._parse_strict_term(head=False)
            expr = BinaryOp(op, expr, right)
        return expr

    def _parse_strict_term(self, *, head: bool) -> Expression:
        # The paper's own Section 3.1 example ("n - 1.1 * o") puts the
        # constant on the left of '*' even though the grammar production is
        # "EXP op2 c"; strict mode therefore accepts both "v * c" and
        # "c * v" scalings, but nothing else.
        if self.match(TokenType.NUMBER):
            token = self.advance()
            assert token.value is not None
            coefficient = Constant(token.value)
            self.expect(TokenType.STAR)
            if not self.match(TokenType.VARIABLE):
                raise self._error(
                    "strict grammar requires a variable after 'c *'"
                )
            expr: Expression = BinaryOp(
                "*", coefficient, Variable(self.advance().text)
            )
        elif self.match(TokenType.VARIABLE):
            expr = Variable(self.advance().text)
        else:
            raise self._error(
                "strict grammar requires each additive term to be a variable "
                "optionally scaled by a constant, found "
                f"{self.current.text or 'end of input'!r}"
            )
        while self.match(TokenType.STAR):
            self.advance()
            if not self.match(TokenType.NUMBER):
                raise self._error(
                    "strict grammar only allows multiplication by a constant "
                    "on the right (EXP * c)"
                )
            token = self.advance()
            assert token.value is not None
            expr = BinaryOp("*", expr, Constant(token.value))
        return expr
