"""Extensions beyond the paper's shipped feature set.

Section 2.2's "Discussion and Future Extensions" names three directions
the released system does not cover; this package implements them with the
same estimator machinery (and the same (epsilon, delta) discipline):

* **Beyond accuracy** (:mod:`metrics`) — quality metrics with bounded
  per-example sensitivity (F1, macro-F1) tested via McDiarmid's
  inequality, exactly the replacement the paper sketches;
* **Order statistics** (:mod:`order_stats`) — "the new model is among the
  top-k models in the development history";
* **Concept drift** (:mod:`drift`) — the paper's dual problem: fix one
  model, monitor its quality over a stream of fresh testsets.

:mod:`repro.stats.stratified` (the "stratified samples for skewed cases"
remark) lives in the stats layer since it is a pure estimator.
"""

from repro.core.extensions.metrics import (
    AccuracyMetric,
    MacroF1Metric,
    MetricCondition,
    MetricTester,
)
from repro.core.extensions.order_stats import TopKCondition, TopKOutcome
from repro.core.extensions.drift import DriftMonitor, DriftObservation

__all__ = [
    "AccuracyMetric",
    "MacroF1Metric",
    "MetricCondition",
    "MetricTester",
    "TopKCondition",
    "TopKOutcome",
    "DriftMonitor",
    "DriftObservation",
]
