"""Order-statistic conditions: "new model among the top-k in history".

§2.2: *"Some users think that order statistics are also useful, e.g., to
make sure the new model is among top-5 models in the development
history."*

Implementation: every historical model's accuracy and the candidate's
accuracy are estimated on the shared testset to ``(epsilon, delta')``
with ``delta' = delta_eff / (H_hist + 1)`` (union bound over all
estimates).  The k-th best historical accuracy then has a confidence
interval given by the k-th order statistic of the per-model intervals —
the k-th largest lower bound and the k-th largest upper bound — and the
candidate "is top-k" when its interval clears the k-th best's interval
under the usual three-valued comparison:

* candidate_low  > kth_high        -> True  (strictly beats the k-th best)
* candidate_high < kth_low         -> False (cannot reach the top k)
* otherwise                        -> Unknown (resolved by the mode)

This is conservative (True means "certainly among the top k", counting
ties against the candidate), matching the fp-free reading.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.intervals import Interval
from repro.core.logic import Mode, TernaryResult, resolve_ternary
from repro.exceptions import InvalidParameterError, TestsetSizeError
from repro.stats.estimation import estimate_accuracy
from repro.stats.inequalities import HoeffdingInequality
from repro.utils.validation import check_positive, check_positive_int, check_probability

__all__ = ["TopKCondition", "TopKOutcome"]


@dataclass(frozen=True)
class TopKOutcome:
    """Result of a top-k evaluation.

    Attributes
    ----------
    candidate_interval:
        Confidence interval of the candidate's accuracy.
    kth_best_interval:
        Interval of the k-th best historical accuracy.
    outcome, passed:
        Three-valued result and its mode resolution.
    ranked_estimates:
        Historical point estimates, descending (diagnostics).
    """

    candidate_interval: Interval
    kth_best_interval: Interval
    outcome: TernaryResult
    passed: bool
    ranked_estimates: tuple[float, ...]


class TopKCondition:
    """"The candidate is among the top-``k`` models" tester.

    Parameters
    ----------
    k:
        Rank threshold (1 = must beat every historical model).
    tolerance:
        Per-accuracy estimation tolerance ``epsilon``.
    delta:
        Total failure budget for one evaluation (split over all models).
    mode:
        Unknown-resolution mode.
    """

    def __init__(
        self,
        k: int,
        tolerance: float,
        delta: float,
        mode: Mode | str = Mode.FP_FREE,
    ):
        self.k = check_positive_int(k, "k")
        self.tolerance = check_positive(tolerance, "tolerance")
        self.delta = check_probability(delta, "delta")
        self.mode = Mode.parse(mode) if isinstance(mode, str) else mode

    def sample_size(self, history_size: int) -> int:
        """Labels needed so all ``history_size + 1`` estimates hold jointly."""
        history_size = check_positive_int(history_size, "history_size")
        per_model_delta = self.delta / (history_size + 1)
        hoeffding = HoeffdingInequality(two_sided=True)
        return int(math.ceil(hoeffding.sample_size(self.tolerance, per_model_delta)))

    def evaluate(
        self,
        candidate_predictions: np.ndarray,
        history_predictions: list[np.ndarray],
        labels: np.ndarray,
    ) -> TopKOutcome:
        """Evaluate the candidate against the development history."""
        if not history_predictions:
            raise InvalidParameterError("history must contain at least one model")
        if self.k > len(history_predictions):
            # Fewer historical models than k: trivially top-k.
            interval = Interval.from_estimate(
                estimate_accuracy(candidate_predictions, labels), self.tolerance
            )
            return TopKOutcome(
                candidate_interval=interval,
                kth_best_interval=Interval(0.0, 0.0),
                outcome=TernaryResult.TRUE,
                passed=True,
                ranked_estimates=tuple(
                    sorted(
                        (estimate_accuracy(h, labels) for h in history_predictions),
                        reverse=True,
                    )
                ),
            )
        needed = self.sample_size(len(history_predictions))
        if len(labels) < needed:
            raise TestsetSizeError(
                f"top-{self.k} test over {len(history_predictions)} historical "
                f"models needs {needed} labels, got {len(labels)}"
            )
        estimates = [estimate_accuracy(h, labels) for h in history_predictions]
        lows = sorted((e - self.tolerance for e in estimates), reverse=True)
        highs = sorted((e + self.tolerance for e in estimates), reverse=True)
        kth_best = Interval(lows[self.k - 1], highs[self.k - 1])
        candidate = Interval.from_estimate(
            estimate_accuracy(candidate_predictions, labels), self.tolerance
        )
        if candidate.low > kth_best.high:
            outcome = TernaryResult.TRUE
        elif candidate.high < kth_best.low:
            outcome = TernaryResult.FALSE
        else:
            outcome = TernaryResult.UNKNOWN
        return TopKOutcome(
            candidate_interval=candidate,
            kth_best_interval=kth_best,
            outcome=outcome,
            passed=resolve_ternary(outcome, self.mode),
            ranked_estimates=tuple(sorted(estimates, reverse=True)),
        )
