"""Concept-drift monitoring: the dual of continuous integration.

§2.2: *"instead of fixing the test set and testing multiple models,
monitoring concept shift is to fix a single model and test its
generalization over multiple test sets over time."*

:class:`DriftMonitor` enforces an accuracy floor ``n > threshold +/- eps``
for one deployed model over a stream of periodic testsets drawn from the
then-current distribution.  The statistical structure mirrors the
non-adaptive CI case with the roles swapped: the model is fixed, the
``T`` periods play the role of ``H`` commits, and a union bound gives each
period a ``delta / T`` budget — so every period's verdict holds jointly
with probability ``1 - delta``.

A period whose verdict is False (or Unknown under fp-free) raises a drift
alarm carrying the observed accuracy trajectory.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.intervals import Interval
from repro.core.logic import Mode, TernaryResult, resolve_ternary
from repro.exceptions import EngineStateError, TestsetSizeError
from repro.stats.estimation import estimate_accuracy
from repro.stats.inequalities import HoeffdingInequality
from repro.utils.validation import check_positive, check_positive_int, check_probability

__all__ = ["DriftObservation", "DriftMonitor"]


@dataclass(frozen=True)
class DriftObservation:
    """One monitoring period's verdict.

    Attributes
    ----------
    period:
        0-based period index.
    accuracy_estimate:
        Measured accuracy on the period's fresh testset.
    interval:
        Its confidence interval at the period budget.
    outcome:
        Three-valued comparison against the floor.
    healthy:
        The resolved verdict (False = drift alarm).
    """

    period: int
    accuracy_estimate: float
    interval: Interval
    outcome: TernaryResult
    healthy: bool


class DriftMonitor:
    """Monitors one model's accuracy floor across ``T`` periods.

    Parameters
    ----------
    model:
        The deployed model (anything with ``predict``).
    threshold:
        The accuracy floor being enforced.
    tolerance:
        Estimation tolerance ``epsilon`` per period.
    delta:
        Total failure budget across all ``periods``.
    periods:
        Number of monitoring periods the budget must cover.
    mode:
        Unknown resolution; ``fn-free`` (the default) only alarms when the
        floor is *certainly* violated — the sensible default for paging a
        team — while ``fp-free`` alarms on any uncertainty.
    """

    def __init__(
        self,
        model,
        threshold: float,
        tolerance: float,
        delta: float,
        periods: int,
        mode: Mode | str = Mode.FN_FREE,
    ):
        self.model = model
        self.threshold = check_positive(threshold, "threshold")
        self.tolerance = check_positive(tolerance, "tolerance")
        self.delta = check_probability(delta, "delta")
        self.periods = check_positive_int(periods, "periods")
        self.mode = Mode.parse(mode) if isinstance(mode, str) else mode
        self._observations: list[DriftObservation] = []

    @property
    def period_delta(self) -> float:
        """The per-period budget ``delta / T`` (union bound)."""
        return self.delta / self.periods

    @property
    def samples_per_period(self) -> int:
        """Fresh labels each period's testset needs."""
        hoeffding = HoeffdingInequality(two_sided=True)
        return int(
            math.ceil(hoeffding.sample_size(self.tolerance, self.period_delta))
        )

    @property
    def observations(self) -> list[DriftObservation]:
        """All period verdicts so far."""
        return list(self._observations)

    @property
    def drift_detected(self) -> bool:
        """Whether any period alarmed."""
        return any(not obs.healthy for obs in self._observations)

    def observe(self, features: np.ndarray, labels: np.ndarray) -> DriftObservation:
        """Score one period's fresh testset and record the verdict."""
        if len(self._observations) >= self.periods:
            raise EngineStateError(
                f"monitoring budget of {self.periods} periods is spent; "
                "re-plan with a fresh delta budget"
            )
        labels = np.asarray(labels)
        if len(labels) < self.samples_per_period:
            raise TestsetSizeError(
                f"period testset has {len(labels)} labels; "
                f"{self.samples_per_period} required"
            )
        predictions = np.asarray(self.model.predict(features))
        estimate = estimate_accuracy(predictions, labels)
        interval = Interval.from_estimate(estimate, self.tolerance)
        outcome = interval.compare_greater(self.threshold)
        observation = DriftObservation(
            period=len(self._observations),
            accuracy_estimate=estimate,
            interval=interval,
            outcome=outcome,
            healthy=resolve_ternary(outcome, self.mode),
        )
        self._observations.append(observation)
        return observation

    def trajectory(self) -> np.ndarray:
        """Accuracy estimates over periods (for plotting/reporting)."""
        return np.array([obs.accuracy_estimate for obs in self._observations])
