"""Beyond accuracy: CI conditions over bounded-sensitivity metrics.

The paper (§2.2): *"It is possible to extend the current system to
accommodate these scores by replacing the Bennett's inequality with the
McDiarmid's inequality, together with the sensitivity of F1-score and AUC
score."*  This module does exactly that:

* a :class:`QualityMetric` declares how to compute itself from
  ``(predictions, labels)`` and a **sensitivity constant** ``c`` such that
  changing any single test example changes the metric by at most ``c / m``
  on an ``m``-example testset (the bounded-differences condition);
* :class:`MetricTester` sizes testsets with McDiarmid's inequality
  (``m = c^2 ln(1/delta_eff) / (2 eps^2)``) under the same adaptivity
  budgets as the accuracy system, and evaluates
  :class:`MetricCondition` s with the same interval / three-valued-logic
  semantics.

Sensitivity notes
-----------------
* Accuracy: one example flips at most one indicator — ``c = 1``.
* Macro-F1 over ``K`` classes: one example affects the precision/recall of
  at most two classes; each affected class's F1 moves by at most
  ``2 / support``.  With a minimum class support of ``alpha * m`` the
  per-example effect is bounded by ``(2/K) * 2/(alpha m) * K = 4/(alpha m)``
  ... conservatively folded into ``c = 4 / (K * alpha)`` for the macro
  average.  Skewed testsets (small ``alpha``) therefore pay a large
  sensitivity — the regime where the paper suggests stratified sampling
  (see :mod:`repro.stats.stratified`).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.core.estimators.adaptivity import Adaptivity
from repro.core.intervals import Interval
from repro.core.logic import Mode, TernaryResult, resolve_ternary
from repro.exceptions import InvalidParameterError, TestsetSizeError
from repro.ml.metrics import accuracy, macro_f1
from repro.stats.inequalities import McDiarmidInequality
from repro.utils.validation import (
    check_in_range,
    check_positive,
    check_positive_int,
    check_probability,
)

__all__ = ["QualityMetric", "AccuracyMetric", "MacroF1Metric", "MetricCondition", "MetricTester"]


class QualityMetric(ABC):
    """A model-quality metric with a bounded-differences certificate."""

    #: Human-readable name used in conditions and reports.
    name: str = "metric"

    @abstractmethod
    def compute(self, predictions: np.ndarray, labels: np.ndarray) -> float:
        """Evaluate the metric on a labeled testset."""

    @abstractmethod
    def sensitivity(self) -> float:
        """The constant ``c``: one example changes the metric by <= c/m."""


class AccuracyMetric(QualityMetric):
    """Plain accuracy — sensitivity 1 (recovers the core system's sizing)."""

    name = "accuracy"

    def compute(self, predictions: np.ndarray, labels: np.ndarray) -> float:
        return accuracy(predictions, labels)

    def sensitivity(self) -> float:
        return 1.0


class MacroF1Metric(QualityMetric):
    """Macro-averaged F1 with a minimum-class-support assumption.

    Parameters
    ----------
    n_classes:
        Number of classes ``K``.
    min_class_fraction:
        Assumed lower bound ``alpha`` on every class's share of the
        testset.  The sensitivity certificate is ``c = 4 / (K * alpha)``;
        the evaluator verifies the assumption on the realized testset and
        refuses to certify when it is violated.
    """

    def __init__(self, n_classes: int, min_class_fraction: float = 0.05):
        self.n_classes = check_positive_int(n_classes, "n_classes")
        self.min_class_fraction = check_in_range(
            min_class_fraction, "min_class_fraction", 0.0, 1.0,
            low_inclusive=False, high_inclusive=False,
        )
        self.name = f"macro-f1[K={n_classes}]"

    def compute(self, predictions: np.ndarray, labels: np.ndarray) -> float:
        counts = np.bincount(np.asarray(labels), minlength=self.n_classes)
        if counts.min() < self.min_class_fraction * len(labels):
            raise InvalidParameterError(
                "testset violates the min_class_fraction assumption "
                f"(smallest class share {counts.min() / len(labels):.4f} < "
                f"{self.min_class_fraction}); the sensitivity certificate "
                "does not apply — consider stratified sampling"
            )
        return macro_f1(predictions, labels, self.n_classes)

    def sensitivity(self) -> float:
        return 4.0 / (self.n_classes * self.min_class_fraction)


@dataclass(frozen=True)
class MetricCondition:
    """``metric cmp threshold +/- tolerance`` over one model.

    The difference form (new vs old) is expressed by testing the paired
    metric gap with doubled sensitivity (changing one example moves *each*
    model's metric by at most ``c/m``).
    """

    metric: QualityMetric
    comparator: str
    threshold: float
    tolerance: float
    paired: bool = False

    def __post_init__(self) -> None:
        if self.comparator not in (">", "<"):
            raise InvalidParameterError(
                f"comparator must be '>' or '<', got {self.comparator!r}"
            )
        check_positive(self.tolerance, "tolerance")

    @property
    def effective_sensitivity(self) -> float:
        """Doubled in the paired (new - old) form."""
        base = self.metric.sensitivity()
        return 2.0 * base if self.paired else base


class MetricTester:
    """Sizes and evaluates metric conditions with McDiarmid budgets.

    Parameters
    ----------
    condition:
        The metric condition to enforce.
    delta:
        Total failure budget.
    adaptivity, steps:
        Interaction mode, with the same budgets as the core system.
    mode:
        Unknown-resolution mode (fp-free / fn-free).
    """

    def __init__(
        self,
        condition: MetricCondition,
        delta: float,
        *,
        adaptivity: str | Adaptivity = Adaptivity.NONE,
        steps: int = 1,
        mode: Mode | str = Mode.FP_FREE,
    ):
        self.condition = condition
        self.delta = check_probability(delta, "delta")
        self.adaptivity = (
            adaptivity
            if isinstance(adaptivity, Adaptivity)
            else Adaptivity.parse(adaptivity)
        )
        self.steps = check_positive_int(steps, "steps")
        self.mode = Mode.parse(mode) if isinstance(mode, str) else mode
        self._inequality = McDiarmidInequality(
            sensitivity=condition.effective_sensitivity, two_sided=True
        )

    @property
    def effective_delta(self) -> float:
        """Per-evaluation budget after the adaptivity split."""
        return self.adaptivity.effective_delta(self.delta, self.steps)

    def sample_size(self) -> int:
        """Labeled examples needed per evaluation."""
        import math

        return int(
            math.ceil(
                self._inequality.sample_size(
                    self.condition.tolerance, self.effective_delta
                )
            )
        )

    def evaluate(
        self,
        predictions: np.ndarray,
        labels: np.ndarray,
        old_predictions: np.ndarray | None = None,
    ) -> tuple[float, Interval, TernaryResult, bool]:
        """Evaluate one commit.

        Returns ``(estimate, interval, ternary, passed)``.  For paired
        conditions ``old_predictions`` is required and the estimate is the
        metric gap ``metric(new) - metric(old)``.
        """
        labels = np.asarray(labels)
        if len(labels) < self.sample_size():
            raise TestsetSizeError(
                f"testset has {len(labels)} examples; the metric condition "
                f"needs {self.sample_size()}"
            )
        value = self.condition.metric.compute(np.asarray(predictions), labels)
        if self.condition.paired:
            if old_predictions is None:
                raise InvalidParameterError(
                    "paired metric condition needs old_predictions"
                )
            value -= self.condition.metric.compute(
                np.asarray(old_predictions), labels
            )
        interval = Interval.from_estimate(value, self.condition.tolerance)
        outcome = interval.compare(self.condition.comparator, self.condition.threshold)
        return value, interval, outcome, resolve_ternary(outcome, self.mode)
