"""Condition evaluation over confidence intervals (§3.5, Appendix A.2).

Given a :class:`~repro.core.estimators.plans.SampleSizePlan` and the paired
predictions of the (old, new) models on the testset, the evaluator:

1. computes the point estimates of the variables each clause needs;
2. widens them into confidence intervals using *the tolerances the plan
   allocated* (so the evaluation consumes exactly the (epsilon, delta)
   budget the sizing promised);
3. combines intervals through the linear expression via interval algebra;
4. compares against the threshold to get {True, False, Unknown} per clause;
5. takes the Kleene conjunction and collapses it to pass/fail with the
   script's fp-free / fn-free mode.

For ``BENNETT_PAIRED`` clauses the expression is estimated directly from
the paired per-example differences (tighter than combining two independent
accuracy intervals); the interval is ``estimate ± clause.tolerance``.

Two evaluation paths share these semantics:

* :meth:`ConditionEvaluator.evaluate` — the scalar reference: one
  :class:`~repro.stats.estimation.PairedSample`, clause machinery walked
  in Python.  Kept deliberately simple; it is the ground truth the batch
  path is asserted against.
* :meth:`ConditionEvaluator.evaluate_batch` — the vectorized path: a
  :class:`~repro.stats.estimation.PairedSampleBatch` of ``B`` candidates
  is widened through the plan's tolerances with array interval algebra
  (identical FP operations applied element-wise, so results are
  bit-identical to the scalar path).  The per-candidate
  :class:`ClauseEvaluation` diagnostics are materialized lazily — the
  ternary signals come straight out of the arrays, and the object graph
  is only built for results somebody actually inspects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

import numpy as np

from repro.core.dsl.linear import linearize
from repro.core.dsl.nodes import Clause
from repro.core.estimators.plans import ClausePlan, ClauseStrategy, SampleSizePlan
from repro.core.intervals import Interval
from repro.core.logic import Mode, TernaryResult, resolve_ternary, ternary_and
from repro.exceptions import InvalidParameterError, TestsetSizeError
from repro.stats.estimation import PairedSample, PairedSampleBatch

__all__ = ["ClauseEvaluation", "EvaluationResult", "ConditionEvaluator"]


@dataclass(frozen=True)
class ClauseEvaluation:
    """Evaluation detail for one clause.

    Attributes
    ----------
    clause:
        The clause evaluated.
    interval:
        The confidence interval computed for the clause's left-hand side.
    outcome:
        Three-valued comparison result.
    estimates:
        The point estimates of the variables used (for diagnostics).
    """

    clause: Clause
    interval: Interval
    outcome: TernaryResult
    estimates: Mapping[str, float]


class EvaluationResult:
    """Full evaluation of a formula against one commit.

    Attributes
    ----------
    ternary:
        The Kleene conjunction over clause outcomes.
    passed:
        The binary signal after applying the mode (Unknown resolution).
    mode:
        The mode used for the resolution.
    clause_evaluations:
        Per-clause detail, in formula order.  For results produced by the
        batched path this tuple is materialized on first access — the
        signal fields above are always eager.
    """

    __slots__ = ("ternary", "passed", "mode", "_clause_evaluations", "_builder")

    def __init__(
        self,
        ternary: TernaryResult,
        passed: bool,
        mode: Mode,
        clause_evaluations: tuple[ClauseEvaluation, ...],
    ):
        self.ternary = ternary
        self.passed = passed
        self.mode = mode
        self._clause_evaluations = tuple(clause_evaluations)
        self._builder = None

    @classmethod
    def deferred(
        cls,
        ternary: TernaryResult,
        passed: bool,
        mode: Mode,
        builder: Callable[[], tuple[ClauseEvaluation, ...]],
    ) -> "EvaluationResult":
        """A result whose clause diagnostics are built on first access."""
        result = cls.__new__(cls)
        result.ternary = ternary
        result.passed = passed
        result.mode = mode
        result._clause_evaluations = None
        result._builder = builder
        return result

    @property
    def clause_evaluations(self) -> tuple[ClauseEvaluation, ...]:
        """Per-clause detail, materializing a deferred result if needed."""
        if self._clause_evaluations is None:
            self._clause_evaluations = self._builder()
            self._builder = None
        return self._clause_evaluations

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EvaluationResult):
            return NotImplemented
        return (
            self.ternary is other.ternary
            and self.passed == other.passed
            and self.mode is other.mode
            and self.clause_evaluations == other.clause_evaluations
        )

    def __hash__(self) -> int:
        return hash((self.ternary, self.passed, self.mode, self.clause_evaluations))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EvaluationResult(ternary={self.ternary!r}, passed={self.passed!r}, "
            f"mode={self.mode!r}, clause_evaluations={self.clause_evaluations!r})"
        )

    def __jsonable__(self) -> dict:
        """Field-by-field view for :func:`repro.utils.serialization.to_jsonable`.

        Matches the dict the dataclass-based implementation produced.
        """
        return {
            "ternary": self.ternary,
            "passed": self.passed,
            "mode": self.mode,
            "clause_evaluations": self.clause_evaluations,
        }

    def __getstate__(self):
        # Materialize before pickling: builder closures do not serialize.
        return (self.ternary, self.passed, self.mode, self.clause_evaluations)

    def __setstate__(self, state) -> None:
        self.ternary, self.passed, self.mode, self._clause_evaluations = state
        self._builder = None

    @property
    def was_determinate(self) -> bool:
        """True when the decision did not rely on Unknown-resolution."""
        return self.ternary is not TernaryResult.UNKNOWN

    def describe(self) -> str:
        """Human-readable one-evaluation summary."""
        lines = [
            f"result: {'PASS' if self.passed else 'FAIL'} "
            f"(ternary={self.ternary.value}, mode={self.mode.value})"
        ]
        for ce in self.clause_evaluations:
            ests = ", ".join(f"{k}={v:.4f}" for k, v in sorted(ce.estimates.items()))
            lines.append(
                f"  {ce.clause.to_source()}: LHS in {ce.interval} "
                f"-> {ce.outcome.value}  [{ests}]"
            )
        return "\n".join(lines)


# Ternary outcomes as small ints so the Kleene conjunction over a batch is
# one ``min`` reduction: False < Unknown < True.
_FALSE, _UNKNOWN, _TRUE = 0, 1, 2
_CODE_TO_TERNARY = (TernaryResult.FALSE, TernaryResult.UNKNOWN, TernaryResult.TRUE)

# Canonical variable order of the batched interval accumulation — the
# superset iteration of the scalar path's sorted() clause walk, so terms
# land in the same order (absent variables contribute an exact 0.0).
_VARIABLE_ORDER = ("d", "n", "o")


@dataclass(frozen=True)
class _ClauseStatic:
    """Per-clause constants hoisted out of the batched hot loop."""

    clause: Clause
    is_paired: bool
    constant: float
    scale: float  # BENNETT_PAIRED: the gain coefficient
    coefficients: Mapping[str, float]
    tolerances: Mapping[str, float]
    comparator: str
    threshold: float
    tolerance: float
    variables: tuple[str, ...]


@dataclass(frozen=True)
class _BatchKernel:
    """The formula's batched interval accumulation, prepacked as arrays.

    Everything here depends only on the plan (clause splits, coefficient
    columns, tolerance columns, comparator masks), so it is computed once
    per evaluator and reused across every :meth:`evaluate_batch` call — a
    pool-aware engine re-batching a long queue at each generation rotation
    pays the packing cost once, not once per rotation segment.
    """

    hoeffding: tuple[tuple[int, _ClauseStatic], ...]
    paired: tuple[tuple[int, _ClauseStatic], ...]
    needed: tuple[str, ...]
    constants: np.ndarray  # (k, 1) linearized clause constants
    terms: tuple[tuple[str, np.ndarray, np.ndarray], ...]  # (coeff, tol) columns
    thresholds: np.ndarray  # (k, 1)
    greater: np.ndarray  # (k, 1) comparator mask


class ConditionEvaluator:
    """Evaluates a plan's formula against paired model predictions.

    Parameters
    ----------
    plan:
        The sizing plan whose tolerance allocations drive the intervals.
    mode:
        ``fp-free`` or ``fn-free`` (string or :class:`Mode`).
    enforce_sample_size:
        When ``True`` (default), evaluating with fewer examples than the
        plan requires raises :class:`TestsetSizeError` — the guarantee
        would silently not hold otherwise.
    """

    def __init__(
        self,
        plan: SampleSizePlan,
        mode: Mode | str,
        *,
        enforce_sample_size: bool = True,
    ):
        self.plan = plan
        self.mode = Mode.parse(mode) if isinstance(mode, str) else mode
        self.enforce_sample_size = bool(enforce_sample_size)
        self._batch_static: list[_ClauseStatic] | None = None
        self._kernel: _BatchKernel | None = None

    def __getstate__(self) -> dict:
        # The memoized per-clause batch kernel is derived state (plain
        # arrays recomputed from the plan on the first evaluate_batch), so
        # pickles stay lean and restored evaluators repack lazily.  Engine
        # snapshots go further and drop the evaluator entirely, rebuilding
        # it from the re-derived plan (see CIEngine.export_state).
        return {
            "plan": self.plan,
            "mode": self.mode,
            "enforce_sample_size": self.enforce_sample_size,
        }

    def __setstate__(self, state: dict) -> None:
        self.__init__(
            state["plan"],
            state["mode"],
            enforce_sample_size=state["enforce_sample_size"],
        )

    def prepack(self) -> None:
        """Materialize the batched interval kernel ahead of serving.

        The kernel is a pure function of the plan and is otherwise built
        lazily on the first :meth:`evaluate_batch`; prepacking moves that
        cost to a warm-up phase without changing any result.  Idempotent.
        """
        self._batch_kernel()

    def _check_size(self, size: int) -> None:
        if self.enforce_sample_size and size < self.plan.pool_size:
            raise TestsetSizeError(
                f"testset has {size} examples but the plan requires "
                f"{self.plan.pool_size}; the ({self.plan.delta:g})-guarantee "
                "would not hold"
            )

    def evaluate(self, sample: PairedSample) -> EvaluationResult:
        """Evaluate the formula on one testset's paired predictions."""
        self._check_size(len(sample))
        evaluations = tuple(
            self._evaluate_clause(clause_plan, sample)
            for clause_plan in self.plan.clause_plans
        )
        ternary = ternary_and(e.outcome for e in evaluations)
        return EvaluationResult(
            ternary=ternary,
            passed=resolve_ternary(ternary, self.mode),
            mode=self.mode,
            clause_evaluations=evaluations,
        )

    # -- the batched path -------------------------------------------------------
    def _clause_static(self) -> list[_ClauseStatic]:
        if self._batch_static is None:
            static = []
            for clause_plan in self.plan.clause_plans:
                clause = clause_plan.clause
                lin = linearize(clause)
                paired = clause_plan.strategy is ClauseStrategy.BENNETT_PAIRED
                tolerances = {} if paired else dict(clause_plan.variable_tolerances())
                variables = () if paired else tuple(sorted(lin.variables()))
                if not paired:
                    missing = [v for v in variables if v not in tolerances]
                    if missing:  # pragma: no cover - plans always allocate
                        raise InvalidParameterError(
                            f"plan has no tolerance for variable {missing[0]!r}"
                        )
                static.append(
                    _ClauseStatic(
                        clause=clause,
                        is_paired=paired,
                        constant=lin.constant,
                        scale=lin.coefficient("n"),
                        coefficients=dict(lin.coefficients),
                        tolerances=tolerances,
                        comparator=clause.comparator,
                        threshold=clause.threshold,
                        tolerance=clause.tolerance,
                        variables=variables,
                    )
                )
            self._batch_static = static
        return self._batch_static

    def _batch_kernel(self) -> _BatchKernel:
        if self._kernel is None:
            static = self._clause_static()
            hoeffding = tuple(
                (i, s) for i, s in enumerate(static) if not s.is_paired
            )
            paired = tuple((i, s) for i, s in enumerate(static) if s.is_paired)
            needed = tuple({v for _, s in hoeffding for v in s.variables})
            constants = np.array([s.constant for _, s in hoeffding])[:, None]
            terms = []
            for variable in _VARIABLE_ORDER:
                coeff = np.array(
                    [s.coefficients.get(variable, 0.0) for _, s in hoeffding]
                )
                if not np.any(coeff):
                    continue
                tol = np.array(
                    [s.tolerances.get(variable, 0.0) for _, s in hoeffding]
                )
                terms.append((variable, coeff[:, None], tol[:, None]))
            thresholds = np.array([s.threshold for _, s in hoeffding])[:, None]
            greater = np.array([s.comparator == ">" for _, s in hoeffding])[:, None]
            self._kernel = _BatchKernel(
                hoeffding=hoeffding,
                paired=paired,
                needed=needed,
                constants=constants,
                terms=tuple(terms),
                thresholds=thresholds,
                greater=greater,
            )
        return self._kernel

    def evaluate_batch(self, batch: PairedSampleBatch) -> tuple[EvaluationResult, ...]:
        """Evaluate the formula for every candidate in one batch.

        Element ``i`` of the returned tuple equals
        ``self.evaluate(batch.sample(i))`` — same ternary, same signal,
        same clause diagnostics (asserted in the test suite).  All
        per-variable clauses are widened together through one ``(k, B)``
        interval-matrix accumulation (the floating-point operations applied
        to each element match the scalar walk term for term, with absent
        variables contributing an exact zero); the per-candidate
        :class:`ClauseEvaluation` tuples are materialized lazily.
        """
        self._check_size(len(batch))
        size = batch.batch_size
        if size == 0:
            return ()
        static = self._clause_static()
        kernel = self._batch_kernel()
        hoeffding = kernel.hoeffding
        paired = kernel.paired

        estimates: dict[str, np.ndarray] = {}
        for variable in kernel.needed:
            estimates[variable] = np.asarray(
                self._estimate_variable_batch(variable, batch), dtype=np.float64
            )

        columns: dict[int, tuple] = {}  # clause position -> (lows, highs, codes)
        codes: np.ndarray | None = None

        if hoeffding:
            k = len(hoeffding)
            lows = np.empty((k, size), dtype=np.float64)
            lows[:] = kernel.constants
            highs = lows.copy()
            for variable, coeff, tol in kernel.terms:
                values = estimates[variable][None, :]
                # Mirrors Interval.from_estimate(...).scale(coefficient)
                # element-wise; rows whose clause lacks the variable add
                # an exact 0.0, leaving their accumulation value-identical
                # to the scalar walk that skips the variable.
                scaled_low = (values - tol) * coeff
                scaled_high = (values + tol) * coeff
                lows += np.minimum(scaled_low, scaled_high)
                highs += np.maximum(scaled_low, scaled_high)
            thresholds = kernel.thresholds
            greater = kernel.greater
            matrix_codes = np.where(
                greater,
                np.where(
                    lows > thresholds,
                    _TRUE,
                    np.where(highs <= thresholds, _FALSE, _UNKNOWN),
                ),
                np.where(
                    highs < thresholds,
                    _TRUE,
                    np.where(lows >= thresholds, _FALSE, _UNKNOWN),
                ),
            ).astype(np.int8)
            codes = matrix_codes.min(axis=0)
            for row, (position, _) in enumerate(hoeffding):
                columns[position] = (lows[row], highs[row], matrix_codes[row])

        for position, s in paired:
            gains = batch.accuracy_gains()
            centre = s.scale * gains + s.constant
            lo = centre - s.tolerance
            hi = centre + s.tolerance
            if s.comparator == ">":
                col = np.where(
                    lo > s.threshold,
                    _TRUE,
                    np.where(hi <= s.threshold, _FALSE, _UNKNOWN),
                ).astype(np.int8)
            else:
                col = np.where(
                    hi < s.threshold,
                    _TRUE,
                    np.where(lo >= s.threshold, _FALSE, _UNKNOWN),
                ).astype(np.int8)
            codes = col if codes is None else np.minimum(codes, col)
            columns[position] = (lo, hi, col)

        if codes is None:  # pragma: no cover - formulas always have clauses
            codes = np.full(size, _TRUE, dtype=np.int8)
        fn_free = self.mode is Mode.FN_FREE
        passed = (codes == _TRUE) | ((codes == _UNKNOWN) & fn_free)

        mode = self.mode
        code_list = codes.tolist()
        passed_list = passed.tolist()
        ordered = [(s, columns[i]) for i, s in enumerate(static)]
        estimate_lists = {name: arr.tolist() for name, arr in estimates.items()}
        paired_estimates = (
            (batch.accuracy_gains().tolist(), batch.differences().tolist())
            if paired
            else None
        )

        def make_builder(index: int) -> Callable[[], tuple[ClauseEvaluation, ...]]:
            def build() -> tuple[ClauseEvaluation, ...]:
                evaluations = []
                for s, (low_col, high_col, code_col) in ordered:
                    if s.is_paired:
                        gains_list, diff_list = paired_estimates
                        clause_estimates = {
                            "n-o": gains_list[index],
                            "d": diff_list[index],
                        }
                    else:
                        clause_estimates = {
                            v: estimate_lists[v][index] for v in s.variables
                        }
                    evaluations.append(
                        ClauseEvaluation(
                            clause=s.clause,
                            interval=Interval(
                                float(low_col[index]), float(high_col[index])
                            ),
                            outcome=_CODE_TO_TERNARY[int(code_col[index])],
                            estimates=clause_estimates,
                        )
                    )
                return tuple(evaluations)

            return build

        return tuple(
            EvaluationResult.deferred(
                _CODE_TO_TERNARY[code_list[i]],
                passed_list[i],
                mode,
                make_builder(i),
            )
            for i in range(size)
        )

    # -- clause machinery ------------------------------------------------------
    def _evaluate_clause(
        self, clause_plan: ClausePlan, sample: PairedSample
    ) -> ClauseEvaluation:
        if clause_plan.strategy is ClauseStrategy.BENNETT_PAIRED:
            return self._evaluate_paired(clause_plan, sample)
        return self._evaluate_per_variable(clause_plan, sample)

    def _evaluate_paired(
        self, clause_plan: ClausePlan, sample: PairedSample
    ) -> ClauseEvaluation:
        clause = clause_plan.clause
        lin = linearize(clause)
        scale = lin.coefficient("n")
        gain = sample.accuracy_gain
        estimate = scale * gain + lin.constant
        interval = Interval.from_estimate(estimate, clause.tolerance)
        outcome = interval.compare(clause.comparator, clause.threshold)
        return ClauseEvaluation(
            clause=clause,
            interval=interval,
            outcome=outcome,
            estimates={"n-o": gain, "d": sample.difference},
        )

    def _evaluate_per_variable(
        self, clause_plan: ClausePlan, sample: PairedSample
    ) -> ClauseEvaluation:
        clause = clause_plan.clause
        lin = linearize(clause)
        tolerances = clause_plan.variable_tolerances()
        estimates: dict[str, float] = {}
        interval = Interval.exact(lin.constant)
        for variable in sorted(lin.variables()):
            coefficient = lin.coefficient(variable)
            estimate = self._estimate_variable(variable, sample)
            estimates[variable] = estimate
            tolerance = tolerances.get(variable)
            if tolerance is None:  # pragma: no cover - plans always allocate
                raise InvalidParameterError(
                    f"plan has no tolerance for variable {variable!r}"
                )
            interval = interval + Interval.from_estimate(estimate, tolerance).scale(
                coefficient
            )
        outcome = interval.compare(clause.comparator, clause.threshold)
        return ClauseEvaluation(
            clause=clause,
            interval=interval,
            outcome=outcome,
            estimates=estimates,
        )

    @staticmethod
    def _estimate_variable(variable: str, sample: PairedSample) -> float:
        if variable == "n":
            return sample.new_accuracy
        if variable == "o":
            return sample.old_accuracy
        if variable == "d":
            return sample.difference
        raise InvalidParameterError(f"unknown variable {variable!r}")

    @staticmethod
    def _estimate_variable_batch(variable: str, batch: PairedSampleBatch) -> np.ndarray:
        if variable == "n":
            return batch.new_accuracies()
        if variable == "o":
            return np.full(batch.batch_size, batch.old_accuracy, dtype=np.float64)
        if variable == "d":
            return batch.differences()
        raise InvalidParameterError(f"unknown variable {variable!r}")
