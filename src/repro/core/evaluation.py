"""Condition evaluation over confidence intervals (§3.5, Appendix A.2).

Given a :class:`~repro.core.estimators.plans.SampleSizePlan` and the paired
predictions of the (old, new) models on the testset, the evaluator:

1. computes the point estimates of the variables each clause needs;
2. widens them into confidence intervals using *the tolerances the plan
   allocated* (so the evaluation consumes exactly the (epsilon, delta)
   budget the sizing promised);
3. combines intervals through the linear expression via interval algebra;
4. compares against the threshold to get {True, False, Unknown} per clause;
5. takes the Kleene conjunction and collapses it to pass/fail with the
   script's fp-free / fn-free mode.

For ``BENNETT_PAIRED`` clauses the expression is estimated directly from
the paired per-example differences (tighter than combining two independent
accuracy intervals); the interval is ``estimate ± clause.tolerance``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.core.dsl.linear import linearize
from repro.core.dsl.nodes import Clause
from repro.core.estimators.plans import ClausePlan, ClauseStrategy, SampleSizePlan
from repro.core.intervals import Interval
from repro.core.logic import Mode, TernaryResult, resolve_ternary, ternary_and
from repro.exceptions import InvalidParameterError, TestsetSizeError
from repro.stats.estimation import PairedSample

__all__ = ["ClauseEvaluation", "EvaluationResult", "ConditionEvaluator"]


@dataclass(frozen=True)
class ClauseEvaluation:
    """Evaluation detail for one clause.

    Attributes
    ----------
    clause:
        The clause evaluated.
    interval:
        The confidence interval computed for the clause's left-hand side.
    outcome:
        Three-valued comparison result.
    estimates:
        The point estimates of the variables used (for diagnostics).
    """

    clause: Clause
    interval: Interval
    outcome: TernaryResult
    estimates: Mapping[str, float]


@dataclass(frozen=True)
class EvaluationResult:
    """Full evaluation of a formula against one commit.

    Attributes
    ----------
    ternary:
        The Kleene conjunction over clause outcomes.
    passed:
        The binary signal after applying the mode (Unknown resolution).
    mode:
        The mode used for the resolution.
    clause_evaluations:
        Per-clause detail, in formula order.
    """

    ternary: TernaryResult
    passed: bool
    mode: Mode
    clause_evaluations: tuple[ClauseEvaluation, ...]

    @property
    def was_determinate(self) -> bool:
        """True when the decision did not rely on Unknown-resolution."""
        return self.ternary is not TernaryResult.UNKNOWN

    def describe(self) -> str:
        """Human-readable one-evaluation summary."""
        lines = [
            f"result: {'PASS' if self.passed else 'FAIL'} "
            f"(ternary={self.ternary.value}, mode={self.mode.value})"
        ]
        for ce in self.clause_evaluations:
            ests = ", ".join(f"{k}={v:.4f}" for k, v in sorted(ce.estimates.items()))
            lines.append(
                f"  {ce.clause.to_source()}: LHS in {ce.interval} "
                f"-> {ce.outcome.value}  [{ests}]"
            )
        return "\n".join(lines)


class ConditionEvaluator:
    """Evaluates a plan's formula against paired model predictions.

    Parameters
    ----------
    plan:
        The sizing plan whose tolerance allocations drive the intervals.
    mode:
        ``fp-free`` or ``fn-free`` (string or :class:`Mode`).
    enforce_sample_size:
        When ``True`` (default), evaluating with fewer examples than the
        plan requires raises :class:`TestsetSizeError` — the guarantee
        would silently not hold otherwise.
    """

    def __init__(
        self,
        plan: SampleSizePlan,
        mode: Mode | str,
        *,
        enforce_sample_size: bool = True,
    ):
        self.plan = plan
        self.mode = Mode.parse(mode) if isinstance(mode, str) else mode
        self.enforce_sample_size = bool(enforce_sample_size)

    def evaluate(self, sample: PairedSample) -> EvaluationResult:
        """Evaluate the formula on one testset's paired predictions."""
        if self.enforce_sample_size and len(sample) < self.plan.pool_size:
            raise TestsetSizeError(
                f"testset has {len(sample)} examples but the plan requires "
                f"{self.plan.pool_size}; the ({self.plan.delta:g})-guarantee "
                "would not hold"
            )
        evaluations = tuple(
            self._evaluate_clause(clause_plan, sample)
            for clause_plan in self.plan.clause_plans
        )
        ternary = ternary_and(e.outcome for e in evaluations)
        return EvaluationResult(
            ternary=ternary,
            passed=resolve_ternary(ternary, self.mode),
            mode=self.mode,
            clause_evaluations=evaluations,
        )

    # -- clause machinery ------------------------------------------------------
    def _evaluate_clause(
        self, clause_plan: ClausePlan, sample: PairedSample
    ) -> ClauseEvaluation:
        if clause_plan.strategy is ClauseStrategy.BENNETT_PAIRED:
            return self._evaluate_paired(clause_plan, sample)
        return self._evaluate_per_variable(clause_plan, sample)

    def _evaluate_paired(
        self, clause_plan: ClausePlan, sample: PairedSample
    ) -> ClauseEvaluation:
        clause = clause_plan.clause
        lin = linearize(clause)
        scale = lin.coefficient("n")
        gain = sample.accuracy_gain
        estimate = scale * gain + lin.constant
        interval = Interval.from_estimate(estimate, clause.tolerance)
        outcome = interval.compare(clause.comparator, clause.threshold)
        return ClauseEvaluation(
            clause=clause,
            interval=interval,
            outcome=outcome,
            estimates={"n-o": gain, "d": sample.difference},
        )

    def _evaluate_per_variable(
        self, clause_plan: ClausePlan, sample: PairedSample
    ) -> ClauseEvaluation:
        clause = clause_plan.clause
        lin = linearize(clause)
        tolerances = clause_plan.variable_tolerances()
        estimates: dict[str, float] = {}
        interval = Interval.exact(lin.constant)
        for variable in sorted(lin.variables()):
            coefficient = lin.coefficient(variable)
            estimate = self._estimate_variable(variable, sample)
            estimates[variable] = estimate
            tolerance = tolerances.get(variable)
            if tolerance is None:  # pragma: no cover - plans always allocate
                raise InvalidParameterError(
                    f"plan has no tolerance for variable {variable!r}"
                )
            interval = interval + Interval.from_estimate(estimate, tolerance).scale(
                coefficient
            )
        outcome = interval.compare(clause.comparator, clause.threshold)
        return ClauseEvaluation(
            clause=clause,
            interval=interval,
            outcome=outcome,
            estimates=estimates,
        )

    @staticmethod
    def _estimate_variable(variable: str, sample: PairedSample) -> float:
        if variable == "n":
            return sample.new_accuracy
        if variable == "o":
            return sample.old_accuracy
        if variable == "d":
            return sample.difference
        raise InvalidParameterError(f"unknown variable {variable!r}")
