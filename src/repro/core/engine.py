"""The ease.ml/ci engine: commit evaluation with rigorous signals (Fig. 1).

:class:`CIEngine` binds together every piece built so far:

* a :class:`~repro.core.script.CIScript` (condition, reliability, mode,
  adaptivity, steps);
* a :class:`~repro.core.estimators.SampleSizeEstimator` producing the
  :class:`~repro.core.estimators.plans.SampleSizePlan`;
* a :class:`~repro.core.testset.TestsetManager` tracking statistical
  budget, with the :class:`~repro.core.alarm.NewTestsetAlarm` watching it;
* a :class:`~repro.core.evaluation.ConditionEvaluator` applying the §3.5
  interval semantics per commit.

Signal routing per adaptivity mode (§2.2, §3.2–3.4):

* ``full`` — the developer sees pass/fail immediately;
* ``none`` — every commit is *accepted* into the repository, the
  developer sees nothing, and the true signal goes to the third-party
  address on the script (via a pluggable notifier callable);
* ``firstChange`` — like ``full``, but the first passing commit retires
  the testset immediately (the hybrid argument that keeps the sample size
  at the non-adaptive level).

In every mode the engine maintains the *active* model — the last commit
that truly passed — as the "old model" ``o`` that subsequent commits are
compared against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.core.alarm import AlarmEvent, AlarmReason, NewTestsetAlarm
from repro.core.estimators.adaptivity import Adaptivity
from repro.core.estimators.api import SampleSizeEstimator
from repro.core.estimators.plans import SampleSizePlan
from repro.core.evaluation import ConditionEvaluator, EvaluationResult
from repro.core.script.config import CIScript
from repro.core.testset import Testset, TestsetManager
from repro.exceptions import TestsetSizeError
from repro.stats.estimation import PairedSample

__all__ = ["CommitResult", "CIEngine"]


@dataclass(frozen=True)
class CommitResult:
    """What one commit produced.

    Attributes
    ----------
    commit_index:
        0-based index of the commit within the current engine lifetime.
    evaluation:
        The full interval-semantics evaluation (true signal inside).
    truly_passed:
        The true pass/fail signal (what the integration team learns).
    developer_signal:
        What the developer observes: the signal under ``full`` /
        ``firstChange``; ``None`` under ``none`` (information embargo).
    accepted:
        Whether the commit is accepted into the repository (under
        ``none`` every commit is accepted regardless of the signal).
    promoted:
        Whether this commit became the new active (old) model.
    testset_uses:
        Budget consumed on the current testset after this commit.
    alarm_event:
        The alarm fired by this commit, if any.
    """

    commit_index: int
    evaluation: EvaluationResult
    truly_passed: bool
    developer_signal: bool | None
    accepted: bool
    promoted: bool
    testset_uses: int
    alarm_event: AlarmEvent | None


class CIEngine:
    """Continuous integration engine for ML models.

    Parameters
    ----------
    script:
        The validated configuration.
    testset:
        The initial testset provided by the integration team.  Its size is
        checked against the sample-size plan at construction.
    baseline_model:
        The currently deployed ("old") model the first commit is compared
        against.  Anything with ``predict(features) -> predictions``.
    estimator:
        Optional custom :class:`SampleSizeEstimator` (defaults to
        optimizations on, honouring the script's ``variance_bound``).
    notifier:
        Callable ``(email, subject, body)`` used for third-party signal
        delivery under ``adaptivity: none``; also receives alarm emails.
    enforce_testset_size:
        Refuse to run when the testset is smaller than the plan requires
        (on by default; Figure 5's adaptive query is an example of a
        deliberate override, where the paper accepts a slightly larger
        tolerance instead).
    """

    def __init__(
        self,
        script: CIScript,
        testset: Testset,
        baseline_model: Any,
        *,
        estimator: SampleSizeEstimator | None = None,
        notifier: Callable[[str, str, str], None] | None = None,
        enforce_testset_size: bool = True,
    ):
        self.script = script
        self.estimator = estimator or SampleSizeEstimator()
        self.plan: SampleSizePlan = self.estimator.plan(
            script.condition,
            delta=script.delta,
            adaptivity=script.adaptivity,
            steps=script.steps,
            known_variance_bound=script.variance_bound,
        )
        if enforce_testset_size and testset.size < self.plan.pool_size:
            raise TestsetSizeError(
                f"testset {testset.name!r} has {testset.size} examples but the "
                f"plan requires {self.plan.pool_size}; collect more labels or "
                "relax the condition"
            )
        self.manager = TestsetManager(testset, budget=script.steps)
        self.alarm = NewTestsetAlarm()
        self.notifier = notifier
        self.evaluator = ConditionEvaluator(
            self.plan, script.mode, enforce_sample_size=enforce_testset_size
        )
        self.active_model = baseline_model
        self._active_predictions = self.manager.current.predict_with(baseline_model)
        self._results: list[CommitResult] = []

    # -- inspection -------------------------------------------------------------
    @property
    def results(self) -> list[CommitResult]:
        """All commit results, in order."""
        return list(self._results)

    @property
    def commits_evaluated(self) -> int:
        """Total commits evaluated over the engine lifetime."""
        return len(self._results)

    # -- the four-step workflow ---------------------------------------------------
    def submit(self, model: Any) -> CommitResult:
        """Step 3 of the workflow: a developer commits a model.

        Evaluates the configured condition with the (epsilon, delta)
        guarantee and routes the signal per the adaptivity mode.

        Raises
        ------
        TestsetExhaustedError
            When the current testset's budget is spent and no fresh
            testset has been installed.
        """
        testset = self.manager.current  # raises when exhausted
        uses = self.manager.consume()

        new_predictions = testset.predict_with(model)
        sample = PairedSample(
            old_predictions=self._active_predictions,
            new_predictions=new_predictions,
            labels=testset.labels,
        )
        evaluation = self.evaluator.evaluate(sample)
        truly_passed = evaluation.passed

        adaptivity = self.script.adaptivity
        developer_signal = truly_passed if adaptivity.releases_signal_to_developer else None
        accepted = True if adaptivity is Adaptivity.NONE else truly_passed

        promoted = False
        if truly_passed:
            self.active_model = model
            self._active_predictions = new_predictions
            promoted = True

        alarm_event = self._maybe_alarm(truly_passed, uses, testset)
        if adaptivity is Adaptivity.NONE:
            self._notify_third_party(truly_passed)

        result = CommitResult(
            commit_index=len(self._results),
            evaluation=evaluation,
            truly_passed=truly_passed,
            developer_signal=developer_signal,
            accepted=accepted,
            promoted=promoted,
            testset_uses=uses,
            alarm_event=alarm_event,
        )
        self._results.append(result)
        return result

    def install_testset(self, testset: Testset, baseline_model: Any | None = None) -> None:
        """Install a fresh testset after an alarm (new generation).

        The active model's predictions are recomputed on the new testset;
        passing ``baseline_model`` also resets the active model.
        """
        self.manager.install(testset)
        if baseline_model is not None:
            self.active_model = baseline_model
        if self.manager.current.size < self.plan.pool_size and self.evaluator.enforce_sample_size:
            raise TestsetSizeError(
                f"replacement testset has {self.manager.current.size} examples "
                f"but the plan requires {self.plan.pool_size}"
            )
        self._active_predictions = self.manager.current.predict_with(self.active_model)

    # -- internals ------------------------------------------------------------
    def _maybe_alarm(
        self, truly_passed: bool, uses: int, testset: Testset
    ) -> AlarmEvent | None:
        adaptivity = self.script.adaptivity
        if truly_passed and adaptivity.retires_testset_on_pass:
            self.manager.retire()
            event = self.alarm.fire(
                AlarmReason.FIRST_CHANGE_PASS,
                testset_name=testset.name,
                uses=uses,
                generation=self.manager.generation,
            )
        elif self.manager.budget_spent:
            self.manager.retire()
            event = self.alarm.fire(
                AlarmReason.BUDGET_EXHAUSTED,
                testset_name=testset.name,
                uses=uses,
                generation=self.manager.generation,
            )
        else:
            return None
        if self.notifier is not None:
            self.notifier(
                self.script.notification_email or "integration-team",
                "[ease.ml/ci] new testset required",
                event.message,
            )
        return event

    def _notify_third_party(self, truly_passed: bool) -> None:
        if self.notifier is None:
            return
        signal = "PASS" if truly_passed else "FAIL"
        self.notifier(
            self.script.notification_email or "integration-team",
            f"[ease.ml/ci] commit #{len(self._results) + 1}: {signal}",
            (
                f"condition : {self.script.condition_source}\n"
                f"signal    : {signal}\n"
                "This signal is withheld from the development team "
                "(adaptivity: none)."
            ),
        )
