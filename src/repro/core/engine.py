"""The ease.ml/ci engine: commit evaluation with rigorous signals (Fig. 1).

:class:`CIEngine` binds together every piece built so far:

* a :class:`~repro.core.script.CIScript` (condition, reliability, mode,
  adaptivity, steps);
* a :class:`~repro.core.estimators.SampleSizeEstimator` producing the
  :class:`~repro.core.estimators.plans.SampleSizePlan`;
* a :class:`~repro.core.testset.TestsetManager` tracking statistical
  budget, with the :class:`~repro.core.alarm.NewTestsetAlarm` watching it;
* a :class:`~repro.core.evaluation.ConditionEvaluator` applying the §3.5
  interval semantics per commit.

Signal routing per adaptivity mode (§2.2, §3.2–3.4):

* ``full`` — the developer sees pass/fail immediately;
* ``none`` — every commit is *accepted* into the repository, the
  developer sees nothing, and the true signal goes to the third-party
  address on the script (via a pluggable notifier callable);
* ``firstChange`` — like ``full``, but the first passing commit retires
  the testset immediately (the hybrid argument that keeps the sample size
  at the non-adaptive level).

In every mode the engine maintains the *active* model — the last commit
that truly passed — as the "old model" ``o`` that subsequent commits are
compared against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

import numpy as np

from repro.core.alarm import AlarmEvent, AlarmReason, NewTestsetAlarm
from repro.core.estimators.adaptivity import Adaptivity
from repro.core.estimators.api import SampleSizeEstimator
from repro.core.estimators.plans import SampleSizePlan
from repro.core.evaluation import ConditionEvaluator, EvaluationResult
from repro.core.script.config import CIScript
from repro.core.testset import Testset, TestsetManager
from repro.exceptions import TestsetSizeError
from repro.stats.estimation import PairedSample, PairedSampleBatch

__all__ = ["CommitResult", "CIEngine"]


@dataclass(frozen=True)
class CommitResult:
    """What one commit produced.

    Attributes
    ----------
    commit_index:
        0-based index of the commit within the current engine lifetime.
    evaluation:
        The full interval-semantics evaluation (true signal inside).
    truly_passed:
        The true pass/fail signal (what the integration team learns).
    developer_signal:
        What the developer observes: the signal under ``full`` /
        ``firstChange``; ``None`` under ``none`` (information embargo).
    accepted:
        Whether the commit is accepted into the repository (under
        ``none`` every commit is accepted regardless of the signal).
    promoted:
        Whether this commit became the new active (old) model.
    testset_uses:
        Budget consumed on the current testset after this commit.
    alarm_event:
        The alarm fired by this commit, if any.
    """

    commit_index: int
    evaluation: EvaluationResult
    truly_passed: bool
    developer_signal: bool | None
    accepted: bool
    promoted: bool
    testset_uses: int
    alarm_event: AlarmEvent | None


class CIEngine:
    """Continuous integration engine for ML models.

    Parameters
    ----------
    script:
        The validated configuration.
    testset:
        The initial testset provided by the integration team.  Its size is
        checked against the sample-size plan at construction.
    baseline_model:
        The currently deployed ("old") model the first commit is compared
        against.  Anything with ``predict(features) -> predictions``.
    estimator:
        Optional custom :class:`SampleSizeEstimator` (defaults to
        optimizations on, honouring the script's ``variance_bound``).
    notifier:
        Callable ``(email, subject, body)`` used for third-party signal
        delivery under ``adaptivity: none``; also receives alarm emails.
    enforce_testset_size:
        Refuse to run when the testset is smaller than the plan requires
        (on by default; Figure 5's adaptive query is an example of a
        deliberate override, where the paper accepts a slightly larger
        tolerance instead).
    """

    def __init__(
        self,
        script: CIScript,
        testset: Testset,
        baseline_model: Any,
        *,
        estimator: SampleSizeEstimator | None = None,
        notifier: Callable[[str, str, str], None] | None = None,
        enforce_testset_size: bool = True,
    ):
        self.script = script
        self.estimator = estimator or SampleSizeEstimator()
        self.plan: SampleSizePlan = self.estimator.plan(
            script.condition,
            delta=script.delta,
            adaptivity=script.adaptivity,
            steps=script.steps,
            known_variance_bound=script.variance_bound,
        )
        if enforce_testset_size and testset.size < self.plan.pool_size:
            raise TestsetSizeError(
                f"testset {testset.name!r} has {testset.size} examples but the "
                f"plan requires {self.plan.pool_size}; collect more labels or "
                "relax the condition"
            )
        self.manager = TestsetManager(testset, budget=script.steps)
        self.alarm = NewTestsetAlarm()
        self.notifier = notifier
        self.evaluator = ConditionEvaluator(
            self.plan, script.mode, enforce_sample_size=enforce_testset_size
        )
        self.active_model = baseline_model
        self._active_predictions = self.manager.current.predict_with(baseline_model)
        self._results: list[CommitResult] = []

    # -- inspection -------------------------------------------------------------
    @property
    def results(self) -> list[CommitResult]:
        """All commit results, in order."""
        return list(self._results)

    @property
    def commits_evaluated(self) -> int:
        """Total commits evaluated over the engine lifetime."""
        return len(self._results)

    # -- the four-step workflow ---------------------------------------------------
    def submit(self, model: Any) -> CommitResult:
        """Step 3 of the workflow: a developer commits a model.

        Evaluates the configured condition with the (epsilon, delta)
        guarantee and routes the signal per the adaptivity mode.

        Raises
        ------
        TestsetExhaustedError
            When the current testset's budget is spent and no fresh
            testset has been installed.
        """
        testset = self.manager.current  # raises when exhausted
        uses = self.manager.consume()

        new_predictions = testset.predict_with(model)
        sample = PairedSample(
            old_predictions=self._active_predictions,
            new_predictions=new_predictions,
            labels=testset.labels,
        )
        evaluation = self.evaluator.evaluate(sample)
        truly_passed = evaluation.passed

        adaptivity = self.script.adaptivity
        developer_signal = truly_passed if adaptivity.releases_signal_to_developer else None
        accepted = True if adaptivity is Adaptivity.NONE else truly_passed

        promoted = False
        if truly_passed:
            self.active_model = model
            self._active_predictions = new_predictions
            promoted = True

        alarm_event = self._maybe_alarm(truly_passed, uses, testset)
        if adaptivity is Adaptivity.NONE:
            self._notify_third_party(truly_passed)

        result = CommitResult(
            commit_index=len(self._results),
            evaluation=evaluation,
            truly_passed=truly_passed,
            developer_signal=developer_signal,
            accepted=accepted,
            promoted=promoted,
            testset_uses=uses,
            alarm_event=alarm_event,
        )
        self._results.append(result)
        return result

    def submit_many(self, models: Sequence[Any]) -> list[CommitResult]:
        """Drain a queue of commits through batched evaluations.

        Element-wise identical to calling :meth:`submit` once per model,
        in order — same signals, promotions, alarms and budget consumption
        (the test suite asserts this under all three adaptivity modes) —
        but each model is predicted once and the condition is evaluated
        for the whole queue with one vectorized
        :meth:`~repro.core.evaluation.ConditionEvaluator.evaluate_batch`
        per comparison baseline.  When a commit truly passes it becomes
        the new active model, so the models after it are re-batched
        against the newly promoted baseline, exactly like the sequential
        active-model chain.

        Unlike the sequential loop, predictions are computed eagerly for
        every commit that can still be evaluated (at most the remaining
        statistical budget): if a model's ``predict`` raises, the error
        surfaces before *any* commit in the queue has been evaluated,
        whereas the loop would have processed the commits ahead of the
        broken model first.

        Raises
        ------
        TestsetExhaustedError
            When the testset's budget runs out (or a ``firstChange`` pass
            retires it) before the queue is drained — mirroring the
            sequential loop, which raises on the submit after the
            retirement.  Results for the commits evaluated before the
            exhaustion are preserved in :attr:`results`.
        """
        models = list(models)
        results: list[CommitResult] = []
        if not models:
            return results
        testset = self.manager.current  # raises when already exhausted
        # Commits beyond the remaining budget can never be evaluated (the
        # queue raises when it reaches them), so their models are not
        # worth predicting.
        evaluable = min(len(models), self.manager.remaining)
        predictions = [testset.predict_with(model) for model in models[:evaluable]]
        matrix = np.stack(predictions)
        adaptivity = self.script.adaptivity
        releases_signal = adaptivity.releases_signal_to_developer
        accepts_all = adaptivity is Adaptivity.NONE
        retires_on_pass = adaptivity.retires_testset_on_pass
        notifies = accepts_all and self.notifier is not None
        manager = self.manager
        log = self._results
        start = 0
        while start < evaluable:
            testset = manager.current  # raises once retired mid-queue
            batch = PairedSampleBatch(
                old_predictions=self._active_predictions,
                new_prediction_matrix=matrix[start:],
                labels=testset.labels,
            )
            evaluations = self.evaluator.evaluate_batch(batch)
            rebatched = False
            for offset, evaluation in enumerate(evaluations):
                index = start + offset
                if offset:
                    # A retirement mid-batch (budget spent) invalidates the
                    # rest of the queue, exactly like the sequential loop.
                    testset = manager.current
                uses = manager.consume()
                truly_passed = evaluation.passed
                developer_signal = truly_passed if releases_signal else None
                accepted = True if accepts_all else truly_passed
                promoted = False
                if truly_passed:
                    self.active_model = models[index]
                    self._active_predictions = predictions[index]
                    promoted = True
                if (truly_passed and retires_on_pass) or manager.budget_spent:
                    alarm_event = self._maybe_alarm(truly_passed, uses, testset)
                else:
                    alarm_event = None
                if notifies:
                    self._notify_third_party(truly_passed)
                result = CommitResult(
                    commit_index=len(log),
                    evaluation=evaluation,
                    truly_passed=truly_passed,
                    developer_signal=developer_signal,
                    accepted=accepted,
                    promoted=promoted,
                    testset_uses=uses,
                    alarm_event=alarm_event,
                )
                log.append(result)
                results.append(result)
                if promoted and index + 1 < evaluable:
                    start = index + 1
                    rebatched = True
                    break
            if not rebatched:
                break
        if len(results) < len(models):
            # The budget (or a firstChange pass) retired the testset with
            # commits still queued: raise exactly like the sequential
            # loop's next submit would.
            self.manager.current
        return results

    def install_testset(self, testset: Testset, baseline_model: Any | None = None) -> None:
        """Install a fresh testset after an alarm (new generation).

        The active model's predictions are recomputed on the new testset;
        passing ``baseline_model`` also resets the active model.
        """
        self.manager.install(testset)
        if baseline_model is not None:
            self.active_model = baseline_model
        if self.manager.current.size < self.plan.pool_size and self.evaluator.enforce_sample_size:
            raise TestsetSizeError(
                f"replacement testset has {self.manager.current.size} examples "
                f"but the plan requires {self.plan.pool_size}"
            )
        self._active_predictions = self.manager.current.predict_with(self.active_model)

    # -- internals ------------------------------------------------------------
    def _maybe_alarm(
        self, truly_passed: bool, uses: int, testset: Testset
    ) -> AlarmEvent | None:
        adaptivity = self.script.adaptivity
        if truly_passed and adaptivity.retires_testset_on_pass:
            self.manager.retire()
            event = self.alarm.fire(
                AlarmReason.FIRST_CHANGE_PASS,
                testset_name=testset.name,
                uses=uses,
                generation=self.manager.generation,
            )
        elif self.manager.budget_spent:
            self.manager.retire()
            event = self.alarm.fire(
                AlarmReason.BUDGET_EXHAUSTED,
                testset_name=testset.name,
                uses=uses,
                generation=self.manager.generation,
            )
        else:
            return None
        if self.notifier is not None:
            self.notifier(
                self.script.notification_email or "integration-team",
                "[ease.ml/ci] new testset required",
                event.message,
            )
        return event

    def _notify_third_party(self, truly_passed: bool) -> None:
        if self.notifier is None:
            return
        signal = "PASS" if truly_passed else "FAIL"
        self.notifier(
            self.script.notification_email or "integration-team",
            f"[ease.ml/ci] commit #{len(self._results) + 1}: {signal}",
            (
                f"condition : {self.script.condition_source}\n"
                f"signal    : {signal}\n"
                "This signal is withheld from the development team "
                "(adaptivity: none)."
            ),
        )
