"""The ease.ml/ci engine: commit evaluation with rigorous signals (Fig. 1).

:class:`CIEngine` binds together every piece built so far:

* a :class:`~repro.core.script.CIScript` (condition, reliability, mode,
  adaptivity, steps);
* a kernel backend (:mod:`repro.core.kernel`) supplying the
  :class:`~repro.core.kernel.interfaces.Planner` that produces the
  :class:`~repro.core.estimators.plans.SampleSizePlan` and the
  :class:`~repro.core.kernel.interfaces.Evaluator` applying the §3.5
  interval semantics per commit (the ``"default"`` backend wraps
  :class:`~repro.core.estimators.SampleSizeEstimator` and
  :class:`~repro.core.evaluation.ConditionEvaluator`);
* a :class:`~repro.core.testset.TestsetManager` tracking statistical
  budget, with the :class:`~repro.core.alarm.NewTestsetAlarm` watching it.

The engine itself is pure orchestration: it owns the budget accounting,
the signal routing, the pool rotations and the durable-state contract,
and reaches planning/evaluation only through the backend's protocols —
a new planning tier or serving kernel registers itself
(:func:`repro.core.kernel.register_backend`) and is selected with the
``backend=`` keyword, with zero edits here.  The conformance kit under
``tests/conformance/`` certifies any registered backend element-wise
against the stock one.

Signal routing per adaptivity mode (§2.2, §3.2–3.4):

* ``full`` — the developer sees pass/fail immediately;
* ``none`` — every commit is *accepted* into the repository, the
  developer sees nothing, and the true signal goes to the third-party
  address on the script (via a pluggable notifier callable);
* ``firstChange`` — like ``full``, but the first passing commit retires
  the testset immediately (the hybrid argument that keeps the sample size
  at the non-adaptive level).

In every mode the engine maintains the *active* model — the last commit
that truly passed — as the "old model" ``o`` that subsequent commits are
compared against.

Serving shape: :meth:`CIEngine.submit` is the per-commit webhook path;
:meth:`CIEngine.submit_many` is the batched path that predicts each model
once and evaluates the whole queue with one vectorized
:meth:`~repro.core.evaluation.ConditionEvaluator.evaluate_batch` per
comparison baseline, re-batching after every promotion — element-wise
identical to the sequential loop.

Testset lifecycle: by default the engine serves one generation at a time
and raises :class:`~repro.exceptions.TestsetExhaustedError` once its
budget is spent.  Attaching a :class:`~repro.core.testset.TestsetPool`
(:meth:`CIEngine.install_testset_pool`, or the ``testset_pool`` keyword)
switches the engine to *pool-aware* mode: on exhaustion — and on the
retirement alarms that cause it — ``submit`` / ``submit_many`` rotate to
the pool's next generation automatically (re-planning through the cached
:class:`SampleSizeEstimator` plans and re-batching the in-flight
remainder), emit a :class:`~repro.core.testset.GenerationRotationEvent`
through the notification channel, and keep draining.  The exhaustion
error then surfaces only when the pool is truly dry.

Durability: the engine's guarantees hinge on state that must never
silently reset — the per-testset budget accounting, the adaptivity-mode
history, the pool of unreleased generations.  :meth:`CIEngine.export_state`
/ :meth:`CIEngine.from_state` (and plain pickling, which delegates to
them) capture exactly that state; cached plan and evaluator objects are
*re-derived* through the estimator on restore — warmed via the snapshot's
plan manifest — never serialized.  See :mod:`repro.ci.persistence` for
the snapshot/journal machinery built on this contract.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

import numpy as np

from repro.core.alarm import AlarmEvent, AlarmReason, NewTestsetAlarm
from repro.core.estimators.adaptivity import Adaptivity
from repro.core.estimators.api import SampleSizeEstimator
from repro.core.estimators.plans import SampleSizePlan
from repro.core.evaluation import EvaluationResult
from repro.core.kernel import KernelBackend, get_backend
from repro.core.script.config import CIScript
from repro.core.testset import (
    GenerationRotationEvent,
    Testset,
    TestsetManager,
    TestsetPool,
)
from repro.exceptions import (
    EngineStateError,
    InvalidParameterError,
    PersistenceError,
    TestsetSizeError,
)
from repro.stats.cache import warm_after_restore
from repro.stats.estimation import PairedSample, PairedSampleBatch

__all__ = ["CommitResult", "CIEngine", "ENGINE_STATE_FORMAT"]

#: Version tag of the engine's exported-state contract; bumped whenever the
#: mapping returned by :meth:`CIEngine.export_state` changes incompatibly.
ENGINE_STATE_FORMAT = "repro.ci-engine/v1"


@dataclass(frozen=True)
class CommitResult:
    """What one commit produced.

    Attributes
    ----------
    commit_index:
        0-based index of the commit within the current engine lifetime.
    evaluation:
        The full interval-semantics evaluation (true signal inside).
    truly_passed:
        The true pass/fail signal (what the integration team learns).
    developer_signal:
        What the developer observes: the signal under ``full`` /
        ``firstChange``; ``None`` under ``none`` (information embargo).
    accepted:
        Whether the commit is accepted into the repository (under
        ``none`` every commit is accepted regardless of the signal).
    promoted:
        Whether this commit became the new active (old) model.
    testset_uses:
        Budget consumed on the current testset after this commit.
    generation:
        1-based testset generation that served this commit's evaluation
        (the audit trail pool-aware build records surface).
    alarm_event:
        The alarm fired by this commit, if any.
    """

    commit_index: int
    evaluation: EvaluationResult
    truly_passed: bool
    developer_signal: bool | None
    accepted: bool
    promoted: bool
    testset_uses: int
    generation: int
    alarm_event: AlarmEvent | None


class CIEngine:
    """Continuous integration engine for ML models.

    Parameters
    ----------
    script:
        The validated configuration.
    testset:
        The initial testset provided by the integration team.  Its size is
        checked against the sample-size plan at construction.
    baseline_model:
        The currently deployed ("old") model the first commit is compared
        against.  Anything with ``predict(features) -> predictions``.
    estimator:
        Optional custom :class:`SampleSizeEstimator` (defaults to
        optimizations on, honouring the script's ``variance_bound``).
        Handed to the backend's planner factory; the ``"default"``
        backend wraps it in a
        :class:`~repro.core.kernel.DefaultPlanner`.
    notifier:
        Callable ``(email, subject, body)`` used for third-party signal
        delivery under ``adaptivity: none``; also receives alarm emails.
    enforce_testset_size:
        Refuse to run when the testset is smaller than the plan requires
        (on by default; Figure 5's adaptive query is an example of a
        deliberate override, where the paper accepts a slightly larger
        tolerance instead).
    testset_pool:
        Optional :class:`TestsetPool` of pre-labeled generations.  When
        given, the engine rotates to the pool's next generation instead of
        raising on exhaustion; ``testset`` may then be ``None``, in which
        case the first generation is popped from the pool.
    workers:
        Planning-executor configuration forwarded to the estimator
        (``None`` = serial / ``$REPRO_PLAN_WORKERS``, ``"auto"`` = one
        worker process per CPU, or an explicit count; see
        :mod:`repro.stats.parallel`).  With workers configured, cold
        plan derivations — including the re-plan a pool rotation
        triggers mid-queue — run in worker processes, so multi-generation
        re-planning overlaps with serving instead of stalling it.
        Worker count never changes plans, signals or budgets.  When a
        custom ``estimator`` is supplied alongside a *parallel*
        ``workers`` setting, the default planner rebuilds it — same
        class — from its exported config with ``workers`` applied;
        serial settings leave the supplied estimator untouched.
    backend:
        The kernel backend supplying planner and evaluator: a name
        registered with :func:`repro.core.kernel.register_backend`, a
        :class:`~repro.core.kernel.KernelBackend` instance, or ``None``
        for ``"default"`` (the stock
        :class:`SampleSizeEstimator`/:class:`ConditionEvaluator` pair).
    precision:
        Accumulation tier of the planning kernels: ``None`` (keep the
        estimator's setting — ``"float64"`` for the stock one) or an
        explicit ``"float64"`` / ``"float32"``.  The float32 tier halves
        the planning kernels' memory traffic; its probes are certified
        against the float64 reference, so plans never weaken.  When a
        custom ``estimator`` disagrees, it is rebuilt — same class — from
        its exported config with ``precision`` applied, mirroring how a
        parallel ``workers`` setting is grafted on.
    """

    def __init__(
        self,
        script: CIScript,
        testset: Testset | None,
        baseline_model: Any,
        *,
        estimator: SampleSizeEstimator | None = None,
        notifier: Callable[[str, str, str], None] | None = None,
        enforce_testset_size: bool = True,
        testset_pool: TestsetPool | None = None,
        workers: int | str | None = None,
        backend: str | KernelBackend | None = None,
        precision: str | None = None,
    ):
        self.script = script
        if precision is not None:
            if precision not in ("float64", "float32"):
                raise InvalidParameterError(
                    f"precision must be 'float64' or 'float32', got {precision!r}"
                )
            if estimator is None:
                estimator = SampleSizeEstimator(precision=precision)
            elif getattr(estimator, "precision", "float64") != precision:
                config = dict(estimator.export_config())
                config["precision"] = precision
                estimator = type(estimator)(**config)
        self._backend = get_backend(backend)
        self._planner = self._backend.make_planner(
            workers=workers, estimator=estimator
        )
        self.plan: SampleSizePlan = self._compute_plan()
        self._pool: TestsetPool | None = None
        self._rotations: list[GenerationRotationEvent] = []
        budget = script.steps
        if testset is None:
            if testset_pool is None or testset_pool.is_empty:
                raise EngineStateError(
                    "construct the engine with an initial testset or a "
                    "non-empty testset_pool"
                )
            # Validate the generation before pop() consumes it (and before
            # a low-watermark "label now" callback fires for nothing).
            candidate = testset_pool.pending_testsets[0]
            self._check_initial_size(candidate, enforce_testset_size)
            self._set_pool_default_budget(testset_pool)
            testset, pool_budget = testset_pool.pop()
            budget = pool_budget or testset_pool.default_budget or budget
        else:
            self._check_initial_size(testset, enforce_testset_size)
        self.manager = TestsetManager(testset, budget=budget)
        self.alarm = NewTestsetAlarm()
        self.notifier = notifier
        self.evaluator = self._backend.make_evaluator(
            self.plan, script.mode, enforce_sample_size=enforce_testset_size
        )
        self.active_model = baseline_model
        self._active_predictions = self.manager.current.predict_with(baseline_model)
        self._results: list[CommitResult] = []
        if testset_pool is not None:
            self.install_testset_pool(testset_pool)

    # -- inspection -------------------------------------------------------------
    @property
    def backend(self) -> KernelBackend:
        """The kernel backend this engine orchestrates over."""
        return self._backend

    @property
    def planner(self):
        """The backend's :class:`~repro.core.kernel.interfaces.Planner`."""
        return self._planner

    @property
    def estimator(self):
        """The planner's underlying estimator (compatibility surface).

        The default planner wraps a :class:`SampleSizeEstimator` and
        exposes it here; planners without one stand in for themselves
        (they carry the same ``workers`` / ``export_config`` surface).
        """
        return getattr(self._planner, "estimator", self._planner)

    @property
    def results(self) -> list[CommitResult]:
        """All commit results, in order."""
        return list(self._results)

    @property
    def commits_evaluated(self) -> int:
        """Total commits evaluated over the engine lifetime."""
        return len(self._results)

    @property
    def pool(self) -> TestsetPool | None:
        """The attached testset pool, if the engine is pool-aware."""
        return self._pool

    @property
    def rotations(self) -> list[GenerationRotationEvent]:
        """All pool rotations performed so far, in order."""
        return list(self._rotations)

    # -- the four-step workflow ---------------------------------------------------
    def submit(self, model: Any) -> CommitResult:
        """Step 3 of the workflow: a developer commits a model.

        Evaluates the configured condition with the (epsilon, delta)
        guarantee and routes the signal per the adaptivity mode.

        Raises
        ------
        TestsetExhaustedError
            When the current testset's budget is spent and no fresh
            testset has been installed — in pool-aware mode only when the
            pool is dry too (otherwise the engine rotates and evaluates).
        """
        testset = self._ensure_active_testset()  # rotates, or raises when dry
        generation = self.manager.generation
        uses = self.manager.consume()

        new_predictions = testset.predict_with(model)
        sample = PairedSample(
            old_predictions=self._active_predictions,
            new_predictions=new_predictions,
            labels=testset.labels,
        )
        evaluation = self.evaluator.evaluate(sample)
        truly_passed = evaluation.passed

        adaptivity = self.script.adaptivity
        developer_signal = truly_passed if adaptivity.releases_signal_to_developer else None
        accepted = True if adaptivity is Adaptivity.NONE else truly_passed

        promoted = False
        if truly_passed:
            self.active_model = model
            self._active_predictions = new_predictions
            promoted = True

        alarm_event = self._maybe_alarm(truly_passed, uses, testset)
        if adaptivity is Adaptivity.NONE:
            self._notify_third_party(truly_passed)

        result = CommitResult(
            commit_index=len(self._results),
            evaluation=evaluation,
            truly_passed=truly_passed,
            developer_signal=developer_signal,
            accepted=accepted,
            promoted=promoted,
            testset_uses=uses,
            generation=generation,
            alarm_event=alarm_event,
        )
        self._results.append(result)
        return result

    def submit_many(self, models: Sequence[Any]) -> list[CommitResult]:
        """Drain a queue of commits through batched evaluations.

        Element-wise identical to calling :meth:`submit` once per model,
        in order — same signals, promotions, alarms and budget consumption
        (the test suite asserts this under all three adaptivity modes) —
        but each model is predicted once and the condition is evaluated
        for the whole queue with one vectorized
        :meth:`~repro.core.evaluation.ConditionEvaluator.evaluate_batch`
        per comparison baseline.  When a commit truly passes it becomes
        the new active model, so the models after it are re-batched
        against the newly promoted baseline, exactly like the sequential
        active-model chain.

        Unlike the sequential loop, predictions are computed eagerly for
        every commit that can still be evaluated on the current generation
        (at most its remaining statistical budget): if such a model's
        ``predict`` raises, the error surfaces before *any* commit of that
        generation's segment has been evaluated, whereas the loop would
        have processed the commits ahead of the broken model first.

        In pool-aware mode (:meth:`install_testset_pool`) the queue spans
        generations: when the active testset retires mid-queue — budget
        spent, or a ``firstChange`` pass — the engine rotates to the
        pool's next generation and re-batches the in-flight remainder
        against it (active-model predictions and the remaining models are
        re-predicted on the new testset), element-wise identical to a
        manual install/rotate/resubmit loop.

        Raises
        ------
        TestsetExhaustedError
            When the testset's budget runs out (or a ``firstChange`` pass
            retires it) before the queue is drained and no pool generation
            is left to rotate to — mirroring the sequential loop, which
            raises on the submit after the retirement.  Results for the
            commits evaluated before the exhaustion are preserved in
            :attr:`results`.
        """
        models = list(models)
        results: list[CommitResult] = []
        if not models:
            return results
        while True:
            # Rotates to the next pool generation when the active testset
            # has retired; raises only when no testset is available.
            testset = self._ensure_active_testset()
            results.extend(self._drain_generation(models[len(results):], testset))
            if len(results) == len(models):
                return results
            if self._pool is None or self._pool.is_empty:
                # The budget (or a firstChange pass) retired the testset
                # with commits still queued and nothing to rotate to:
                # raise exactly like the sequential loop's next submit.
                _ = self.manager.current
                raise EngineStateError(
                    "generation drained early without the testset retiring"
                )

    def _drain_generation(
        self, models: list[Any], testset: Testset
    ) -> list[CommitResult]:
        """Evaluate queued models on the current generation until it retires.

        Returns the results produced on this generation — possibly fewer
        than ``len(models)`` when the testset retires mid-queue; the
        caller (:meth:`submit_many`) decides whether to rotate or raise.
        """
        # Commits beyond the remaining budget can never be evaluated on
        # this generation, so their models are not worth predicting yet.
        evaluable = min(len(models), self.manager.remaining)
        predictions = [testset.predict_with(model) for model in models[:evaluable]]
        matrix = np.stack(predictions)
        adaptivity = self.script.adaptivity
        releases_signal = adaptivity.releases_signal_to_developer
        accepts_all = adaptivity is Adaptivity.NONE
        retires_on_pass = adaptivity.retires_testset_on_pass
        notifies = accepts_all and self.notifier is not None
        manager = self.manager
        generation = manager.generation
        log = self._results
        results: list[CommitResult] = []
        start = 0
        while start < evaluable and not manager.is_exhausted:
            batch = PairedSampleBatch(
                old_predictions=self._active_predictions,
                new_prediction_matrix=matrix[start:],
                labels=testset.labels,
            )
            evaluations = self.evaluator.evaluate_batch(batch)
            rebatched = False
            for offset, evaluation in enumerate(evaluations):
                index = start + offset
                uses = manager.consume()
                truly_passed = evaluation.passed
                developer_signal = truly_passed if releases_signal else None
                accepted = True if accepts_all else truly_passed
                promoted = False
                if truly_passed:
                    self.active_model = models[index]
                    self._active_predictions = predictions[index]
                    promoted = True
                if (truly_passed and retires_on_pass) or manager.budget_spent:
                    alarm_event = self._maybe_alarm(truly_passed, uses, testset)
                else:
                    alarm_event = None
                if notifies:
                    self._notify_third_party(truly_passed)
                result = CommitResult(
                    commit_index=len(log),
                    evaluation=evaluation,
                    truly_passed=truly_passed,
                    developer_signal=developer_signal,
                    accepted=accepted,
                    promoted=promoted,
                    testset_uses=uses,
                    generation=generation,
                    alarm_event=alarm_event,
                )
                log.append(result)
                results.append(result)
                if promoted and index + 1 < evaluable:
                    # A retirement on this pass (firstChange) ends the
                    # generation's segment; otherwise re-batch the rest of
                    # the queue against the newly promoted baseline.
                    start = index + 1
                    rebatched = True
                    break
            if not rebatched:
                break
        return results

    def install_testset(
        self,
        testset: Testset,
        baseline_model: Any | None = None,
        *,
        budget: int | None = None,
    ) -> None:
        """Install a fresh testset after an alarm (new generation).

        The active model's predictions are recomputed on the new testset;
        passing ``baseline_model`` also resets the active model.
        ``budget`` overrides the script's per-generation evaluation budget
        (pool entries with explicit budgets pass it through here).

        The size check runs *before* the manager installs the replacement,
        so an undersized testset leaves the engine in its released state
        (recoverable with a properly sized install) instead of active on
        a set that cannot honour the plan.
        """
        if testset.size < self.plan.pool_size and self.evaluator.enforce_sample_size:
            raise TestsetSizeError(
                f"replacement testset has {testset.size} examples "
                f"but the plan requires {self.plan.pool_size}"
            )
        self.manager.install(testset, budget=budget)
        if baseline_model is not None:
            self.active_model = baseline_model
        self._active_predictions = self.manager.current.predict_with(self.active_model)

    def install_testset_pool(self, pool: TestsetPool) -> None:
        """Attach a pool of pre-labeled generations (pool-aware mode).

        The pool's :attr:`~repro.core.testset.TestsetPool.default_budget`
        is filled in from the script's ``H``/adaptivity accounting
        (:meth:`~repro.core.estimators.adaptivity.Adaptivity.evaluations_per_testset`)
        when the pool does not carry one.  If the engine's current
        testset is already exhausted, the first rotation happens
        immediately.
        """
        self._set_pool_default_budget(pool)
        self._pool = pool
        if self.manager.is_exhausted and not pool.is_empty:
            self._rotate_from_pool()

    # -- durable state -----------------------------------------------------------
    def export_state(self) -> dict[str, Any]:
        """Everything that must never silently reset, as one mapping.

        The contract (format ``repro.ci-engine/v1``): script, estimator
        *configuration*, testset manager (active generation, uses,
        remaining budget, released sets), alarm events, active-model
        baseline and its cached predictions, the commit-result history,
        the testset pool and the rotation log — plus a *warm manifest*
        naming the plan requests behind the state.  Deliberately absent:

        * the :class:`SampleSizePlan` and the evaluator — derived
          objects, re-derived through the backend's planner (and the
          warm manifest) on restore, never serialized;
        * the ``notifier`` — runtime wiring, re-supplied to
          :meth:`from_state`;
        * pool low-watermark callbacks and alarm subscribers — runtime
          wiring dropped by those objects' own pickling contracts.
        """
        return {
            "format": ENGINE_STATE_FORMAT,
            "backend": self._backend.name,
            "script": self.script,
            "estimator": self._planner.export_config(),
            "manager": self.manager,
            "alarm": self.alarm,
            "active_model": self.active_model,
            "active_predictions": self._active_predictions,
            "results": list(self._results),
            "pool": self._pool,
            "rotations": list(self._rotations),
            "enforce_sample_size": self.evaluator.enforce_sample_size,
            "warm_manifest": self.warm_manifest(),
        }

    def warm_manifest(self) -> dict[str, Any]:
        """The plan requests a restorer must replay to warm the caches.

        Consumed by :func:`repro.stats.cache.warm_after_restore` (the
        estimator layer's restore warmer re-derives each request into the
        process-wide plan cache before the engine re-plans).
        """
        return {"plans": self._planner.plan_requests(self.script)}

    @classmethod
    def from_state(
        cls,
        state: dict[str, Any],
        *,
        notifier: Callable[[str, str, str], None] | None = None,
    ) -> "CIEngine":
        """Rebuild an engine from :meth:`export_state` output.

        Warms the shared caches from the state's manifest, re-derives the
        plan through the backend's planner (bit-identical by purity),
        rebuilds the evaluator, and rewires the runtime-only ``notifier``.
        """
        engine = object.__new__(cls)
        engine._apply_state(state, notifier=notifier)
        return engine

    def _apply_state(
        self,
        state: dict[str, Any],
        *,
        notifier: Callable[[str, str, str], None] | None,
    ) -> None:
        fmt = state.get("format")
        if fmt != ENGINE_STATE_FORMAT:
            raise PersistenceError(
                f"unsupported engine state format {fmt!r} "
                f"(this build reads {ENGINE_STATE_FORMAT!r})"
            )
        warm_after_restore(state["warm_manifest"])
        self.script = state["script"]
        # Snapshots written before the kernel seam carry no backend key;
        # they restore onto the stock components, exactly as they ran.
        self._backend = get_backend(state.get("backend", "default"))
        self._planner = self._backend.planner_from_config(state["estimator"])
        self.plan = self._compute_plan()
        self.manager = state["manager"]
        self.alarm = state["alarm"]
        self.notifier = notifier
        self.evaluator = self._backend.make_evaluator(
            self.plan,
            self.script.mode,
            enforce_sample_size=state["enforce_sample_size"],
        )
        self.active_model = state["active_model"]
        self._active_predictions = state["active_predictions"]
        self._results = list(state["results"])
        self._pool = state["pool"]
        self._rotations = list(state["rotations"])

    def __getstate__(self) -> dict[str, Any]:
        return self.export_state()

    def __setstate__(self, state: dict[str, Any]) -> None:
        self._apply_state(state, notifier=None)

    # -- internals ------------------------------------------------------------
    def _compute_plan(self) -> SampleSizePlan:
        """The script's plan, derived through the backend's planner."""
        return self._planner.plan_for(self.script)

    def _check_initial_size(self, testset: Testset, enforce: bool) -> None:
        if enforce and testset.size < self.plan.pool_size:
            raise TestsetSizeError(
                f"testset {testset.name!r} has {testset.size} examples but the "
                f"plan requires {self.plan.pool_size}; collect more labels or "
                "relax the condition"
            )

    def _set_pool_default_budget(self, pool: TestsetPool) -> None:
        if pool.default_budget is None:
            pool.default_budget = self.script.adaptivity.evaluations_per_testset(
                self.script.steps
            )

    def _ensure_active_testset(self) -> Testset:
        """The active testset, rotating from the pool when retired.

        Raises :class:`TestsetExhaustedError` only when no replacement is
        available — no pool attached, or the pool is dry — and
        :class:`TestsetSizeError` when the pool's next generation is too
        small for the plan (the entry is left in the pool).
        """
        if (
            self.manager.is_exhausted
            and self._pool is not None
            and not self._pool.is_empty
        ):
            self._rotate_from_pool()
        return self.manager.current  # raises when truly dry

    def _rotate_from_pool(self) -> GenerationRotationEvent:
        """Install the pool's next generation over the retired one.

        Re-plans through the process-wide plan cache (each generation
        restarts the ``H``-step reliability accounting with the same
        condition/spec, so the cached plan comes back in microseconds),
        installs the popped testset with its budget, and emits a
        :class:`GenerationRotationEvent` through the notification channel.
        Should the re-plan ever be cold (cleared caches, reconfigured
        estimator), a ``workers``-configured engine derives it through
        the parallel executor — worker processes burn the planning CPU
        while this thread keeps serving.
        """
        assert self._pool is not None and not self._pool.is_empty
        retired_name = self.manager.released_testsets[-1].name
        # Validate the generation before pop() consumes it: an undersized
        # set must fail without being popped (no phantom low-watermark
        # "label now" callback, no lost audit trail), leaving the engine
        # in its recoverable released state.
        candidate = self._pool.pending_testsets[0]
        if candidate.size < self.plan.pool_size and self.evaluator.enforce_sample_size:
            raise TestsetSizeError(
                f"next pool generation {candidate.name!r} has "
                f"{candidate.size} examples but the plan requires "
                f"{self.plan.pool_size}; replace it before commits can rotate"
            )
        testset, budget = self._pool.pop()
        plan = self._planner.replan_for(self.script)
        if plan is not self.plan:
            # The planner normally hands back the very plan object this
            # engine already evaluates with (same condition/spec/config);
            # only a genuinely different plan warrants a fresh evaluator
            # (and the loss of its memoized per-clause batch kernel).
            self.plan = plan
            self.evaluator = self._backend.make_evaluator(
                plan,
                self.script.mode,
                enforce_sample_size=self.evaluator.enforce_sample_size,
            )
        from_generation = self.manager.generation
        self.install_testset(testset, budget=budget)
        event = GenerationRotationEvent(
            retired_testset_name=retired_name,
            installed_testset_name=testset.name,
            from_generation=from_generation,
            to_generation=self.manager.generation,
            pending_generations=self._pool.pending,
            message=(
                f"[ease.ml/ci] testset rotated: generation {from_generation} "
                f"({retired_name!r}) retired, generation "
                f"{self.manager.generation} ({testset.name!r}) installed; "
                f"{self._pool.pending} generation(s) left in the pool."
            ),
        )
        self._rotations.append(event)
        if self.notifier is not None:
            self.notifier(
                self.script.notification_email or "integration-team",
                "[ease.ml/ci] testset generation rotated",
                event.message,
            )
        return event
    def _maybe_alarm(
        self, truly_passed: bool, uses: int, testset: Testset
    ) -> AlarmEvent | None:
        adaptivity = self.script.adaptivity
        if truly_passed and adaptivity.retires_testset_on_pass:
            self.manager.retire()
            event = self.alarm.fire(
                AlarmReason.FIRST_CHANGE_PASS,
                testset_name=testset.name,
                uses=uses,
                generation=self.manager.generation,
            )
        elif self.manager.budget_spent:
            self.manager.retire()
            event = self.alarm.fire(
                AlarmReason.BUDGET_EXHAUSTED,
                testset_name=testset.name,
                uses=uses,
                generation=self.manager.generation,
            )
        else:
            return None
        if self.notifier is not None:
            self.notifier(
                self.script.notification_email or "integration-team",
                "[ease.ml/ci] new testset required",
                event.message,
            )
        return event

    def _notify_third_party(self, truly_passed: bool) -> None:
        if self.notifier is None:
            return
        signal = "PASS" if truly_passed else "FAIL"
        self.notifier(
            self.script.notification_email or "integration-team",
            f"[ease.ml/ci] commit #{len(self._results) + 1}: {signal}",
            (
                f"condition : {self.script.condition_source}\n"
                f"signal    : {signal}\n"
                "This signal is withheld from the development team "
                "(adaptivity: none)."
            ),
        )
