"""Argument-validation helpers used across the library.

All helpers raise :class:`repro.exceptions.InvalidParameterError` (a
``ValueError`` subclass) with a message that names the offending parameter,
so user-facing APIs produce actionable diagnostics without each module
re-implementing bound checks.
"""

from __future__ import annotations

import math
from typing import Any

from repro.exceptions import InvalidParameterError

__all__ = [
    "check_probability",
    "check_fraction",
    "check_positive",
    "check_positive_int",
    "check_in_range",
    "check_type",
]


def _fail(name: str, value: Any, requirement: str) -> None:
    raise InvalidParameterError(f"{name} must be {requirement}, got {value!r}")


def check_probability(value: float, name: str = "delta", *, inclusive: bool = False) -> float:
    """Validate that ``value`` is a probability.

    Parameters
    ----------
    value:
        The candidate probability.
    name:
        Parameter name used in the error message.
    inclusive:
        When ``True`` the closed interval ``[0, 1]`` is allowed; otherwise
        the open interval ``(0, 1)`` is required (the right domain for
        failure probabilities ``delta``, which must be neither certain nor
        impossible).
    """
    value = _as_float(value, name)
    if inclusive:
        if not 0.0 <= value <= 1.0:
            _fail(name, value, "in [0, 1]")
    else:
        if not 0.0 < value < 1.0:
            _fail(name, value, "in the open interval (0, 1)")
    return value


def check_fraction(value: float, name: str) -> float:
    """Validate a quantity constrained to the closed unit interval."""
    return check_probability(value, name, inclusive=True)


def check_positive(value: float, name: str) -> float:
    """Validate a strictly positive, finite float."""
    value = _as_float(value, name)
    if not value > 0.0:
        _fail(name, value, "strictly positive")
    return value


def check_positive_int(value: int, name: str) -> int:
    """Validate a strictly positive integer (numpy integers accepted)."""
    if isinstance(value, bool) or not isinstance(value, int):
        try:
            import numpy as np

            if isinstance(value, np.integer):
                value = int(value)
            else:
                _fail(name, value, "an integer")
        except ImportError:  # pragma: no cover - numpy is a hard dependency
            _fail(name, value, "an integer")
    if value <= 0:
        _fail(name, value, "a positive integer")
    return int(value)


def check_in_range(
    value: float,
    name: str,
    low: float,
    high: float,
    *,
    low_inclusive: bool = True,
    high_inclusive: bool = True,
) -> float:
    """Validate ``low <op> value <op> high`` with configurable openness."""
    value = _as_float(value, name)
    lo_ok = value >= low if low_inclusive else value > low
    hi_ok = value <= high if high_inclusive else value < high
    if not (lo_ok and hi_ok):
        lb = "[" if low_inclusive else "("
        rb = "]" if high_inclusive else ")"
        _fail(name, value, f"in {lb}{low}, {high}{rb}")
    return value


def check_type(value: Any, name: str, types: type | tuple[type, ...]) -> Any:
    """Validate ``isinstance(value, types)`` with a named error."""
    if not isinstance(value, types):
        expected = (
            types.__name__
            if isinstance(types, type)
            else " | ".join(t.__name__ for t in types)
        )
        _fail(name, value, f"of type {expected}")
    return value


def _as_float(value: Any, name: str) -> float:
    """Coerce to float, rejecting NaN/inf and non-numeric types.

    Strings are rejected even when they look numeric — silently accepting
    ``"0.01"`` where a tolerance is expected hides configuration bugs.
    """
    if isinstance(value, (bool, str, bytes)):
        _fail(name, value, "a real number")
    try:
        out = float(value)
    except (TypeError, ValueError):
        _fail(name, value, "a real number")
    if math.isnan(out) or math.isinf(out):
        _fail(name, value, "finite")
    return out
