"""Plain-text table rendering for benchmark and experiment output.

The benchmark harness regenerates the paper's tables (e.g. Figure 2) as
aligned ASCII tables on stdout.  This module provides a tiny, dependency-free
table builder with per-column alignment and optional cell highlighting —
used to reproduce the paper's red "impractical" flags as a ``*`` marker.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

__all__ = ["Table", "format_count", "format_float", "format_scientific"]


def format_count(value: float | int) -> str:
    """Render a sample count with thousands separators (``63,381``)."""
    return f"{int(value):,}"


def format_float(value: float, digits: int = 4) -> str:
    """Render a float with a fixed number of significant decimal digits."""
    return f"{value:.{digits}f}"


def format_scientific(value: float, digits: int = 2) -> str:
    """Render a float in scientific notation (``1.00e-04``)."""
    return f"{value:.{digits}e}"


@dataclass
class Table:
    """An aligned, plain-text table.

    Parameters
    ----------
    columns:
        Column headers, in display order.
    align:
        Optional per-column alignment characters: ``<`` (left, default),
        ``>`` (right) or ``^`` (center).
    title:
        Optional title rendered above the table.

    Examples
    --------
    >>> t = Table(["cond", "n"], align=["<", ">"])
    >>> t.add_row(["F1", 404])
    >>> print(t.render())  # doctest: +NORMALIZE_WHITESPACE
    cond |   n
    -----+----
    F1   | 404
    """

    columns: Sequence[str]
    align: Sequence[str] | None = None
    title: str | None = None
    rows: list[list[str]] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.columns = [str(c) for c in self.columns]
        if self.align is None:
            self.align = ["<"] * len(self.columns)
        if len(self.align) != len(self.columns):
            raise ValueError(
                f"align has {len(self.align)} entries for {len(self.columns)} columns"
            )
        for a in self.align:
            if a not in ("<", ">", "^"):
                raise ValueError(f"invalid alignment {a!r}; use '<', '>' or '^'")

    def add_row(self, cells: Iterable[object]) -> None:
        """Append a row; cells are stringified with ``str``."""
        row = [str(c) for c in cells]
        if len(row) != len(self.columns):
            raise ValueError(f"row has {len(row)} cells for {len(self.columns)} columns")
        self.rows.append(row)

    def add_rows(self, rows: Iterable[Iterable[object]]) -> None:
        """Append multiple rows."""
        for row in rows:
            self.add_row(row)

    def _widths(self) -> list[int]:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        return widths

    def render(self) -> str:
        """Render the table to a string (no trailing newline)."""
        widths = self._widths()
        lines: list[str] = []
        if self.title:
            lines.append(self.title)
            lines.append("=" * max(len(self.title), sum(widths) + 3 * (len(widths) - 1)))
        header = " | ".join(
            f"{c:{a}{w}}" for c, a, w in zip(self.columns, self.align, widths)
        )
        lines.append(header.rstrip())
        lines.append("-+-".join("-" * w for w in widths))
        for row in self.rows:
            line = " | ".join(f"{c:{a}{w}}" for c, a, w in zip(row, self.align, widths))
            lines.append(line.rstrip())
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience alias
        return self.render()


def render_series(
    name: str,
    xs: Sequence[float],
    series: dict[str, Sequence[float]],
    x_label: str = "x",
    fmt: Callable[[float], str] = lambda v: f"{v:.6g}",
) -> str:
    """Render one or more named series against a shared x-axis as a table.

    Used by figure benchmarks to print the exact data points a plot would
    contain, which keeps the reproduction inspectable in a terminal.
    """
    table = Table([x_label, *series.keys()], align=[">"] * (1 + len(series)), title=name)
    for i, x in enumerate(xs):
        table.add_row([fmt(x), *(fmt(series[k][i]) for k in series)])
    return table.render()
