"""Shared utilities: RNG plumbing, validation, tables, serialization."""

from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.validation import (
    check_fraction,
    check_in_range,
    check_positive,
    check_positive_int,
    check_probability,
)
from repro.utils.formatting import Table, format_count, format_float
from repro.utils.serialization import to_jsonable, dumps, loads

__all__ = [
    "ensure_rng",
    "spawn_rngs",
    "check_fraction",
    "check_in_range",
    "check_positive",
    "check_positive_int",
    "check_probability",
    "Table",
    "format_count",
    "format_float",
    "to_jsonable",
    "dumps",
    "loads",
]
