"""JSON round-tripping for configuration and result objects.

Experiment drivers persist their outputs (sample-size tables, CI traces) as
JSON so EXPERIMENTS.md entries can be regenerated and diffed.  This module
converts the dataclass/numpy-rich objects used across the library into plain
JSON-compatible structures.
"""

from __future__ import annotations

import dataclasses
import datetime
import enum
import json
import pathlib
from typing import Any

import numpy as np

__all__ = ["to_jsonable", "dumps", "loads"]


def to_jsonable(obj: Any) -> Any:
    """Recursively convert ``obj`` into JSON-serializable builtins.

    Supported inputs: dataclasses (converted field-by-field so nested numpy
    values are handled), objects exposing a ``__jsonable__()`` hook (e.g.
    lazily-materialized evaluation results), enums (by value), datetimes
    and dates (ISO-8601 strings — the form journal records use for their
    ``recorded_at`` stamps), :class:`pathlib.Path` objects (plain strings),
    numpy scalars and arrays, sets, mappings and sequences.  Unknown
    objects raise ``TypeError`` rather than being silently stringified.
    """
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if hasattr(obj, "__jsonable__"):
        return to_jsonable(obj.__jsonable__())
    if isinstance(obj, enum.Enum):
        return to_jsonable(obj.value)
    if isinstance(obj, (datetime.datetime, datetime.date)):
        return obj.isoformat()
    if isinstance(obj, pathlib.PurePath):
        return str(obj)
    if isinstance(obj, (np.bool_,)):
        return bool(obj)
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    if isinstance(obj, np.ndarray):
        return [to_jsonable(v) for v in obj.tolist()]
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: to_jsonable(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
    if isinstance(obj, dict):
        return {str(k): to_jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [to_jsonable(v) for v in obj]
    if isinstance(obj, (set, frozenset)):
        return sorted(to_jsonable(v) for v in obj)
    raise TypeError(f"cannot serialize object of type {type(obj).__name__}")


def dumps(obj: Any, *, indent: int | None = 2) -> str:
    """Serialize ``obj`` (after :func:`to_jsonable`) to a JSON string."""
    return json.dumps(to_jsonable(obj), indent=indent, sort_keys=True)


def loads(text: str) -> Any:
    """Parse a JSON string produced by :func:`dumps`."""
    return json.loads(text)
