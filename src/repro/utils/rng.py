"""Deterministic random-number-generator plumbing.

Every stochastic component in this library accepts a ``seed`` argument that
may be ``None``, an integer, or an already-constructed
:class:`numpy.random.Generator`.  :func:`ensure_rng` normalizes all three
forms into a ``Generator`` so call sites never touch numpy's legacy global
state, and experiments stay reproducible end to end.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["ensure_rng", "spawn_rngs", "SeedLike"]

#: Accepted forms for a seed argument.
SeedLike = "int | np.random.Generator | np.random.SeedSequence | None"


def ensure_rng(seed=None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` (fresh OS entropy), an ``int``, a
        :class:`numpy.random.SeedSequence`, or an existing ``Generator``
        (returned unchanged so generator state can be threaded through a
        pipeline).

    Examples
    --------
    >>> rng = ensure_rng(0)
    >>> ensure_rng(rng) is rng
    True
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    if seed is None or isinstance(seed, (int, np.integer)):
        return np.random.default_rng(seed)
    raise TypeError(
        f"seed must be None, an int, a SeedSequence or a Generator, got {type(seed).__name__}"
    )


def spawn_rngs(seed, n: int) -> Sequence[np.random.Generator]:
    """Create ``n`` statistically independent generators from one seed.

    Uses :class:`numpy.random.SeedSequence` spawning, so child streams do
    not overlap regardless of how many draws each consumes.  Useful for
    running Monte-Carlo replicates in a reproducible yet independent way.

    Parameters
    ----------
    seed:
        Any value accepted by :func:`ensure_rng`, except an existing
        ``Generator`` (whose internal seed sequence is not recoverable).
    n:
        Number of independent generators to create (``n >= 0``).
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if isinstance(seed, np.random.Generator):
        # Derive children by drawing entropy from the generator itself.
        seeds = seed.integers(0, 2**63 - 1, size=n)
        return [np.random.default_rng(int(s)) for s in seeds]
    ss = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in ss.spawn(n)]
