"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the individual failure modes.

The hierarchy mirrors the system layers described in ``DESIGN.md``:

* DSL / script parsing errors (:class:`ParseError`, :class:`ScriptError`);
* statistical configuration errors (:class:`InvalidParameterError`,
  :class:`InfeasibleConditionError`);
* CI runtime errors (:class:`TestsetExhaustedError`,
  :class:`TestsetSizeError`, :class:`EngineStateError`);
* durable-state errors (:class:`PersistenceError`);
* fleet admission errors (:class:`AdmissionError` and its typed
  rejections — load shed at the gateway door, never mid-pipeline);
* labeling errors (:class:`LabelBudgetExceededError`).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ParseError",
    "LexerError",
    "SyntaxParseError",
    "SemanticError",
    "ScriptError",
    "InvalidParameterError",
    "InfeasibleConditionError",
    "TestsetExhaustedError",
    "TestsetSizeError",
    "EngineStateError",
    "PersistenceError",
    "SnapshotCorruptError",
    "AdmissionError",
    "FleetOverloadedError",
    "TenantQuotaExceededError",
    "TenantQuarantinedError",
    "StorageExhaustedError",
    "UnknownTenantError",
    "LabelBudgetExceededError",
    "SimulationError",
]


class ReproError(Exception):
    """Base class for every exception raised by :mod:`repro`."""


class ParseError(ReproError):
    """Base class for errors raised while parsing the condition DSL.

    Parameters
    ----------
    message:
        Human-readable description of the problem.
    position:
        Zero-based character offset in the source string where the error was
        detected, or ``None`` when the offset is unknown.
    source:
        The text being parsed, used to render a caret diagnostic.
    """

    def __init__(self, message: str, position: int | None = None, source: str | None = None):
        self.position = position
        self.source = source
        super().__init__(self._render(message))

    def _render(self, message: str) -> str:
        if self.position is None or self.source is None:
            return message
        line = self.source.splitlines() or [""]
        # The DSL is single-line; clamp the caret into range for safety.
        caret = min(max(self.position, 0), len(line[0]))
        return f"{message}\n  {line[0]}\n  {' ' * caret}^ (at offset {self.position})"


class LexerError(ParseError):
    """An unrecognized character or malformed literal in the condition text."""


class SyntaxParseError(ParseError):
    """The token stream does not match the Appendix A.1 grammar."""


class SemanticError(ParseError):
    """The condition parses but violates a semantic rule.

    Examples: an empty conjunction, a tolerance outside ``(0, 1)``, or an
    expression that references no variable (so its value is a constant and
    testing it is vacuous).
    """


class ScriptError(ReproError):
    """A ``.travis.yml``-style script is malformed or fails validation."""


class InvalidParameterError(ReproError, ValueError):
    """A statistical parameter is outside its valid domain.

    Raised for example when ``delta`` is not in ``(0, 1)``, a tolerance is
    non-positive, or a variance bound ``p`` exceeds the variable's range.
    """


class InfeasibleConditionError(ReproError):
    """No finite testset can satisfy the requested guarantee.

    This happens for degenerate requests such as a zero error tolerance, or
    pattern optimizations whose preconditions exclude the supplied formula.
    """


class TestsetExhaustedError(ReproError):
    """The testset's statistical budget is spent; a fresh testset is needed.

    The CI engine raises this when a commit arrives after the *new testset
    alarm* has fired (Section 2.3 of the paper) and no replacement testset
    has been installed.
    """

    __test__ = False  # keep pytest from collecting the class


class TestsetSizeError(ReproError):
    """The provided testset is smaller than the sample-size estimate."""

    __test__ = False


class EngineStateError(ReproError):
    """An operation is invalid in the engine's current lifecycle state."""


class PersistenceError(ReproError):
    """Durable CI state cannot be saved, loaded or replayed.

    Raised by the snapshot/journal subsystem (:mod:`repro.ci.persistence`)
    for unreadable state directories, unsupported snapshot format versions,
    corrupt (non-trailing) journal records, and journal replays whose
    commit sequence does not line up with the restored repository.
    """


class SnapshotCorruptError(PersistenceError):
    """A stored snapshot is unreadable: truncated, bit-rotted, or torn.

    Distinct from the broader :class:`PersistenceError` because
    corruption of one snapshot *file* is recoverable —
    :meth:`~repro.ci.persistence.SnapshotStore.load_latest` quarantines
    the corrupt generation and falls back to an older one, extending
    journal replay accordingly — whereas a format-version mismatch or a
    journal/snapshot disagreement is not.
    """


class AdmissionError(ReproError):
    """A fleet gateway refused a submission *at the door*.

    Admission control sheds load before anything is enqueued or
    evaluated: a rejected submission spends no statistical budget, writes
    no durable state, and can safely be retried.  Every rejection carries
    a ``retry_after_seconds`` hint for the caller's backoff.

    Subclasses distinguish the three rejection reasons — fleet-wide
    overload, a per-tenant quota, and a quarantined (circuit-broken)
    tenant — so webhook front-ends can map them to distinct HTTP-style
    responses.
    """

    def __init__(self, message: str, *, retry_after_seconds: float = 1.0):
        self.retry_after_seconds = float(retry_after_seconds)
        super().__init__(message)


class FleetOverloadedError(AdmissionError):
    """The fleet's total intake backlog is at capacity.

    Raised by :meth:`repro.fleet.CIFleet.enqueue` when the sum of
    pending submissions across *all* tenants has reached the admission
    policy's ``max_pending_total`` — global backpressure, independent of
    which tenant is asking.
    """


class TenantQuotaExceededError(AdmissionError):
    """One tenant's intake backlog is at its per-tenant quota.

    A hot tenant is throttled individually (``max_pending_per_tenant``)
    before it can consume the fleet-wide budget and starve its
    neighbors.
    """

    def __init__(
        self, message: str, *, tenant: str, retry_after_seconds: float = 1.0
    ):
        self.tenant = tenant
        super().__init__(message, retry_after_seconds=retry_after_seconds)


class TenantQuarantinedError(AdmissionError):
    """The tenant's circuit breaker is open: it failed repeatedly.

    Submissions are rejected at the door until the breaker's cooldown
    elapses and a half-open probe succeeds; ``retry_after_seconds`` is
    the remaining cooldown.  The rest of the fleet keeps serving.
    """

    def __init__(
        self, message: str, *, tenant: str, retry_after_seconds: float = 1.0
    ):
        self.tenant = tenant
        super().__init__(message, retry_after_seconds=retry_after_seconds)


class StorageExhaustedError(AdmissionError):
    """Durable storage is at its hard watermark: degraded read-only mode.

    Raised before anything is written — the rejected commit/submission
    spends no statistical budget, mutates no repository history, and
    half-writes nothing durable.  Inspection (``repro ops``,
    ``repro fleet``, fsck) and restore keep working; the mode clears
    itself once compaction/pruning (or an operator) brings the state
    directory back under the watermark, so the error is retryable —
    ``retry_after_seconds`` carries the backoff hint.  ``tenant`` is set
    when a fleet gateway rejected one tenant's submission (the rest of
    the fleet keeps serving).
    """

    def __init__(
        self,
        message: str,
        *,
        tenant: str | None = None,
        retry_after_seconds: float = 1.0,
    ):
        self.tenant = tenant
        super().__init__(message, retry_after_seconds=retry_after_seconds)


class UnknownTenantError(ReproError):
    """The fleet has no tenant registered under the requested id."""


class LabelBudgetExceededError(ReproError):
    """An active-labeling step requested more labels than the pool holds."""


class SimulationError(ReproError):
    """A Monte-Carlo simulation was configured inconsistently."""
