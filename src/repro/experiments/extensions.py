"""E9: quantifying the extension features (ours, beyond the paper).

Three studies over the §2.2 "future extensions" implemented in
:mod:`repro.core.extensions` and :mod:`repro.stats.stratified`:

* **stratified sampling** — combined-tolerance improvement of the
  optimized allocation over proportional sampling as skew grows (the
  paper's "stratified samples for skewed cases" remark, quantified);
* **metric sensitivity tax** — testset sizes for macro-F1 conditions vs.
  plain accuracy as class skew grows (why "beyond accuracy" is costly and
  where stratification becomes necessary);
* **drift-monitor budgeting** — labels per monitoring period as the
  horizon grows (logarithmic, like every union bound in this paper).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.extensions.metrics import (
    AccuracyMetric,
    MacroF1Metric,
    MetricCondition,
    MetricTester,
)
from repro.stats.stratified import StratumSpec, plan_stratified

__all__ = [
    "StratifiedRow",
    "MetricTaxRow",
    "DriftBudgetRow",
    "run_stratified_ablation",
    "run_metric_tax",
    "run_drift_budget",
]


@dataclass(frozen=True)
class StratifiedRow:
    """Tolerance comparison at one skew level and label budget."""

    rare_weight: float
    total_samples: int
    proportional_tolerance: float
    optimized_tolerance: float

    @property
    def improvement(self) -> float:
        return self.proportional_tolerance / self.optimized_tolerance


def run_stratified_ablation(
    *,
    rare_weights: tuple[float, ...] = (0.5, 0.2, 0.1, 0.05, 0.01),
    total_samples: int = 10_000,
    delta: float = 0.01,
) -> list[StratifiedRow]:
    """Two-stratum worlds with growing skew, macro-averaged target.

    The target statistic weights both strata equally (the macro-F1 /
    per-class-recall situation the paper's "skewed cases" remark is
    about); proportional sampling starves the rare stratum while the
    optimized allocation splits the budget by target weight.
    """
    rows = []
    macro = (0.5, 0.5)
    for rare in rare_weights:
        strata = [StratumSpec("common", 1.0 - rare), StratumSpec("rare", rare)]
        proportional = plan_stratified(
            strata, total_samples, delta, allocation="proportional",
            target_weights=macro,
        )
        optimized = plan_stratified(
            strata, total_samples, delta, allocation="optimized",
            target_weights=macro,
        )
        rows.append(
            StratifiedRow(
                rare_weight=rare,
                total_samples=total_samples,
                proportional_tolerance=proportional.combined_tolerance,
                optimized_tolerance=optimized.combined_tolerance,
            )
        )
    return rows


@dataclass(frozen=True)
class MetricTaxRow:
    """Sample-size tax of a macro-F1 condition vs. accuracy."""

    min_class_fraction: float
    accuracy_samples: int
    f1_samples: int

    @property
    def tax(self) -> float:
        return self.f1_samples / self.accuracy_samples


def run_metric_tax(
    *,
    min_class_fractions: tuple[float, ...] = (0.25, 0.1, 0.05, 0.02),
    n_classes: int = 4,
    tolerance: float = 0.02,
    delta: float = 1e-3,
) -> list[MetricTaxRow]:
    """McDiarmid sizing for macro-F1 vs accuracy across skew levels."""
    accuracy_n = MetricTester(
        MetricCondition(AccuracyMetric(), ">", 0.8, tolerance), delta=delta
    ).sample_size()
    rows = []
    for alpha in min_class_fractions:
        f1_n = MetricTester(
            MetricCondition(
                MacroF1Metric(n_classes=n_classes, min_class_fraction=alpha),
                ">",
                0.8,
                tolerance,
            ),
            delta=delta,
        ).sample_size()
        rows.append(
            MetricTaxRow(
                min_class_fraction=alpha,
                accuracy_samples=accuracy_n,
                f1_samples=f1_n,
            )
        )
    return rows


@dataclass(frozen=True)
class DriftBudgetRow:
    """Per-period labels as the monitoring horizon grows."""

    periods: int
    samples_per_period: int
    total_samples: int


def run_drift_budget(
    *,
    horizons: tuple[int, ...] = (4, 12, 52, 365),
    tolerance: float = 0.02,
    delta: float = 0.01,
) -> list[DriftBudgetRow]:
    """Drift-monitor label budgets for monthly/weekly/daily horizons."""
    from repro.core.extensions.drift import DriftMonitor
    from repro.ml.models.base import FixedPredictionModel
    import numpy as np

    dummy = FixedPredictionModel(np.zeros(1, dtype=int))
    rows = []
    for periods in horizons:
        monitor = DriftMonitor(
            dummy, threshold=0.8, tolerance=tolerance, delta=delta, periods=periods
        )
        per_period = monitor.samples_per_period
        rows.append(
            DriftBudgetRow(
                periods=periods,
                samples_per_period=per_period,
                total_samples=per_period * periods,
            )
        )
    return rows
