"""Figure 4 (E3): estimated vs. empirical error of the estimators.

The paper runs GoogLeNet (~98% accurate) on infinite MNIST, repeatedly
draws testsets of size ``n``, and compares the estimation error the bounds
*predict* against the error actually *observed* (the gap between the
``delta`` and ``1 - delta`` quantiles of the measured accuracies).  Both
the baseline (Hoeffding) and optimized (Bennett, assuming an upper bound
``p`` on the variance) tolerances must dominate the empirical error, with
Bennett much closer to it — that is Figure 4's message.

Substitution: the CNN is replaced by a calibrated Bernoulli correctness
process at exactly 98% accuracy over an unbounded synthetic stream (see
``repro/ml/datasets/mnist_like.py``); the statistics exercised are
identical.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.stats.inequalities import BennettInequality, HoeffdingInequality
from repro.stats.simulation import coverage_experiment_grid

__all__ = ["Figure4Point", "run_figure4"]


@dataclass(frozen=True)
class Figure4Point:
    """One (sample size, variance bound) cell of the comparison.

    Attributes
    ----------
    n_samples:
        Testset size per replicate.
    variance_bound:
        The assumed upper bound ``p`` on ``E[(correct - mean)^2]``; the
        true value at 98% accuracy is ``0.98 * 0.02 = 0.0196``.
    hoeffding_epsilon:
        Tolerance the baseline bound predicts at this ``n``.
    bennett_epsilon:
        Tolerance the optimized bound predicts given ``p``.
    empirical_error:
        The ``1 - delta`` quantile of the observed absolute estimation
        errors (the Monte-Carlo ground truth).
    """

    n_samples: int
    variance_bound: float
    hoeffding_epsilon: float
    bennett_epsilon: float
    empirical_error: float

    @property
    def hoeffding_valid(self) -> bool:
        """Baseline bound dominates the empirical error."""
        return self.hoeffding_epsilon >= self.empirical_error

    @property
    def bennett_valid(self) -> bool:
        """Optimized bound dominates the empirical error."""
        return self.bennett_epsilon >= self.empirical_error


def run_figure4(
    *,
    true_accuracy: float = 0.98,
    sample_sizes: tuple[int, ...] = (500, 1000, 2000, 5000, 10_000, 20_000),
    variance_bounds: tuple[float, ...] = (0.05, 0.1),
    delta: float = 1e-3,
    n_replicates: int = 20_000,
    seed: int = 42,
) -> list[Figure4Point]:
    """Monte-Carlo comparison of predicted vs. observed error.

    Both bounds are evaluated two-sided, matching the quantile-gap
    empirical measurement.  ``variance_bounds`` must be valid upper bounds
    for the true Bernoulli variance (0.0196 at 98%) or Bennett's claim to
    validity is void.
    """
    hoeffding = HoeffdingInequality(value_range=1.0, two_sided=True)
    h_epsilons = [hoeffding.epsilon(n, delta) for n in sample_sizes]
    # The empirical quantile error only depends on (n, delta), so one
    # Monte-Carlo sweep — all replicates of all sizes drawn as a single
    # RNG batch — serves every variance-bound column.
    reports = coverage_experiment_grid(
        true_accuracy=true_accuracy,
        sample_sizes=sample_sizes,
        predicted_epsilons=h_epsilons,
        delta=delta,
        n_replicates=n_replicates,
        seed=seed,
    )
    points: list[Figure4Point] = []
    for p in variance_bounds:
        bennett = BennettInequality(variance_bound=p, two_sided=True)
        for i, n in enumerate(sample_sizes):
            points.append(
                Figure4Point(
                    n_samples=n,
                    variance_bound=p,
                    hoeffding_epsilon=h_epsilons[i],
                    bennett_epsilon=bennett.epsilon(n, delta),
                    empirical_error=reports[i].empirical_quantile_error,
                )
            )
    return points


def run_figure4_paired(
    *,
    true_gain: float = 0.01,
    disagreement_rate: float = 0.08,
    variance_bound: float = 0.1,
    sample_sizes: tuple[int, ...] = (2000, 5000, 10_000, 30_000),
    delta: float = 1e-3,
    n_replicates: int = 20_000,
    seed: int = 7,
) -> list[Figure4Point]:
    """The paired-difference companion to :func:`run_figure4`.

    Validates the estimator the Section 4 optimizations actually rely on:
    the paired gain ``n - o`` under a disagreement rate bounded by
    ``variance_bound``.  The baseline comparator is Hoeffding on the
    *paired* variable (range 2), i.e. the tightest thing the §3 machinery
    could do on the same data.
    """
    from repro.stats.simulation import paired_coverage_experiment

    hoeffding = HoeffdingInequality(value_range=2.0, two_sided=True)
    bennett = BennettInequality(variance_bound=variance_bound, two_sided=True)
    points: list[Figure4Point] = []
    for i, n in enumerate(sample_sizes):
        b_eps = bennett.epsilon(n, delta)
        report = paired_coverage_experiment(
            true_gain=true_gain,
            disagreement_rate=disagreement_rate,
            n_samples=n,
            predicted_epsilon=b_eps,
            delta=delta,
            n_replicates=n_replicates,
            seed=seed + i,
        )
        points.append(
            Figure4Point(
                n_samples=n,
                variance_bound=variance_bound,
                hoeffding_epsilon=hoeffding.epsilon(n, delta),
                bennett_epsilon=b_eps,
                empirical_error=report.empirical_quantile_error,
            )
        )
    return points
