"""Run every experiment and persist JSON artifacts.

``python -m repro experiments --output results/`` executes the E1–E9
drivers and writes one JSON file per experiment plus a ``summary.json``
with headline agreement checks.  The artifacts are plain JSON (via
:mod:`repro.utils.serialization`) so reproduction records can be diffed
across library versions.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable

from repro.utils.serialization import dumps

__all__ = ["ExperimentRecord", "run_all"]


@dataclass(frozen=True)
class ExperimentRecord:
    """One persisted experiment artifact."""

    experiment_id: str
    description: str
    path: Path


def _experiments(quick: bool) -> list[tuple[str, str, Callable[[], Any]]]:
    """The (id, description, runner) registry.

    ``quick`` shrinks the Monte-Carlo workloads (used by tests); the
    default sizes match the benchmark harness.
    """
    from repro.experiments import (
        ablations,
        extensions,
        figure2,
        figure3,
        figure4,
        figure5,
        figure6,
        intext,
        practicality,
    )

    replicates = 2_000 if quick else 20_000

    return [
        ("E1-figure2", "baseline sample-size table", figure2.run_figure2),
        (
            "E2-figure3",
            "label-complexity sweeps",
            lambda: {
                "epsilon": figure3.sweep_epsilon(),
                "variance_bound": figure3.sweep_variance_bound(),
                "delta": figure3.sweep_delta(),
            },
        ),
        (
            "E3-figure4",
            "bound-vs-empirical validity",
            lambda: figure4.run_figure4(n_replicates=replicates),
        ),
        ("E4-figure5", "SemEval CI traces", figure5.run_figure5),
        ("E5-figure6", "accuracy evolution", figure6.run_figure6),
        ("E6-intext", "in-text claims", intext.run_intext),
        (
            "E7-practicality",
            "labeling-effort arithmetic",
            lambda: {
                "budgets": practicality.run_budget_analysis(),
                "cheap_mode": practicality.run_cheap_mode(),
                "active_effort": practicality.run_active_labeling_effort(),
            },
        ),
        (
            "E8-ablations",
            "design-choice ablations",
            lambda: {
                "reusable_vs_disposable": ablations.run_reusable_vs_disposable(),
                "allocation": ablations.run_allocation_ablation(),
                "tight_bounds": ablations.run_tight_bound_ablation(),
                "adaptive_attack": ablations.run_adaptive_attack(
                    n_replicates=2 if quick else 8
                ),
            },
        ),
        (
            "E9-extensions",
            "extension studies",
            lambda: {
                "stratified": extensions.run_stratified_ablation(),
                "metric_tax": extensions.run_metric_tax(),
                "drift_budget": extensions.run_drift_budget(),
                "figure4_paired": figure4.run_figure4_paired(
                    n_replicates=replicates
                ),
            },
        ),
    ]


def run_all(output_dir: str | Path, *, quick: bool = False) -> list[ExperimentRecord]:
    """Execute every experiment, writing one JSON artifact each.

    Parameters
    ----------
    output_dir:
        Directory for the artifacts (created if missing).
    quick:
        Shrink Monte-Carlo workloads for fast smoke runs.

    Returns
    -------
    list[ExperimentRecord]
        One record per written artifact (summary.json excluded).
    """
    output = Path(output_dir)
    output.mkdir(parents=True, exist_ok=True)
    records: list[ExperimentRecord] = []
    summary: dict[str, Any] = {}
    for experiment_id, description, runner in _experiments(quick):
        result = runner()
        path = output / f"{experiment_id}.json"
        path.write_text(dumps(result))
        records.append(
            ExperimentRecord(
                experiment_id=experiment_id, description=description, path=path
            )
        )
        summary[experiment_id] = description

    # Headline agreement checks folded into the summary.
    from repro.experiments.figure2 import PAPER_FIGURE2, run_figure2
    from repro.experiments.intext import run_intext

    figure2_exact = all(
        (r.f1_none, r.f1_full, r.f2_none, r.f2_full)
        == PAPER_FIGURE2[(r.reliability, r.tolerance)]
        for r in run_figure2()
    )
    intext_claims = run_intext()
    summary["checks"] = {
        "figure2_all_cells_exact": figure2_exact,
        "intext_claims_total": len(intext_claims),
        "intext_claims_matching": sum(c.matches for c in intext_claims),
    }
    (output / "summary.json").write_text(dumps(summary))
    return records
