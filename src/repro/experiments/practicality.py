"""E7: the §2.3 practicality analysis and §4.1.2 labeling arithmetic.

Three claims are quantified:

1. "30,000 to 60,000 is what 2 to 4 engineers can label in a day (8
   hours) at a rate of 2 seconds per label" — the per-testset budget that
   defines "practical";
2. the "cheap mode": relaxing the tolerance by one or two points cuts the
   label bill by roughly 10x;
3. §4.1.2: with active labeling at 5 s/label, the 2,188 fresh labels a
   daily commit needs cost about 3 hours of one labeler's day.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.estimators.api import SampleSizeEstimator
from repro.ml.labeling import LabelingCostModel

__all__ = [
    "PracticalityBudget",
    "CheapModeRow",
    "run_budget_analysis",
    "run_cheap_mode",
    "run_active_labeling_effort",
]


@dataclass(frozen=True)
class PracticalityBudget:
    """Labels-per-day capacity of labeling teams (§2.3)."""

    team_size: int
    seconds_per_label: float
    hours_per_day: float
    labels_per_day: int


def run_budget_analysis() -> list[PracticalityBudget]:
    """Capacity of 2–4 engineer teams at 2 s/label, 8 h days."""
    out = []
    for team in (2, 3, 4):
        model = LabelingCostModel(seconds_per_label=2.0, team_size=team)
        out.append(
            PracticalityBudget(
                team_size=team,
                seconds_per_label=2.0,
                hours_per_day=8.0,
                labels_per_day=model.labels_per_day(),
            )
        )
    return out


@dataclass(frozen=True)
class CheapModeRow:
    """Label cost at a relaxed tolerance, relative to the strict one."""

    tolerance: float
    labels: int
    reduction_vs_strict: float


def run_cheap_mode(
    *,
    condition_template: str = "n - o > 0.02 +/- {eps}",
    strict_tolerance: float = 0.01,
    relaxed_tolerances: tuple[float, ...] = (0.02, 0.025, 0.03),
    delta: float = 1e-4,
    steps: int = 32,
) -> list[CheapModeRow]:
    """The "cheap mode": +1–2 points of tolerance → ~10x fewer labels."""
    estimator = SampleSizeEstimator(optimizations="none")

    def labels(eps: float) -> int:
        return estimator.plan(
            condition_template.format(eps=eps),
            delta=delta,
            adaptivity="none",
            steps=steps,
        ).samples

    strict = labels(strict_tolerance)
    rows = [CheapModeRow(tolerance=strict_tolerance, labels=strict, reduction_vs_strict=1.0)]
    for eps in relaxed_tolerances:
        relaxed = labels(eps)
        rows.append(
            CheapModeRow(
                tolerance=eps,
                labels=relaxed,
                reduction_vs_strict=strict / relaxed,
            )
        )
    return rows


@dataclass(frozen=True)
class ActiveLabelingEffort:
    """§4.1.2: daily human cost of active labeling."""

    labels_per_commit: int
    seconds_per_label: float
    hours_per_day: float


def run_active_labeling_effort(
    labels_per_commit: int = 2_188, seconds_per_label: float = 5.0
) -> ActiveLabelingEffort:
    """Hours per day to keep up with one commit per day (paper: ~3 h)."""
    model = LabelingCostModel(seconds_per_label=seconds_per_label)
    effort = model.effort(labels_per_commit)
    return ActiveLabelingEffort(
        labels_per_commit=labels_per_commit,
        seconds_per_label=seconds_per_label,
        hours_per_day=effort.person_hours,
    )
