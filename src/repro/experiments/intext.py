"""E6: every in-text sample-size claim, computed and compared.

The paper scatters numeric claims through Sections 1, 3, 4 and 5.2; this
module recomputes each with the library's public API and pairs it with the
printed value.  Agreement here is the strongest evidence that the
estimator conventions (one-sided Hoeffding per variable, two-sided Bennett
on paired differences, the delta-splitting order) match the authors'.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.estimators.api import SampleSizeEstimator
from repro.stats.inequalities import BennettInequality

__all__ = ["InTextClaim", "run_intext"]


@dataclass(frozen=True)
class InTextClaim:
    """One recomputed claim.

    Attributes
    ----------
    source:
        Where in the paper the number appears.
    description:
        What the number means.
    paper_value:
        The printed value.
    computed_value:
        Our recomputation (real-valued where the paper rounded).
    matches:
        Whether ``round``/``ceil`` of the computation hits the printed
        value (tolerating the paper's mixed rounding conventions: a claim
        matches when the printed integer is within 1 of the real value).
    """

    source: str
    description: str
    paper_value: float
    computed_value: float

    @property
    def matches(self) -> bool:
        return abs(self.computed_value - self.paper_value) <= 1.0


def run_intext() -> list[InTextClaim]:
    """Recompute all in-text claims."""
    baseline = SampleSizeEstimator(optimizations="none")
    optimized = SampleSizeEstimator()
    claims: list[InTextClaim] = []

    def add(source: str, description: str, paper: float, computed: float) -> None:
        claims.append(
            InTextClaim(
                source=source,
                description=description,
                paper_value=paper,
                computed_value=computed,
            )
        )

    # §1: single (eps=0.01, delta=1e-4) estimate via Hoeffding: "more than 46K".
    add(
        "§1",
        "one model, eps=0.01, 0.9999 reliability (Hoeffding)",
        46_052,
        baseline.plan(
            "n > 0.5 +/- 0.01", delta=1e-4, adaptivity="none", steps=1
        ).samples_real,
    )
    # §1: "63K labels for 32 models in a non-adaptive fashion".
    add(
        "§1",
        "32 models non-adaptive, eps=0.01",
        63_381,
        baseline.plan(
            "n > 0.5 +/- 0.01", delta=1e-4, adaptivity="none", steps=32
        ).samples_real,
    )
    # §1: "156K labels in a fully adaptive fashion".
    add(
        "§1",
        "32 models fully adaptive, eps=0.01",
        156_956,
        baseline.plan(
            "n > 0.5 +/- 0.01", delta=1e-4, adaptivity="full", steps=32
        ).samples_real,
    )
    # §3.3: n > 0.8 +/- 0.05, delta=1e-4, H=32 fully adaptive -> 6,279.
    add(
        "§3.3",
        "F :- n > 0.8 +/- 0.05, fully adaptive, H=32",
        6_279,
        baseline.plan(
            "n > 0.8 +/- 0.05", delta=1e-4, adaptivity="full", steps=32
        ).samples_real,
    )
    # §3.3: the same at eps=0.01 "blows up to 156,955".
    add(
        "§3.3",
        "F :- n > 0.8 +/- 0.01, fully adaptive, H=32",
        156_955,
        baseline.plan(
            "n > 0.8 +/- 0.01", delta=1e-4, adaptivity="full", steps=32
        ).samples_real,
    )
    # §4.1.1: hierarchical testing at p=0.1 — 29K non-adaptive.
    pattern1 = "d < 0.1 +/- 0.01 /\\ n - o > 0.02 +/- 0.01"
    add(
        "§4.1.1",
        "Pattern 1 labels, 32 non-adaptive steps, p=0.1, eps=0.01",
        29_048,
        optimized.plan(
            pattern1, delta=1e-4, adaptivity="none", steps=32
        ).samples_real,
    )
    # §4.1.1: 67K fully adaptive.
    add(
        "§4.1.1",
        "Pattern 1 labels, 32 fully-adaptive steps, p=0.1, eps=0.01",
        67_706,
        optimized.plan(
            pattern1, delta=1e-4, adaptivity="full", steps=32
        ).samples_real,
    )
    # §4.1.2: active labeling — 2,188 labels per commit (per-step delta).
    bennett = BennettInequality(variance_bound=0.1, two_sided=True)
    per_testset = bennett.sample_size(0.01, 1e-4 / 2.0)  # ln(4/delta) form
    add(
        "§4.1.2",
        "active labeling: fresh labels per commit at p=0.1, eps=0.01",
        2_188,
        per_testset * 0.1,
    )
    # §5.2: Hoeffding needs > 44,268 for the SemEval query.
    add(
        "§5.2",
        "SemEval baseline (Hoeffding), eps=0.02, delta=0.002, H=7",
        44_268,
        baseline.plan(
            "n - o > 0.02 +/- 0.02", delta=0.002, adaptivity="none", steps=7
        ).samples_real,
    )
    # §5.2: "grows to up to 58K in the fully adaptive case".
    add(
        "§5.2",
        "SemEval baseline fully adaptive",
        58_799,
        baseline.plan(
            "n - o > 0.02 +/- 0.02", delta=0.002, adaptivity="full", steps=7
        ).samples_real,
    )
    # Figure 5: 4,713 and 5,204 with the known 10% difference bound.
    add(
        "Fig. 5",
        "non-adaptive SemEval query with p=0.1",
        4_713,
        optimized.plan(
            "n - o > 0.02 +/- 0.02",
            delta=0.002,
            adaptivity="none",
            steps=7,
            known_variance_bound=0.1,
        ).samples_real,
    )
    add(
        "Fig. 5",
        "fully-adaptive SemEval query at eps=0.022",
        5_204,
        optimized.plan(
            "n - o > 0.018 +/- 0.022",
            delta=0.002,
            adaptivity="full",
            steps=7,
            known_variance_bound=0.1,
        ).samples_real,
    )
    # §5.2: the adaptive query at eps=0.02 "would be more than 6K".
    add(
        "§5.2",
        "fully-adaptive SemEval query at eps=0.02",
        6_260,
        optimized.plan(
            "n - o > 0.02 +/- 0.02",
            delta=0.002,
            adaptivity="full",
            steps=7,
            known_variance_bound=0.1,
        ).samples_real,
    )
    return claims
