"""Figure 2 (E1): baseline sample sizes for the use-case conditions.

Regenerates the full table — conditions F1/F4 (single variable) and F2/F3
(accuracy difference), adaptivity none vs. full, reliabilities 0.99 to
0.99999, tolerances 0.1 to 0.01, at ``H = 32`` steps — using the §3
baseline estimator.  The paper flags "impractical" cells in red; we carry
a boolean using the §2.3 practicality budget (60K labels, the top of the
"2–4 engineers for a day" window).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.estimators.api import SampleSizeEstimator

__all__ = [
    "RELIABILITIES",
    "TOLERANCES",
    "Figure2Row",
    "run_figure2",
]

#: The 1 - delta grid of the paper's table.
RELIABILITIES: tuple[float, ...] = (0.99, 0.999, 0.9999, 0.99999)

#: The epsilon grid of the paper's table.
TOLERANCES: tuple[float, ...] = (0.1, 0.05, 0.025, 0.01)

#: Condition templates: F1/F4 reduce to a single [0,1] variable; F2/F3 to
#: the difference of two.  Thresholds are irrelevant to the sample size.
_CONDITION_F1 = "n > 0.8 +/- {eps}"
_CONDITION_F2 = "n - o > 0.02 +/- {eps}"

#: §2.3: 30–60K labels per testset is the acceptable window; above it a
#: cell is flagged impractical (the paper's red entries).
PRACTICALITY_BUDGET = 60_000


@dataclass(frozen=True)
class Figure2Row:
    """One row of the Figure 2 table.

    Attributes
    ----------
    reliability, tolerance:
        Grid coordinates (``1 - delta`` and ``epsilon``).
    f1_none, f1_full:
        F1/F4 sample sizes under non-adaptive / fully-adaptive modes.
    f2_none, f2_full:
        F2/F3 sample sizes likewise.
    """

    reliability: float
    tolerance: float
    f1_none: int
    f1_full: int
    f2_none: int
    f2_full: int

    def impractical(self, budget: int = PRACTICALITY_BUDGET) -> dict[str, bool]:
        """Which cells exceed the practicality budget."""
        return {
            "f1_none": self.f1_none > budget,
            "f1_full": self.f1_full > budget,
            "f2_none": self.f2_none > budget,
            "f2_full": self.f2_full > budget,
        }


def run_figure2(steps: int = 32) -> list[Figure2Row]:
    """Compute the full table with the §3 baseline estimator."""
    estimator = SampleSizeEstimator(optimizations="none")
    rows: list[Figure2Row] = []
    for reliability in RELIABILITIES:
        for eps in TOLERANCES:
            sizes = {}
            for key, template in (("f1", _CONDITION_F1), ("f2", _CONDITION_F2)):
                for adaptivity in ("none", "full"):
                    plan = estimator.plan(
                        template.format(eps=eps),
                        reliability=reliability,
                        adaptivity=adaptivity,
                        steps=steps,
                    )
                    sizes[f"{key}_{adaptivity}"] = plan.samples
            rows.append(
                Figure2Row(
                    reliability=reliability,
                    tolerance=eps,
                    f1_none=sizes["f1_none"],
                    f1_full=sizes["f1_full"],
                    f2_none=sizes["f2_none"],
                    f2_full=sizes["f2_full"],
                )
            )
    return rows


#: The paper's published Figure 2 values, keyed by (reliability, epsilon),
#: in column order (F1 none, F1 full, F2 none, F2 full).  The test suite
#: asserts exact agreement.
PAPER_FIGURE2: dict[tuple[float, float], tuple[int, int, int, int]] = {
    (0.99, 0.1): (404, 1340, 1753, 5496),
    (0.99, 0.05): (1615, 5358, 7012, 21984),
    (0.99, 0.025): (6457, 21429, 28045, 87933),
    (0.99, 0.01): (40355, 133930, 175282, 549581),
    (0.999, 0.1): (519, 1455, 2214, 5957),
    (0.999, 0.05): (2075, 5818, 8854, 23826),
    (0.999, 0.025): (8299, 23271, 35414, 95302),
    (0.999, 0.01): (51868, 145443, 221333, 595633),
    (0.9999, 0.1): (634, 1570, 2674, 6417),
    (0.9999, 0.05): (2536, 6279, 10696, 25668),
    (0.9999, 0.025): (10141, 25113, 42782, 102670),
    (0.9999, 0.01): (63381, 156956, 267385, 641684),
    (0.99999, 0.1): (749, 1685, 3135, 6878),
    (0.99999, 0.05): (2996, 6739, 12538, 27510),
    (0.99999, 0.025): (11983, 26955, 50150, 110038),
    (0.99999, 0.01): (74894, 168469, 313437, 687736),
}
