"""Experiment drivers regenerating every table and figure of the paper.

Each module owns one artifact (see DESIGN.md §3 for the experiment index)
and exposes a ``run_*`` function returning plain dataclasses, which the
``benchmarks/`` harness renders and the test suite asserts on:

=========  ============================================  ==================
module     paper artifact                                id
=========  ============================================  ==================
figure2    Figure 2 sample-size table                    E1
figure3    Figure 3 label-complexity curves              E2
figure4    Figure 4 bound-vs-empirical-error validation  E3
figure5    Figure 5 SemEval CI traces                    E4
figure6    Figure 6 accuracy-evolution series            E5
intext     every in-text sample-size claim               E6
practicality  §2.3 / §4.1.2 labeling-effort arithmetic   E7
ablations  design-choice ablations                       E8
=========  ============================================  ==================
"""

from repro.experiments import (  # noqa: F401 (re-exported submodules)
    ablations,
    extensions,
    figure2,
    figure3,
    figure4,
    figure5,
    figure6,
    intext,
    practicality,
    runner,
)

__all__ = [
    "extensions",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "intext",
    "practicality",
    "ablations",
    "runner",
]
