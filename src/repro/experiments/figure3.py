"""Figure 3 (E2): impact of epsilon, delta and p on label complexity.

Three sweeps over the F5-style condition ``d < p /\\ n - o > c`` with
``H = 32`` non-adaptive steps, each comparing three label costs:

* **baseline** — §3 Hoeffding sizing of the gain clause (267,385 labels at
  one-point tolerance and 0.9999 reliability);
* **optimized** — Pattern 1 Bennett sizing (29,048 labels at ``p = 0.1``,
  the ~10x improvement);
* **active** — fresh labels per commit under active labeling (a further
  factor ``~p``).

Sweep A varies ``epsilon`` at fixed ``(delta, p)``; sweep B varies ``p``
at fixed ``(epsilon, delta)``; sweep C varies ``delta`` at fixed
``(epsilon, p)``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.estimators.api import SampleSizeEstimator

__all__ = ["Figure3Point", "sweep_epsilon", "sweep_variance_bound", "sweep_delta"]

_CONDITION = "d < {p} +/- {eps} /\\ n - o > 0.02 +/- {eps}"


@dataclass(frozen=True)
class Figure3Point:
    """One point on a Figure 3 curve.

    Attributes
    ----------
    epsilon, delta, variance_bound:
        The sweep coordinates (one varies per sweep).
    baseline_labels:
        Hoeffding sizing of the same formula (optimizations off).
    optimized_labels:
        Pattern 1 (Bennett) label requirement.
    active_labels_per_commit:
        Fresh labels per commit under active labeling.
    improvement:
        ``baseline / optimized``.
    """

    epsilon: float
    delta: float
    variance_bound: float
    baseline_labels: int
    optimized_labels: int
    active_labels_per_commit: int
    improvement: float


def _point(eps: float, delta: float, p: float, steps: int) -> Figure3Point:
    condition = _CONDITION.format(p=p, eps=eps)
    baseline = SampleSizeEstimator(optimizations="none").plan(
        condition, delta=delta, adaptivity="none", steps=steps
    )
    optimized = SampleSizeEstimator().plan(
        condition, delta=delta, adaptivity="none", steps=steps
    )
    return Figure3Point(
        epsilon=eps,
        delta=delta,
        variance_bound=p,
        baseline_labels=baseline.samples,
        optimized_labels=optimized.samples,
        active_labels_per_commit=optimized.labels_per_evaluation,
        improvement=baseline.samples / optimized.samples,
    )


def sweep_epsilon(
    *,
    epsilons: tuple[float, ...] = (0.1, 0.05, 0.025, 0.01, 0.005),
    delta: float = 1e-4,
    variance_bound: float = 0.1,
    steps: int = 32,
) -> list[Figure3Point]:
    """Label complexity as the tolerance tightens (the O(1/eps^2) wall)."""
    return [_point(eps, delta, variance_bound, steps) for eps in epsilons]


def sweep_variance_bound(
    *,
    variance_bounds: tuple[float, ...] = (0.05, 0.1, 0.2, 0.3, 0.5),
    epsilon: float = 0.01,
    delta: float = 1e-4,
    steps: int = 32,
) -> list[Figure3Point]:
    """Label complexity as the disagreement cap grows (improvement shrinks)."""
    return [_point(epsilon, delta, p, steps) for p in variance_bounds]


def sweep_delta(
    *,
    deltas: tuple[float, ...] = (1e-2, 1e-3, 1e-4, 1e-5),
    epsilon: float = 0.01,
    variance_bound: float = 0.1,
    steps: int = 32,
) -> list[Figure3Point]:
    """Label complexity as reliability tightens (logarithmic, cheap)."""
    return [_point(epsilon, d, variance_bound, steps) for d in deltas]
