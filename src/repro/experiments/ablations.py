"""E8: ablations over the design choices DESIGN.md calls out.

Five studies:

(i)   **Reusable vs. disposable testsets** under full adaptivity (§3.3):
      one testset sized at ``delta / 2^H`` vs. ``H`` fresh testsets sized
      at ``delta / H`` each.  The reusable strategy wins for every
      practically sized ``H``.
(ii)  **Tolerance allocation**: the closed-form optimal split vs. a naive
      even split, on clauses with asymmetric coefficients.
(iii) **Exact binomial (§4.3) vs. Hoeffding** sizing for single-variable
      clauses: never worse, typically 10–40% better.
(iv)  **Adaptive overfitting**: an honest 1-bit-per-query attacker reuses
      a testset; on a testset sized for a *single* evaluation it drives
      the empirical-vs-true gap far past epsilon, while the ``delta/2^H``
      sizing keeps the gap within epsilon — the empirical justification
      for the exponential union bound.
(v)   **Filter false rejects**: the §4.1.1 unlabeled filter stays within
      its delta/2 false-reject budget even with the true difference
      adversarially close to the threshold.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.estimators.allocation import allocate_tolerances
from repro.core.estimators.api import SampleSizeEstimator
from repro.stats.adaptive import AdaptiveAttacker, ThresholdAttacker
from repro.stats.inequalities import HoeffdingInequality
from repro.stats.tight_bounds import tight_sample_size
from repro.utils.rng import spawn_rngs

__all__ = [
    "ReusableVsDisposable",
    "AllocationAblation",
    "TightBoundRow",
    "AttackOutcome",
    "FilterFalseRejectOutcome",
    "run_reusable_vs_disposable",
    "run_allocation_ablation",
    "run_tight_bound_ablation",
    "run_adaptive_attack",
    "run_filter_false_reject",
]


@dataclass(frozen=True)
class ReusableVsDisposable:
    """(i): label totals of the two fully-adaptive strategies."""

    steps: int
    reusable_total: int
    disposable_total: int

    @property
    def reusable_wins(self) -> bool:
        return self.reusable_total <= self.disposable_total


def run_reusable_vs_disposable(
    *,
    condition: str = "n > 0.8 +/- 0.05",
    delta: float = 1e-4,
    steps_grid: tuple[int, ...] = (4, 8, 16, 32, 64),
) -> list[ReusableVsDisposable]:
    """Compare §3.3's two strategies across testset lifetimes."""
    estimator = SampleSizeEstimator(optimizations="none")
    rows = []
    for steps in steps_grid:
        reusable = estimator.plan(
            condition, delta=delta, adaptivity="full", steps=steps
        ).samples
        disposable = estimator.trivial_fully_adaptive_total(
            condition, delta=delta, steps=steps
        )
        rows.append(
            ReusableVsDisposable(
                steps=steps, reusable_total=reusable, disposable_total=disposable
            )
        )
    return rows


@dataclass(frozen=True)
class AllocationAblation:
    """(ii): optimal vs. even tolerance split for one clause shape."""

    coefficient_ratio: float
    optimal_samples: float
    even_split_samples: float

    @property
    def savings(self) -> float:
        return self.even_split_samples / self.optimal_samples


def run_allocation_ablation(
    *,
    ratios: tuple[float, ...] = (1.0, 1.5, 2.0, 4.0, 8.0),
    epsilon: float = 0.01,
    delta: float = 1e-5,
) -> list[AllocationAblation]:
    """Clause ``n - r*o > c``: even splits waste more as ``r`` grows."""
    rows = []
    for ratio in ratios:
        terms = [("n", 1.0, 1.0, delta), ("o", ratio, 1.0, delta)]
        optimal = allocate_tolerances(terms, epsilon)[0].samples
        # Even split: each term gets epsilon/2; requirement is the max.
        hoeffding = HoeffdingInequality()
        even = max(
            (coef**2) * hoeffding.sample_size(epsilon / 2.0 / 1.0, delta)
            for _, coef, _, _ in terms
        )
        rows.append(
            AllocationAblation(
                coefficient_ratio=ratio,
                optimal_samples=optimal,
                even_split_samples=even,
            )
        )
    return rows


@dataclass(frozen=True)
class TightBoundRow:
    """(iii): exact binomial vs. Hoeffding sample size."""

    epsilon: float
    delta: float
    hoeffding_samples: int
    tight_samples: int

    @property
    def savings_fraction(self) -> float:
        return 1.0 - self.tight_samples / self.hoeffding_samples


def run_tight_bound_ablation(
    *,
    epsilons: tuple[float, ...] = (0.1, 0.05, 0.025),
    delta: float = 1e-3,
) -> list[TightBoundRow]:
    """§4.3 exact sizing vs. two-sided Hoeffding on a Bernoulli mean."""
    hoeffding = HoeffdingInequality(two_sided=True)
    rows = []
    for eps in epsilons:
        rows.append(
            TightBoundRow(
                epsilon=eps,
                delta=delta,
                hoeffding_samples=int(math.ceil(hoeffding.sample_size(eps, delta))),
                tight_samples=tight_sample_size(eps, delta),
            )
        )
    return rows


@dataclass(frozen=True)
class AttackOutcome:
    """(iv): overfit gap achieved by the honest adaptive attacker."""

    testset_size: int
    sizing: str
    epsilon: float
    queries: int
    mean_final_gap: float
    max_final_gap: float

    @property
    def guarantee_held(self) -> bool:
        """Whether every replicate stayed within epsilon."""
        return self.max_final_gap <= self.epsilon


@dataclass(frozen=True)
class FilterFalseRejectOutcome:
    """(v): false-reject rate of the hierarchical filter stage."""

    true_difference: float
    threshold: float
    tolerance: float
    delta_budget: float
    observed_false_reject_rate: float

    @property
    def within_budget(self) -> bool:
        """The filter's false rejects stay within its delta/2 budget
        (with Monte-Carlo slack applied by the caller)."""
        return self.observed_false_reject_rate <= self.delta_budget


def run_filter_false_reject(
    *,
    true_difference: float = 0.095,
    threshold: float = 0.1,
    tolerance: float = 0.01,
    delta: float = 0.01,
    n_replicates: int = 2_000,
    seed: int = 23,
) -> FilterFalseRejectOutcome:
    """(v): how often the unlabeled filter wrongly rejects a good commit.

    The §4.1.1 filter rejects when ``d_hat > A + eps'``.  For a commit
    whose *true* difference is below ``A`` the rejection probability is
    bounded by the filter's one-sided budget ``delta / 2``.  We place the
    true difference adversarially close to the threshold and measure.
    """
    import numpy as np

    from repro.stats.inequalities import HoeffdingInequality
    from repro.utils.rng import ensure_rng

    hoeffding = HoeffdingInequality(two_sided=False)
    n_filter = int(math.ceil(hoeffding.sample_size(tolerance, delta / 2.0)))
    rng = ensure_rng(seed)
    d_hats = rng.binomial(n_filter, true_difference, size=n_replicates) / n_filter
    rejects = float(np.mean(d_hats > threshold + tolerance))
    return FilterFalseRejectOutcome(
        true_difference=true_difference,
        threshold=threshold,
        tolerance=tolerance,
        delta_budget=delta / 2.0,
        observed_false_reject_rate=rejects,
    )


def run_adaptive_attack(
    *,
    epsilon: float = 0.05,
    delta: float = 1e-3,
    queries: int = 64,
    n_replicates: int = 8,
    seed: int = 11,
) -> list[AttackOutcome]:
    """Attack a naively sized testset and a ``delta/2^H``-sized one.

    The naive testset is sized for a *single* non-adaptive evaluation —
    the mistake the paper warns against.  The adaptive sizing uses the
    §3.3 budget for ``queries`` steps.
    """
    hoeffding = HoeffdingInequality(two_sided=True)
    n_naive = int(math.ceil(hoeffding.sample_size(epsilon, delta)))
    log_delta_adapt = math.log(delta) - queries * math.log(2.0)
    n_adaptive = int(
        math.ceil(-log_delta_adapt / (2.0 * epsilon * epsilon))
    )
    outcomes = []
    for sizing, n in (("naive-single-eval", n_naive), ("delta/2^H", n_adaptive)):
        gaps = []
        for rng in spawn_rngs(seed, n_replicates):
            attacker = ThresholdAttacker(
                n_testset=n, base_accuracy=0.5, block_fraction=0.05, seed=rng
            )
            trace = AdaptiveAttacker(attacker).run(queries)
            gaps.append(trace.final_overfit_gap)
        outcomes.append(
            AttackOutcome(
                testset_size=n,
                sizing=sizing,
                epsilon=epsilon,
                queries=queries,
                mean_final_gap=float(np.mean(gaps)),
                max_final_gap=float(np.max(gaps)),
            )
        )
    return outcomes
