"""Figure 6 (E5): development vs. test accuracy over the eight iterations.

The companion series to Figure 5: the developer's validation accuracy
climbs monotonically while the true test accuracy peaks at iteration 7 and
dips at the final submission — which is why a CI system that leaves
iteration 7 active "correlates with the test accuracy evolution" even
though the developer would have picked her last commit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml.datasets.emotion import SemEvalHistory, make_semeval_history

__all__ = ["AccuracyEvolution", "run_figure6"]


@dataclass(frozen=True)
class AccuracyEvolution:
    """The two Figure 6 series plus derived checkpoints.

    Attributes
    ----------
    iterations:
        1-based iteration indices.
    dev_accuracy:
        Developer-side validation accuracy per iteration (scripted).
    test_accuracy:
        Measured accuracy of each scripted model on the held-out testset.
    best_test_iteration:
        Iteration with the highest test accuracy (should be 7).
    dev_monotone:
        Whether the dev series is non-decreasing (it is, by design).
    """

    iterations: tuple[int, ...]
    dev_accuracy: tuple[float, ...]
    test_accuracy: tuple[float, ...]
    best_test_iteration: int
    dev_monotone: bool


def run_figure6(history: SemEvalHistory | None = None) -> AccuracyEvolution:
    """Measure both series from the scripted history."""
    if history is None:
        history = make_semeval_history()
    dev = tuple(it.dev_accuracy for it in history.iterations)
    test = tuple(
        float(np.mean(model.predictions == history.labels))
        for model in history.models
    )
    indices = tuple(it.index for it in history.iterations)
    best = indices[int(np.argmax(test))]
    monotone = all(b >= a for a, b in zip(dev, dev[1:]))
    return AccuracyEvolution(
        iterations=indices,
        dev_accuracy=dev,
        test_accuracy=test,
        best_test_iteration=best,
        dev_monotone=monotone,
    )
