"""Figure 5 (E4): three CI configurations over the SemEval history.

Replays the scripted 8-iteration development history (see
``repro/ml/datasets/emotion.py`` for the substitution note) through the
real engine under the paper's three queries:

=====  ==========================  ===========  ========  =========
query  condition                   adaptivity   mode      N (paper)
=====  ==========================  ===========  ========  =========
I      ``n - o > 0.02 +/- 0.02``   none         fp-free   4,713
II     ``n - o > 0.02 +/- 0.02``   none         fn-free   4,713
III    ``n - o > 0.018 +/- 0.022`` full         fp-free   5,204
=====  ==========================  ===========  ========  =========

All three exploit Pattern 2 with the a-priori fact that no two submissions
differ on more than 10% of predictions (``variance_bound: 0.1``).  The
figure's own YAML snippets label every query ``adaptivity: full``, which
contradicts both the column headers ("Non-Adaptive I/II") and the printed
sample sizes (4,713 is the non-adaptive Bennett number); we follow the
headers and the numbers.

Expected qualitative outcome (the paper's prose): every query leaves the
**second-to-last** model (iteration 7) active, matching the test-accuracy
evolution of Figure 6; the fn-free query passes a superset of the fp-free
query's commits.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ci.notifications import InMemoryEmailTransport
from repro.core.engine import CIEngine
from repro.core.script.config import CIScript
from repro.core.testset import Testset
from repro.ml.datasets.emotion import SemEvalHistory, make_semeval_history

__all__ = ["QueryConfig", "QueryTrace", "run_figure5", "SEMEVAL_QUERIES"]


@dataclass(frozen=True)
class QueryConfig:
    """One of the three Figure 5 query configurations."""

    name: str
    condition: str
    adaptivity: str
    mode: str
    paper_samples: int


SEMEVAL_QUERIES: tuple[QueryConfig, ...] = (
    QueryConfig(
        name="Non-Adaptive I",
        condition="n - o > 0.02 +/- 0.02",
        adaptivity="none",
        mode="fp-free",
        paper_samples=4713,
    ),
    QueryConfig(
        name="Non-Adaptive II",
        condition="n - o > 0.02 +/- 0.02",
        adaptivity="none",
        mode="fn-free",
        paper_samples=4713,
    ),
    QueryConfig(
        name="Adaptive",
        condition="n - o > 0.018 +/- 0.022",
        adaptivity="full",
        mode="fp-free",
        paper_samples=5204,
    ),
)


@dataclass(frozen=True)
class QueryTrace:
    """Result of replaying the history under one query.

    Attributes
    ----------
    config:
        The query configuration.
    planned_samples:
        The estimator's label requirement (must match the paper's).
    signals:
        True pass/fail per evaluated iteration (iterations 2..8).
    active_iteration:
        1-based index of the model left active at the end.
    developer_saw_signals:
        Whether the developer observed the signals (adaptivity != none).
    """

    config: QueryConfig
    planned_samples: int
    signals: tuple[bool, ...]
    active_iteration: int
    developer_saw_signals: bool


class _SharedPredictionModel:
    """A model wrapper serving predictions computed once for the testset.

    The three Figure 5 queries replay the *same* eight models over the
    *same* labeled pool, so each model's predictions are computed a single
    time and the arrays are shared across the queries (the engine never
    mutates prediction arrays).
    """

    def __init__(self, model, predictions):
        self.wrapped = model
        self._predictions = predictions
        self.name = getattr(model, "name", repr(model))

    def predict(self, features):
        return self._predictions


def _share_predictions(history: SemEvalHistory) -> list[_SharedPredictionModel]:
    testset = Testset(labels=history.labels, name="semeval-2019-task3")
    return [
        _SharedPredictionModel(model, testset.predict_with(model))
        for model in history.models
    ]


def run_query(
    history: SemEvalHistory,
    config: QueryConfig,
    models: list[_SharedPredictionModel] | None = None,
) -> QueryTrace:
    """Replay the full history under one query configuration.

    ``models`` may carry pre-computed predictions (see :func:`run_figure5`,
    which predicts each history model once and shares the arrays across
    all three queries); when omitted they are computed here.
    """
    adaptivity = config.adaptivity
    if adaptivity == "none":
        adaptivity = "none -> integration-team@example.com"
    script = CIScript.from_dict(
        {
            "script": "./test_model.py",
            "condition": config.condition,
            "reliability": 0.998,
            "mode": config.mode,
            "adaptivity": adaptivity,
            "steps": 7,
            "variance_bound": history.volatile_fraction,
        }
    )
    if models is None:
        models = _share_predictions(history)
    transport = InMemoryEmailTransport()
    engine = CIEngine(
        script,
        Testset(labels=history.labels, name="semeval-2019-task3"),
        models[0],
        notifier=transport.send,
    )
    signals: list[bool] = []
    active = 1
    for k, model in enumerate(models[1:], start=2):
        result = engine.submit(model)
        signals.append(result.truly_passed)
        if result.promoted:
            active = k
    return QueryTrace(
        config=config,
        planned_samples=engine.plan.samples,
        signals=tuple(signals),
        active_iteration=active,
        developer_saw_signals=script.adaptivity.value != "none",
    )


def run_figure5(history: SemEvalHistory | None = None) -> list[QueryTrace]:
    """Replay all three queries, predicting each history model only once.

    Every query sees the same eight models on the same testset, so the
    prediction arrays are computed a single time and shared across the
    three engine replays instead of re-running ``predict_with`` per query.
    """
    if history is None:
        history = make_semeval_history()
    models = _share_predictions(history)
    return [run_query(history, config, models) for config in SEMEVAL_QUERIES]
