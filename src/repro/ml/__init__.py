"""ML substrate: models, dataset generators, labeling workflows.

Everything the paper's evaluation depends on but does not itself
contribute: classifiers to commit (both *really trained* ones and
precisely calibrated simulated ones), synthetic stand-ins for the paper's
datasets (infinite MNIST, the SemEval-2019 Task 3 corpus, the ImageNet
model zoo), and the labeling-effort machinery behind the practicality
analysis (§2.3, §4.1.2).
"""

from repro.ml.models.base import Model, FixedPredictionModel
from repro.ml.models.simulated import (
    JointBuckets,
    ModelPairSpec,
    SimulatedPair,
    simulate_model_pair,
    simulate_accuracy_model,
    evolve_predictions,
)
from repro.ml.models.linear import SoftmaxRegression
from repro.ml.models.naive_bayes import MultinomialNaiveBayes
from repro.ml.models.knn import KNearestNeighbors
from repro.ml.models.majority import MajorityClassModel
from repro.ml.labeling import LabelOracle, LabelingCostModel
from repro.ml.metrics import (
    accuracy,
    disagreement,
    disagreement_matrix,
    confusion_matrix,
    f1_scores,
    macro_f1,
)

__all__ = [
    "Model",
    "FixedPredictionModel",
    "JointBuckets",
    "ModelPairSpec",
    "SimulatedPair",
    "simulate_model_pair",
    "simulate_accuracy_model",
    "evolve_predictions",
    "SoftmaxRegression",
    "MultinomialNaiveBayes",
    "KNearestNeighbors",
    "MajorityClassModel",
    "LabelOracle",
    "LabelingCostModel",
    "accuracy",
    "disagreement",
    "disagreement_matrix",
    "confusion_matrix",
    "f1_scores",
    "macro_f1",
]
