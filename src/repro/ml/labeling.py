"""Labeling effort: oracles and the §2.3 / §4.1.2 cost model.

The paper's practicality argument is denominated in human labeling time:
"30,000 to 60,000 [labels] is what 2 to 4 engineers can label in a day (8
hours) at a rate of 2 seconds per label", and under active labeling "a
labeling throughput of 5 seconds per label [means] the labeling team only
needs to commit 3 hours a day".  :class:`LabelingCostModel` encodes that
arithmetic; :class:`LabelOracle` simulates the labeling team against a
ground-truth array while metering consumption.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import LabelBudgetExceededError
from repro.utils.validation import check_positive, check_positive_int

__all__ = ["LabelOracle", "LabelingCostModel", "LabelingEffort"]


@dataclass(frozen=True)
class LabelingEffort:
    """Human effort implied by a labeling request.

    Attributes
    ----------
    n_labels:
        Labels requested.
    seconds:
        Total labeling seconds (one labeler).
    person_hours:
        ``seconds / 3600``.
    person_days:
        Days of work for one labeler at the cost model's workday length.
    team_days:
        Days for the whole team working in parallel.
    """

    n_labels: int
    seconds: float
    person_hours: float
    person_days: float
    team_days: float


class LabelingCostModel:
    """Converts label counts into human time (§2.3 arithmetic).

    Parameters
    ----------
    seconds_per_label:
        Throughput of one labeler (2 s in §2.3; 5 s in §4.1.2's
        "well designed interface" scenario).
    team_size:
        Number of labelers working in parallel.
    hours_per_day:
        Workday length (8 h in the paper).
    """

    def __init__(
        self,
        seconds_per_label: float = 2.0,
        team_size: int = 1,
        hours_per_day: float = 8.0,
    ):
        self.seconds_per_label = check_positive(seconds_per_label, "seconds_per_label")
        self.team_size = check_positive_int(team_size, "team_size")
        self.hours_per_day = check_positive(hours_per_day, "hours_per_day")

    def effort(self, n_labels: int) -> LabelingEffort:
        """Effort to produce ``n_labels`` labels."""
        if n_labels < 0:
            raise LabelBudgetExceededError(f"negative label count {n_labels}")
        seconds = n_labels * self.seconds_per_label
        person_hours = seconds / 3600.0
        person_days = person_hours / self.hours_per_day
        return LabelingEffort(
            n_labels=int(n_labels),
            seconds=seconds,
            person_hours=person_hours,
            person_days=person_days,
            team_days=person_days / self.team_size,
        )

    def labels_per_day(self) -> int:
        """Labels the whole team produces in one workday."""
        per_labeler = int(self.hours_per_day * 3600.0 / self.seconds_per_label)
        return per_labeler * self.team_size


class LabelOracle:
    """A metered label source backed by ground truth.

    Drop-in ``label_source`` for
    :class:`~repro.core.patterns.active.ActiveLabelingSession`: returns
    true labels for requested indices while tracking how many labels were
    consumed and how much human time that represents.

    Parameters
    ----------
    labels:
        Ground-truth label array for the pool.
    cost_model:
        Optional cost model for effort accounting.
    budget:
        Optional hard cap on total labels served.
    """

    def __init__(
        self,
        labels: np.ndarray,
        *,
        cost_model: LabelingCostModel | None = None,
        budget: int | None = None,
    ):
        self.labels = np.asarray(labels)
        self.cost_model = cost_model or LabelingCostModel()
        self.budget = budget
        self._served = 0
        self._requests: list[int] = []

    def __call__(self, indices: np.ndarray) -> np.ndarray:
        """Serve labels for ``indices`` (the ``label_source`` protocol)."""
        indices = np.asarray(indices)
        if self.budget is not None and self._served + len(indices) > self.budget:
            raise LabelBudgetExceededError(
                f"label request of {len(indices)} exceeds remaining budget "
                f"{self.budget - self._served}"
            )
        self._served += len(indices)
        self._requests.append(len(indices))
        return self.labels[indices]

    @property
    def labels_served(self) -> int:
        """Total labels produced so far."""
        return self._served

    @property
    def request_sizes(self) -> list[int]:
        """Per-request label counts, in order."""
        return list(self._requests)

    def total_effort(self) -> LabelingEffort:
        """Human effort spent so far under the cost model."""
        return self.cost_model.effort(self._served)
