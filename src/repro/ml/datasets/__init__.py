"""Synthetic dataset generators standing in for the paper's data sources.

Each generator documents which paper artifact it substitutes and why the
substitution preserves the behaviour under test (see DESIGN.md §2).
"""

from repro.ml.datasets.synthetic import make_blobs_classification
from repro.ml.datasets.mnist_like import InfiniteDigitStream
from repro.ml.datasets.emotion import (
    EMOTION_CLASSES,
    EmotionDatasetGenerator,
    SemEvalHistory,
    ScriptedIteration,
    make_semeval_history,
)
from repro.ml.datasets.model_zoo import ImageNetZoo, ZooModel

__all__ = [
    "make_blobs_classification",
    "InfiniteDigitStream",
    "EMOTION_CLASSES",
    "EmotionDatasetGenerator",
    "SemEvalHistory",
    "ScriptedIteration",
    "make_semeval_history",
    "ImageNetZoo",
    "ZooModel",
]
