"""An "infinite MNIST"-like stream (substitute for Bottou's infimnist).

**Substitution note (Figure 4).**  The paper estimates GoogLeNet's true
accuracy (~98%) on the infinite MNIST dataset and then studies how testset
subsampling errors compare to the concentration bounds.  That experiment
only needs (a) an effectively unbounded example stream and (b) a model
with a stable true accuracy on it.  This generator provides (a): a
parametric digit-template process — class templates on an 8x8 grid plus
random shifts and pixel noise, mimicking infimnist's elastic deformations
— from which any number of i.i.d. examples can be drawn.  (b) comes either
from a really-trained :class:`~repro.ml.models.linear.SoftmaxRegression`
(reaching ~95–99% depending on noise) or from a calibrated simulated model
at exactly 98%.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import ensure_rng
from repro.utils.validation import check_in_range, check_positive_int

__all__ = ["InfiniteDigitStream"]


class InfiniteDigitStream:
    """Unbounded generator of digit-like classification examples.

    Parameters
    ----------
    n_classes:
        Number of digit classes (default 10).
    side:
        Image side length; features are flattened ``side * side`` vectors.
    noise:
        Pixel-noise standard deviation (drives achievable accuracy).
    shift_fraction:
        Magnitude of the random template shift, as a fraction of ``side``
        (the "elastic deformation" stand-in).
    seed:
        Seed for the *template* construction; draws take their own rng.
    """

    def __init__(
        self,
        *,
        n_classes: int = 10,
        side: int = 8,
        noise: float = 0.35,
        shift_fraction: float = 0.15,
        seed=0,
    ):
        self.n_classes = check_positive_int(n_classes, "n_classes")
        self.side = check_positive_int(side, "side")
        check_in_range(noise, "noise", 0.0, 10.0)
        check_in_range(shift_fraction, "shift_fraction", 0.0, 0.5)
        self.noise = noise
        self.shift_fraction = shift_fraction
        rng = ensure_rng(seed)
        # Smooth-ish class templates: random low-frequency patterns.
        base = rng.normal(0.0, 1.0, size=(self.n_classes, self.side, self.side))
        # Smooth with a [0.25, 0.5, 0.25] kernel along both axes so the
        # templates have spatial structure a shift can meaningfully move.
        for axis in (1, 2):
            base = (
                0.25 * np.roll(base, 1, axis=axis)
                + 0.5 * base
                + 0.25 * np.roll(base, -1, axis=axis)
            )
        self.templates = base * 2.0

    @property
    def n_features(self) -> int:
        """Flattened feature dimensionality."""
        return self.side * self.side

    def sample(self, n_examples: int, seed=None) -> tuple[np.ndarray, np.ndarray]:
        """Draw ``n_examples`` i.i.d. ``(features, labels)``.

        Each example is its class template, cyclically shifted by a random
        per-example offset (both axes) and corrupted with Gaussian pixel
        noise — a cheap but effective analogue of infimnist's deformation
        pipeline.
        """
        n_examples = check_positive_int(n_examples, "n_examples")
        rng = ensure_rng(seed)
        labels = rng.integers(0, self.n_classes, size=n_examples)
        max_shift = max(1, int(self.shift_fraction * self.side))
        shifts = rng.integers(-max_shift, max_shift + 1, size=(n_examples, 2))
        images = self.templates[labels]
        # Vectorized cyclic shift via index arithmetic.
        rows = (np.arange(self.side)[None, :, None] - shifts[:, 0, None, None]) % self.side
        cols = (np.arange(self.side)[None, None, :] - shifts[:, 1, None, None]) % self.side
        batch = np.arange(n_examples)[:, None, None]
        shifted = images[batch, rows, cols]
        noisy = shifted + rng.normal(0.0, self.noise, size=shifted.shape)
        return noisy.reshape(n_examples, -1), labels
