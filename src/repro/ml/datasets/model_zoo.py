"""ImageNet-winners disagreement zoo (motivation for Pattern 2, §4.2).

**Substitution note.**  The paper observes that AlexNet, GoogLeNet,
AlexNet-BN, VGG and ResNet — five years of ImageNet progress — disagree on
at most 25% of top-1 predictions (15% for top-5 correctness), concluding
that consecutive CI commits will typically differ far less.  This module
generates five prediction vectors with exactly that envelope: a shared
"stable" region of configurable size outside which all models agree, so
every pairwise top-1 difference is bounded by the volatile fraction, with
per-model accuracies matching the historical top-1 numbers.  The only
property downstream code consumes is the disagreement/accuracy geometry,
which is preserved by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import SimulationError
from repro.ml.models.base import FixedPredictionModel
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_positive_int

__all__ = ["ZooModel", "ImageNetZoo"]

#: Historical top-1 accuracies (approximate, single-crop).
_ZOO_SPECS: tuple[tuple[str, float], ...] = (
    ("AlexNet", 0.57),
    ("AlexNet-BN", 0.60),
    ("GoogLeNet", 0.69),
    ("VGG", 0.71),
    ("ResNet", 0.76),
)


@dataclass(frozen=True)
class ZooModel:
    """One zoo member: name, target accuracy, prediction model."""

    name: str
    target_accuracy: float
    model: FixedPredictionModel


class ImageNetZoo:
    """Five models over one labeled evaluation set with bounded disagreement.

    Parameters
    ----------
    n_examples:
        Evaluation-set size (default 10,000).
    n_classes:
        Label-space size (default 1,000, the ImageNet convention).
    volatile_fraction:
        Upper bound on any pairwise top-1 disagreement (default 0.25,
        the paper's observation).
    seed:
        RNG seed.

    Notes
    -----
    Accuracies are produced inside the volatile region on top of a shared
    stable region, exactly like the SemEval history construction; the
    spread of target accuracies (0.57–0.76) must fit within the volatile
    fraction, which 0.25 does (0.19 < 0.25).
    """

    def __init__(
        self,
        *,
        n_examples: int = 10_000,
        n_classes: int = 1_000,
        volatile_fraction: float = 0.25,
        seed=0,
    ):
        n_examples = check_positive_int(n_examples, "n_examples")
        n_classes = check_positive_int(n_classes, "n_classes")
        accuracies = [acc for _, acc in _ZOO_SPECS]
        spread = max(accuracies) - min(accuracies)
        if spread > volatile_fraction:
            raise SimulationError(
                f"accuracy spread {spread:g} exceeds volatile fraction "
                f"{volatile_fraction:g}"
            )
        rng = ensure_rng(seed)
        self.n_classes = n_classes
        self.labels = rng.integers(0, n_classes, size=n_examples)

        volatile_size = int(round(volatile_fraction * n_examples))
        volatile = rng.choice(n_examples, size=volatile_size, replace=False)
        stable = np.setdiff1d(np.arange(n_examples), volatile)
        # Choose the stable correctness so every target fits the volatile
        # capacity: stable_correct <= min_acc * n and
        # (max_acc * n - stable_correct) <= volatile_size.
        lo = max(0.0, max(accuracies) - volatile_fraction)
        stable_rate = (lo + min(accuracies)) / 2.0 / (1.0 - volatile_fraction)
        n_stable_correct = int(round(stable_rate * len(stable)))
        stable_correct = rng.choice(stable, size=n_stable_correct, replace=False)
        stable_wrong = np.setdiff1d(stable, stable_correct)
        shared = self.labels.copy()
        shared[stable_wrong] = (self.labels[stable_wrong] + 1) % n_classes

        members: list[ZooModel] = []
        for k, (name, acc) in enumerate(_ZOO_SPECS):
            target_correct = int(round(acc * n_examples))
            inside_correct = target_correct - n_stable_correct
            if not 0 <= inside_correct <= volatile_size:
                raise SimulationError(
                    f"{name}: cannot realize accuracy {acc} inside the "
                    "volatile region"
                )
            predictions = shared.copy()
            correct_subset = rng.choice(volatile, size=inside_correct, replace=False)
            wrong_subset = np.setdiff1d(volatile, correct_subset)
            predictions[correct_subset] = self.labels[correct_subset]
            offset = 1 + (k % (n_classes - 1))
            predictions[wrong_subset] = (self.labels[wrong_subset] + offset) % n_classes
            members.append(
                ZooModel(
                    name=name,
                    target_accuracy=acc,
                    model=FixedPredictionModel(predictions, name=name),
                )
            )
        self.members: tuple[ZooModel, ...] = tuple(members)

    def __len__(self) -> int:
        return len(self.members)

    def accuracy_of(self, name: str) -> float:
        """Empirical accuracy of a member on the shared evaluation set."""
        member = self._lookup(name)
        return float(np.mean(member.model.predictions == self.labels))

    def disagreement(self, name_a: str, name_b: str) -> float:
        """Pairwise top-1 prediction-difference rate."""
        a = self._lookup(name_a).model.predictions
        b = self._lookup(name_b).model.predictions
        return float(np.mean(a != b))

    def max_pairwise_disagreement(self) -> float:
        """The largest pairwise disagreement (paper: <= 25%)."""
        worst = 0.0
        for i in range(len(self.members)):
            for j in range(i + 1, len(self.members)):
                a = self.members[i].model.predictions
                b = self.members[j].model.predictions
                worst = max(worst, float(np.mean(a != b)))
        return worst

    def _lookup(self, name: str) -> ZooModel:
        for member in self.members:
            if member.name == name:
                return member
        raise KeyError(
            f"unknown zoo model {name!r}; members: "
            f"{[m.name for m in self.members]}"
        )
