"""Gaussian-mixture classification data (the generic training workload).

Provides separable-but-noisy multiclass data for the end-to-end examples
where models are *really trained* (softmax regression, kNN, naive Bayes
all consume it).  Class separation is controllable, so a development
history of progressively better models can be produced by training on
progressively larger subsets.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_positive, check_positive_int

__all__ = ["make_blobs_classification"]


def make_blobs_classification(
    n_examples: int,
    *,
    n_classes: int = 4,
    n_features: int = 16,
    separation: float = 2.0,
    noise: float = 1.0,
    seed=None,
) -> tuple[np.ndarray, np.ndarray]:
    """Sample ``(features, labels)`` from a Gaussian mixture.

    Parameters
    ----------
    n_examples:
        Number of examples.
    n_classes:
        Mixture components / labels (balanced).
    n_features:
        Dimensionality.
    separation:
        Distance scale between class centroids; larger is easier.
    noise:
        Within-class standard deviation.
    seed:
        RNG seed / generator.

    Returns
    -------
    (features, labels):
        ``features`` of shape ``(n_examples, n_features)`` and integer
        ``labels`` in ``[0, n_classes)``.
    """
    n_examples = check_positive_int(n_examples, "n_examples")
    n_classes = check_positive_int(n_classes, "n_classes")
    n_features = check_positive_int(n_features, "n_features")
    check_positive(separation, "separation")
    if noise < 0:
        raise InvalidParameterError(f"noise must be >= 0, got {noise}")
    rng = ensure_rng(seed)
    centroids = rng.normal(0.0, separation, size=(n_classes, n_features))
    labels = rng.integers(0, n_classes, size=n_examples)
    features = centroids[labels] + rng.normal(0.0, noise, size=(n_examples, n_features))
    return features, labels
