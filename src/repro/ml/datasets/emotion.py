"""SemEval-2019 Task 3 stand-in: emotion classification workload (§5.2).

**Substitution note (Figures 5 and 6).**  The paper replays eight models
that were incrementally developed for the EmoContext competition
(classify an utterance as Happy / Sad / Angry / Others) against the
5,509-item test set released after the competition.  Neither the models
nor the data are distributable here, so this module provides:

* :class:`EmotionDatasetGenerator` — a synthetic emotion-text corpus
  (class-conditional unigram bags over a shared vocabulary) on which real
  classifiers (naive Bayes, softmax regression) can be trained, for the
  end-to-end example;
* :func:`make_semeval_history` — a **scripted development history**: eight
  :class:`~repro.ml.models.base.FixedPredictionModel`\\ s over a
  5,509-example testset whose accuracy trajectory and pairwise prediction
  differences reproduce the properties the paper's experiment depends on:

  - dev accuracy increases monotonically while test accuracy peaks at
    iteration 7 and dips at iteration 8 (Figure 6's shape, which makes
    the CI system's choice of the second-to-last model "correlate with
    the test accuracy evolution");
  - **any two** submissions differ on at most 10% of predictions (the
    fact the paper's Pattern 2 optimization exploits, ``p = 0.1``).

  The construction reserves a "volatile" region of 10% of the examples:
  all models agree outside it, so every pairwise difference is bounded by
  the region size; accuracies are tuned inside it with exact counts, so
  the engine's measured gains match the scripted trajectory to ``1/N``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import SimulationError
from repro.ml.models.base import FixedPredictionModel
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_positive_int

__all__ = [
    "EMOTION_CLASSES",
    "EmotionDatasetGenerator",
    "ScriptedIteration",
    "SemEvalHistory",
    "make_semeval_history",
    "DEFAULT_TEST_ACCURACIES",
    "DEFAULT_DEV_ACCURACIES",
]

#: The four EmoContext classes (class 0 is the dominant "others").
EMOTION_CLASSES: tuple[str, ...] = ("others", "happy", "sad", "angry")

#: Scripted test-accuracy trajectory (see module docstring).  Chosen so
#: that under the paper's three Figure 5 conditions the pass/fail traces
#: end with iteration 7 active: one >4-point jump at iteration 7, a dip at
#: iteration 8, small positive gains elsewhere (with one regression at
#: iteration 4 so fn-free also shows a FAIL).
DEFAULT_TEST_ACCURACIES: tuple[float, ...] = (
    0.820,
    0.833,
    0.845,
    0.842,
    0.851,
    0.858,
    0.864,
    0.861,
)

#: Scripted development-set trajectory (monotone, as in Figure 6: the
#: developer always sees progress on her own validation data).
DEFAULT_DEV_ACCURACIES: tuple[float, ...] = (
    0.801,
    0.842,
    0.853,
    0.861,
    0.868,
    0.874,
    0.883,
    0.889,
)


@dataclass(frozen=True)
class ScriptedIteration:
    """Metadata for one scripted development iteration.

    Attributes
    ----------
    index:
        1-based iteration number (matching the paper's "Iteration k").
    dev_accuracy:
        Accuracy on the developer's own validation data.
    test_accuracy:
        True accuracy on the held-out competition testset.
    description:
        What the (fictional) developer changed this iteration.
    """

    index: int
    dev_accuracy: float
    test_accuracy: float
    description: str


_ITERATION_NOTES = (
    "baseline: bag-of-words logistic regression",
    "add pretrained word embeddings",
    "bidirectional LSTM encoder",
    "aggressive dropout (overshoots)",
    "tune dropout and learning rate",
    "add attention pooling",
    "ensemble of three seeds",
    "larger ensemble (overfits dev)",
)


@dataclass(frozen=True)
class SemEvalHistory:
    """A scripted 8-model development history over a shared testset.

    Attributes
    ----------
    labels:
        Ground-truth labels of the testset (size 5,509 by default).
    models:
        One :class:`FixedPredictionModel` per iteration, in submission
        order.
    iterations:
        Per-iteration metadata (dev/test accuracy, notes).
    volatile_fraction:
        The any-pair prediction-difference bound used in construction.
    """

    labels: np.ndarray
    models: tuple[FixedPredictionModel, ...]
    iterations: tuple[ScriptedIteration, ...]
    volatile_fraction: float

    def __len__(self) -> int:
        return len(self.models)

    @property
    def testset_size(self) -> int:
        """Number of labeled test items (5,509 in the paper)."""
        return len(self.labels)

    def pairwise_difference(self, i: int, j: int) -> float:
        """Empirical prediction-difference rate between iterations i and j
        (0-based)."""
        a = self.models[i].predictions
        b = self.models[j].predictions
        return float(np.mean(a != b))

    def max_pairwise_difference(self) -> float:
        """The largest difference over all model pairs (must be <= 10%)."""
        worst = 0.0
        for i in range(len(self.models)):
            for j in range(i + 1, len(self.models)):
                worst = max(worst, self.pairwise_difference(i, j))
        return worst


def make_semeval_history(
    *,
    n_examples: int = 5509,
    test_accuracies: tuple[float, ...] = DEFAULT_TEST_ACCURACIES,
    dev_accuracies: tuple[float, ...] = DEFAULT_DEV_ACCURACIES,
    volatile_fraction: float = 0.1,
    seed=7,
) -> SemEvalHistory:
    """Construct the scripted history (see module docstring).

    Raises
    ------
    SimulationError
        When the accuracy trajectory cannot be realized inside the
        volatile region (targets too spread out for the given fraction).
    """
    n_examples = check_positive_int(n_examples, "n_examples")
    if len(test_accuracies) != len(dev_accuracies):
        raise SimulationError("test and dev trajectories must have equal length")
    rng = ensure_rng(seed)
    n_classes = len(EMOTION_CLASSES)
    labels = rng.integers(0, n_classes, size=n_examples)

    volatile_size = int(round(volatile_fraction * n_examples))
    volatile = rng.choice(n_examples, size=volatile_size, replace=False)
    stable = np.setdiff1d(np.arange(n_examples), volatile)

    # Stable region: shared predictions for every model.  Its correctness
    # rate anchors the achievable accuracy window.
    stable_correct_rate = 0.88
    n_stable_correct = int(round(stable_correct_rate * len(stable)))
    stable_correct = rng.choice(stable, size=n_stable_correct, replace=False)
    stable_wrong = np.setdiff1d(stable, stable_correct)

    shared = labels.copy()
    # All models make the *same* mistake on stable-wrong examples.
    shared[stable_wrong] = (labels[stable_wrong] + 1) % n_classes

    models: list[FixedPredictionModel] = []
    iterations: list[ScriptedIteration] = []
    for k, (test_acc, dev_acc) in enumerate(zip(test_accuracies, dev_accuracies)):
        target_correct = int(round(test_acc * n_examples))
        inside_correct = target_correct - len(stable_correct)
        if not 0 <= inside_correct <= volatile_size:
            raise SimulationError(
                f"iteration {k + 1}: target accuracy {test_acc} needs "
                f"{inside_correct} correct volatile examples, outside "
                f"[0, {volatile_size}]"
            )
        predictions = shared.copy()
        correct_subset = rng.choice(volatile, size=inside_correct, replace=False)
        wrong_subset = np.setdiff1d(volatile, correct_subset)
        predictions[correct_subset] = labels[correct_subset]
        # Distinct wrong-class offsets across iterations make even
        # both-wrong volatile examples disagree between most model pairs.
        offset = 1 + (k % (n_classes - 1))
        predictions[wrong_subset] = (labels[wrong_subset] + offset) % n_classes
        note = _ITERATION_NOTES[k % len(_ITERATION_NOTES)]
        models.append(
            FixedPredictionModel(predictions, name=f"iteration-{k + 1}")
        )
        iterations.append(
            ScriptedIteration(
                index=k + 1,
                dev_accuracy=dev_acc,
                test_accuracy=test_acc,
                description=note,
            )
        )
    return SemEvalHistory(
        labels=labels,
        models=tuple(models),
        iterations=tuple(iterations),
        volatile_fraction=volatile_fraction,
    )


class EmotionDatasetGenerator:
    """Synthetic emotion-text corpus: class-conditional unigram bags.

    Each class has a token distribution over a shared vocabulary: a common
    core (function words, shared by all classes) plus class-specific
    emotion vocabulary.  Utterances are bags of tokens; features are count
    vectors — the natural input for multinomial naive Bayes and a fine
    input for softmax regression.

    Parameters
    ----------
    vocabulary_size:
        Total vocabulary (first ``n_core`` tokens are shared).
    core_fraction:
        Fraction of each utterance drawn from the shared core (higher is
        harder).
    mean_length:
        Mean utterance length (Poisson).
    class_priors:
        Class probabilities; defaults to an "others"-heavy prior
        (0.5, 0.17, 0.17, 0.16) matching the task's skew.
    seed:
        Seed for the class-distribution construction.
    """

    def __init__(
        self,
        *,
        vocabulary_size: int = 300,
        core_fraction: float = 0.7,
        mean_length: float = 12.0,
        class_priors: tuple[float, ...] = (0.5, 0.17, 0.17, 0.16),
        seed=0,
    ):
        self.vocabulary_size = check_positive_int(vocabulary_size, "vocabulary_size")
        if not 0.0 <= core_fraction < 1.0:
            raise SimulationError("core_fraction must be in [0, 1)")
        if abs(sum(class_priors) - 1.0) > 1e-9:
            raise SimulationError("class_priors must sum to 1")
        if len(class_priors) != len(EMOTION_CLASSES):
            raise SimulationError(
                f"need {len(EMOTION_CLASSES)} class priors, got {len(class_priors)}"
            )
        self.core_fraction = core_fraction
        self.mean_length = mean_length
        self.class_priors = np.asarray(class_priors)
        rng = ensure_rng(seed)
        n_core = self.vocabulary_size // 2
        self.n_core = n_core
        core = rng.dirichlet(np.ones(n_core))
        n_specific = self.vocabulary_size - n_core
        per_class = n_specific // len(EMOTION_CLASSES)
        self.token_distributions = np.zeros(
            (len(EMOTION_CLASSES), self.vocabulary_size)
        )
        for c in range(len(EMOTION_CLASSES)):
            dist = np.zeros(self.vocabulary_size)
            dist[:n_core] = core * self.core_fraction
            lo = n_core + c * per_class
            hi = n_core + (c + 1) * per_class if c < len(EMOTION_CLASSES) - 1 else None
            block = slice(lo, hi)
            width = (self.vocabulary_size - lo) if hi is None else per_class
            dist[block] = rng.dirichlet(np.ones(width)) * (1.0 - self.core_fraction)
            self.token_distributions[c] = dist / dist.sum()

    def sample(self, n_examples: int, seed=None) -> tuple[np.ndarray, np.ndarray]:
        """Draw ``(count_features, labels)``; counts have shape
        ``(n_examples, vocabulary_size)``."""
        n_examples = check_positive_int(n_examples, "n_examples")
        rng = ensure_rng(seed)
        labels = rng.choice(len(EMOTION_CLASSES), size=n_examples, p=self.class_priors)
        lengths = np.maximum(1, rng.poisson(self.mean_length, size=n_examples))
        counts = np.zeros((n_examples, self.vocabulary_size), dtype=np.int64)
        # One batched multinomial per class (Generator.multinomial
        # broadcasts over the per-utterance length vector).
        for c in range(len(EMOTION_CLASSES)):
            idx = np.flatnonzero(labels == c)
            if len(idx) == 0:
                continue
            counts[idx] = rng.multinomial(lengths[idx], self.token_distributions[c])
        return counts, labels
