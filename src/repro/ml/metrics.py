"""Evaluation metrics over prediction arrays.

Accuracy and disagreement are the paper's core quantities; confusion
matrices and F1 scores support the "beyond accuracy" extension the paper
names (F1 via McDiarmid sensitivity, §2.2 discussion).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import InvalidParameterError

__all__ = [
    "accuracy",
    "disagreement",
    "disagreement_matrix",
    "confusion_matrix",
    "f1_scores",
    "macro_f1",
]


def _aligned(*arrays: np.ndarray) -> list[np.ndarray]:
    out = [np.asarray(a) for a in arrays]
    lengths = {len(a) for a in out}
    if len(lengths) != 1:
        raise InvalidParameterError(f"array lengths differ: {sorted(lengths)}")
    if 0 in lengths:
        raise InvalidParameterError("empty arrays")
    return out


def accuracy(predictions: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of exact matches."""
    predictions, labels = _aligned(predictions, labels)
    return float(np.mean(predictions == labels))


def disagreement(predictions_a: np.ndarray, predictions_b: np.ndarray) -> float:
    """Fraction of examples where two prediction vectors differ (``d``)."""
    a, b = _aligned(predictions_a, predictions_b)
    return float(np.mean(a != b))


def disagreement_matrix(prediction_sets: list[np.ndarray]) -> np.ndarray:
    """Symmetric pairwise-disagreement matrix over multiple models."""
    if not prediction_sets:
        raise InvalidParameterError("need at least one prediction set")
    k = len(prediction_sets)
    out = np.zeros((k, k))
    for i in range(k):
        for j in range(i + 1, k):
            out[i, j] = out[j, i] = disagreement(prediction_sets[i], prediction_sets[j])
    return out


def confusion_matrix(
    predictions: np.ndarray, labels: np.ndarray, n_classes: int | None = None
) -> np.ndarray:
    """Counts matrix ``C[true, predicted]``."""
    predictions, labels = _aligned(predictions, labels)
    if n_classes is None:
        n_classes = int(max(predictions.max(), labels.max())) + 1
    matrix = np.zeros((n_classes, n_classes), dtype=int)
    np.add.at(matrix, (labels, predictions), 1)
    return matrix


def f1_scores(
    predictions: np.ndarray, labels: np.ndarray, n_classes: int | None = None
) -> np.ndarray:
    """Per-class F1 (0 where a class has no predictions and no instances)."""
    cm = confusion_matrix(predictions, labels, n_classes)
    tp = np.diag(cm).astype(float)
    predicted = cm.sum(axis=0).astype(float)
    actual = cm.sum(axis=1).astype(float)
    with np.errstate(divide="ignore", invalid="ignore"):
        precision = np.where(predicted > 0, tp / predicted, 0.0)
        recall = np.where(actual > 0, tp / actual, 0.0)
        denom = precision + recall
        f1 = np.where(denom > 0, 2.0 * precision * recall / denom, 0.0)
    return f1


def macro_f1(
    predictions: np.ndarray, labels: np.ndarray, n_classes: int | None = None
) -> float:
    """Unweighted mean of per-class F1 scores."""
    return float(np.mean(f1_scores(predictions, labels, n_classes)))
