"""Multinomial naive Bayes over token-count features.

The natural classifier for the emotion-text workload (the SemEval-like
dataset generates bag-of-words count vectors).  Laplace-smoothed, fully
vectorized, log-space scoring.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.utils.validation import check_positive, check_positive_int

__all__ = ["MultinomialNaiveBayes"]


class MultinomialNaiveBayes:
    """Classic multinomial NB with Laplace smoothing.

    Parameters
    ----------
    n_classes:
        Label-space size.
    alpha:
        Additive smoothing strength.
    """

    def __init__(self, n_classes: int, *, alpha: float = 1.0):
        self.n_classes = check_positive_int(n_classes, "n_classes")
        self.alpha = check_positive(alpha, "alpha")
        self.log_priors: np.ndarray | None = None
        self.log_likelihoods: np.ndarray | None = None  # (n_classes, vocab)

    def fit(self, counts: np.ndarray, labels: np.ndarray) -> "MultinomialNaiveBayes":
        """Fit on a count matrix ``(m, vocab)`` and integer labels."""
        X = np.asarray(counts, dtype=float)
        y = np.asarray(labels)
        if X.ndim != 2:
            raise InvalidParameterError(f"counts must be 2-D, got shape {X.shape}")
        if len(X) != len(y):
            raise InvalidParameterError("counts and labels must align")
        if (X < 0).any():
            raise InvalidParameterError("counts must be non-negative")
        m, vocab = X.shape
        class_counts = np.zeros(self.n_classes)
        token_counts = np.zeros((self.n_classes, vocab))
        for c in range(self.n_classes):
            mask = y == c
            class_counts[c] = mask.sum()
            if mask.any():
                token_counts[c] = X[mask].sum(axis=0)
        # Laplace-smoothed priors and likelihoods.
        self.log_priors = np.log(
            (class_counts + self.alpha) / (m + self.alpha * self.n_classes)
        )
        smoothed = token_counts + self.alpha
        self.log_likelihoods = np.log(smoothed / smoothed.sum(axis=1, keepdims=True))
        return self

    def predict_log_proba(self, counts: np.ndarray) -> np.ndarray:
        """Unnormalized class log-scores, shape ``(m, n_classes)``."""
        if self.log_priors is None or self.log_likelihoods is None:
            raise InvalidParameterError("model is not fitted")
        X = np.asarray(counts, dtype=float)
        return X @ self.log_likelihoods.T + self.log_priors

    def predict(self, counts: np.ndarray) -> np.ndarray:
        """Highest-scoring class per example."""
        return self.predict_log_proba(counts).argmax(axis=1)
