"""Majority-class baseline model.

The canonical "quality bug" model for exercising condition F1 (lower-bound
worst-case quality): committing it should trip a well-configured
``n > c`` test.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import InvalidParameterError

__all__ = ["MajorityClassModel"]


class MajorityClassModel:
    """Always predicts the most frequent training class."""

    def __init__(self):
        self._majority: int | None = None

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "MajorityClassModel":
        """Record the majority class (features are ignored)."""
        y = np.asarray(labels)
        if len(y) == 0:
            raise InvalidParameterError("labels must be non-empty")
        values, counts = np.unique(y, return_counts=True)
        self._majority = int(values[counts.argmax()])
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        """A constant vector of the majority class."""
        if self._majority is None:
            raise InvalidParameterError("model is not fitted")
        features = np.asarray(features)
        return np.full(len(features), self._majority, dtype=int)
