"""The model interface the CI engine consumes.

A *model* is anything with ``predict(features) -> predictions``.  The
engine never trains or introspects models — exactly like a real CI system,
it only runs them on the testset.

:class:`FixedPredictionModel` is the workhorse of the experiments: a model
whose predictions on the (indexed) testset are a stored array.  Simulated
development histories are sequences of these.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

from repro.exceptions import InvalidParameterError

__all__ = ["Model", "FixedPredictionModel"]


@runtime_checkable
class Model(Protocol):
    """Structural interface: ``predict`` over a feature array."""

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Return one prediction per row/entry of ``features``."""
        ...  # pragma: no cover - protocol


class FixedPredictionModel:
    """A model defined by a fixed prediction table over an indexed dataset.

    Works with testsets whose ``features`` are example indices (the
    convention used by every simulated experiment): ``predict(indices)``
    gathers the stored predictions at those indices.

    Parameters
    ----------
    predictions:
        Prediction for every example in the underlying pool.
    name:
        Identifier for logs and commit messages.
    """

    def __init__(self, predictions: np.ndarray, name: str = "model"):
        self.predictions = np.asarray(predictions)
        if self.predictions.ndim != 1:
            raise InvalidParameterError(
                f"predictions must be one-dimensional, got shape "
                f"{self.predictions.shape}"
            )
        self.name = name

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Gather stored predictions at the given example indices."""
        indices = np.asarray(features)
        if indices.ndim != 1:
            raise InvalidParameterError(
                "FixedPredictionModel expects a 1-D array of example indices"
            )
        if not np.issubdtype(indices.dtype, np.integer):
            raise InvalidParameterError(
                "FixedPredictionModel expects integer example indices; "
                "use a trained model for raw feature matrices"
            )
        return self.predictions[indices]

    def __len__(self) -> int:
        return len(self.predictions)

    def __repr__(self) -> str:
        return f"FixedPredictionModel({self.name!r}, n={len(self.predictions)})"
