"""Calibrated (old, new) model-pair simulation.

The experiments need model pairs with *exactly specified* population
statistics: old accuracy ``o``, new accuracy ``n``, and prediction
difference ``d``.  This module solves for the joint per-example outcome
distribution and materializes prediction/label arrays from it.

Joint model
-----------
For top-1 classification, an example falls into one of five buckets:

====================  =========================  ==========
bucket                meaning                    mass
====================  =========================  ==========
``agree_correct``     same prediction, correct   ``q_ac``
``agree_wrong``       same prediction, wrong     ``q_aw``
``old_only_correct``  differ, old right          ``q_om``
``new_only_correct``  differ, new right          ``q_nm``
``disagree_wrong``    differ, both wrong         ``q_dw``
====================  =========================  ==========

(Two different predictions cannot both be correct, so there is no
"disagree, both correct" bucket.)  The constraints are::

    q_ac + q_om           = old_accuracy
    q_ac + q_nm           = new_accuracy
    q_om + q_nm + q_dw    = difference
    all masses >= 0, sum = 1

One degree of freedom remains; it is pinned by ``disagree_wrong``
(default 0 — the binary-classification geometry, also the minimum-``d``
configuration for a given accuracy gap).  For multiclass simulations a
positive ``disagree_wrong`` requires at least 3 classes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import SimulationError
from repro.ml.models.base import FixedPredictionModel
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_fraction, check_positive_int

__all__ = [
    "JointBuckets",
    "ModelPairSpec",
    "SimulatedPair",
    "simulate_model_pair",
    "simulate_accuracy_model",
]

_ATOL = 1e-9


@dataclass(frozen=True)
class JointBuckets:
    """The solved five-bucket joint distribution (masses sum to 1)."""

    agree_correct: float
    agree_wrong: float
    old_only_correct: float
    new_only_correct: float
    disagree_wrong: float

    def as_array(self) -> np.ndarray:
        """Masses in a fixed order (the order used by the sampler)."""
        return np.array(
            [
                self.agree_correct,
                self.agree_wrong,
                self.old_only_correct,
                self.new_only_correct,
                self.disagree_wrong,
            ]
        )

    @property
    def old_accuracy(self) -> float:
        """Implied old-model accuracy."""
        return self.agree_correct + self.old_only_correct

    @property
    def new_accuracy(self) -> float:
        """Implied new-model accuracy."""
        return self.agree_correct + self.new_only_correct

    @property
    def difference(self) -> float:
        """Implied prediction-difference rate ``d``."""
        return self.old_only_correct + self.new_only_correct + self.disagree_wrong


@dataclass(frozen=True)
class ModelPairSpec:
    """Target population statistics for an (old, new) model pair.

    Parameters
    ----------
    old_accuracy, new_accuracy:
        Target accuracies ``o`` and ``n``.
    difference:
        Target prediction-difference rate ``d``.
    disagree_wrong:
        Mass where models disagree and both are wrong (needs >= 3 classes
        when positive).
    """

    old_accuracy: float
    new_accuracy: float
    difference: float
    disagree_wrong: float = 0.0

    def solve(self) -> JointBuckets:
        """Solve the bucket masses; raises :class:`SimulationError` when the
        targets are jointly infeasible."""
        o = check_fraction(self.old_accuracy, "old_accuracy")
        n = check_fraction(self.new_accuracy, "new_accuracy")
        d = check_fraction(self.difference, "difference")
        q_dw = check_fraction(self.disagree_wrong, "disagree_wrong")
        gain = n - o
        disagree_informative = d - q_dw  # q_om + q_nm
        if disagree_informative < -_ATOL:
            raise SimulationError(
                f"disagree_wrong={q_dw} exceeds difference={d}"
            )
        if abs(gain) > disagree_informative + _ATOL:
            raise SimulationError(
                f"|new - old| = {abs(gain):g} cannot exceed the informative "
                f"disagreement {disagree_informative:g} "
                "(models that differ on few predictions cannot differ much "
                "in accuracy)"
            )
        q_nm = (disagree_informative + gain) / 2.0
        q_om = (disagree_informative - gain) / 2.0
        q_ac = o - q_om
        q_aw = 1.0 - q_ac - q_om - q_nm - q_dw
        for name, q in [
            ("agree_correct", q_ac),
            ("agree_wrong", q_aw),
            ("old_only_correct", q_om),
            ("new_only_correct", q_nm),
        ]:
            if q < -_ATOL:
                raise SimulationError(
                    f"infeasible spec (bucket {name} = {q:g} < 0): "
                    f"o={o}, n={n}, d={d}, disagree_wrong={q_dw}"
                )
        return JointBuckets(
            agree_correct=max(0.0, q_ac),
            agree_wrong=max(0.0, q_aw),
            old_only_correct=max(0.0, q_om),
            new_only_correct=max(0.0, q_nm),
            disagree_wrong=max(0.0, q_dw),
        )


@dataclass(frozen=True)
class SimulatedPair:
    """Materialized predictions and labels for a simulated model pair.

    Attributes
    ----------
    old_model, new_model:
        :class:`FixedPredictionModel` instances over the example pool.
    labels:
        Ground-truth labels of the pool.
    buckets:
        The joint distribution the pair was drawn from.
    """

    old_model: FixedPredictionModel
    new_model: FixedPredictionModel
    labels: np.ndarray
    buckets: JointBuckets

    def __len__(self) -> int:
        return len(self.labels)


def _materialize(
    assignments: np.ndarray, n_classes: int, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Turn bucket assignments into (labels, old_preds, new_preds)."""
    n = len(assignments)
    labels = rng.integers(0, n_classes, size=n)
    old = labels.copy()
    new = labels.copy()

    def wrong(base: np.ndarray) -> np.ndarray:
        # A uniformly random class different from `base`, vectorized:
        # draw an offset in [1, K-1] and rotate.
        offsets = rng.integers(1, n_classes, size=len(base))
        return (base + offsets) % n_classes

    idx_aw = np.flatnonzero(assignments == 1)
    if len(idx_aw):
        shared_wrong = wrong(labels[idx_aw])
        old[idx_aw] = shared_wrong
        new[idx_aw] = shared_wrong
    idx_om = np.flatnonzero(assignments == 2)
    if len(idx_om):
        new[idx_om] = wrong(labels[idx_om])
    idx_nm = np.flatnonzero(assignments == 3)
    if len(idx_nm):
        old[idx_nm] = wrong(labels[idx_nm])
    idx_dw = np.flatnonzero(assignments == 4)
    if len(idx_dw):
        if n_classes < 3:
            raise SimulationError(
                "disagree_wrong outcomes need at least 3 classes"
            )
        lab = labels[idx_dw]
        off1 = rng.integers(1, n_classes, size=len(idx_dw))
        # Second offset distinct from both 0 and off1.
        off2 = rng.integers(1, n_classes - 1, size=len(idx_dw))
        off2 = np.where(off2 >= off1, off2 + 1, off2)
        old[idx_dw] = (lab + off1) % n_classes
        new[idx_dw] = (lab + off2) % n_classes
    return labels, old, new


def simulate_model_pair(
    spec: ModelPairSpec,
    n_examples: int,
    *,
    n_classes: int = 4,
    exact: bool = True,
    seed=None,
) -> SimulatedPair:
    """Materialize a model pair matching ``spec``.

    Parameters
    ----------
    spec:
        Target statistics (solved internally).
    n_examples:
        Pool size.
    n_classes:
        Label-space size (>= 2; >= 3 when ``disagree_wrong > 0``).
    exact:
        ``True`` assigns deterministic bucket *counts*
        (``round(mass * n)``, largest-remainder apportioned) so empirical
        statistics hit the spec to within ``1/n`` — right for replaying
        scripted histories.  ``False`` draws i.i.d. bucket memberships —
        right for Monte-Carlo coverage experiments.
    seed:
        RNG seed / generator.
    """
    n_examples = check_positive_int(n_examples, "n_examples")
    n_classes = check_positive_int(n_classes, "n_classes")
    if n_classes < 2:
        raise SimulationError("need at least 2 classes")
    rng = ensure_rng(seed)
    buckets = spec.solve()
    masses = buckets.as_array()
    if exact:
        counts = _largest_remainder(masses, n_examples)
        assignments = np.repeat(np.arange(5), counts)
        rng.shuffle(assignments)
    else:
        assignments = rng.choice(5, size=n_examples, p=masses / masses.sum())
    labels, old, new = _materialize(assignments, n_classes, rng)
    return SimulatedPair(
        old_model=FixedPredictionModel(old, name="old"),
        new_model=FixedPredictionModel(new, name="new"),
        labels=labels,
        buckets=buckets,
    )


def simulate_accuracy_model(
    true_accuracy: float,
    n_examples: int,
    *,
    n_classes: int = 10,
    exact: bool = False,
    seed=None,
) -> tuple[FixedPredictionModel, np.ndarray]:
    """A single model with the given (population or exact) accuracy.

    Returns ``(model, labels)``.  With ``exact=False`` each example is
    independently correct with probability ``true_accuracy`` (the right
    model for validating concentration bounds); with ``exact=True`` the
    correct count is ``round(true_accuracy * n)``.
    """
    check_fraction(true_accuracy, "true_accuracy")
    n_examples = check_positive_int(n_examples, "n_examples")
    rng = ensure_rng(seed)
    labels = rng.integers(0, n_classes, size=n_examples)
    if exact:
        n_correct = int(round(true_accuracy * n_examples))
        correct_mask = np.zeros(n_examples, dtype=bool)
        correct_mask[rng.choice(n_examples, size=n_correct, replace=False)] = True
    else:
        correct_mask = rng.random(n_examples) < true_accuracy
    predictions = labels.copy()
    idx_wrong = np.flatnonzero(~correct_mask)
    if len(idx_wrong):
        offsets = rng.integers(1, n_classes, size=len(idx_wrong))
        predictions[idx_wrong] = (labels[idx_wrong] + offsets) % n_classes
    return FixedPredictionModel(predictions, name=f"acc~{true_accuracy:g}"), labels


def evolve_predictions(
    old_predictions: np.ndarray,
    labels: np.ndarray,
    *,
    target_accuracy: float,
    difference: float,
    n_classes: int | None = None,
    seed=None,
) -> np.ndarray:
    """Derive a successor model *within an existing world*.

    Given the incumbent's predictions and the ground truth, produce new
    predictions whose empirical accuracy is ``target_accuracy`` and whose
    empirical disagreement with the incumbent is ``difference`` (both to
    within ``1/n``).  This is how simulated development histories are
    chained: each commit evolves from the currently active model over the
    same labeled pool, exactly like a real fine-tuning iteration.

    The construction flips three kinds of examples, never more than the
    difference budget allows:

    * correct -> wrong (``x`` examples),
    * wrong -> correct (``y`` examples, ``y - x`` = accuracy delta),
    * wrong -> differently wrong (``z`` examples, absorbing leftover
      difference budget; needs >= 3 classes when positive).

    Raises
    ------
    SimulationError
        When the accuracy move exceeds the difference budget, or the
        world lacks enough correct/wrong examples to flip.
    """
    old_predictions = np.asarray(old_predictions)
    labels = np.asarray(labels)
    if len(old_predictions) != len(labels):
        raise SimulationError("old_predictions and labels must align")
    n = len(labels)
    check_fraction(target_accuracy, "target_accuracy")
    check_fraction(difference, "difference")
    if n_classes is None:
        n_classes = int(max(old_predictions.max(), labels.max())) + 1
    rng = ensure_rng(seed)

    correct_idx = np.flatnonzero(old_predictions == labels)
    wrong_idx = np.flatnonzero(old_predictions != labels)
    old_correct = len(correct_idx)
    n_wrong = len(wrong_idx)
    target_correct = int(round(target_accuracy * n))
    budget = int(round(difference * n))  # = x + y + z, the flips to make
    delta = target_correct - old_correct  # = y - x
    if abs(delta) > budget:
        raise SimulationError(
            f"accuracy move of {delta} examples exceeds the difference "
            f"budget of {budget}"
        )
    # Flip kinds: x correct->wrong, y wrong->correct, z wrong->other-wrong.
    # Constraints: y - x = delta, x + y + z = budget, x <= #correct,
    # y + z <= #wrong, all >= 0.  That bounds x to a window; any choice in
    # it is valid, and larger x means more informative churn.
    x_lo = max(0, budget - n_wrong, -delta)
    x_hi = min(old_correct, (budget - delta) // 2)
    if n_classes < 3:
        # No wrong->other-wrong flips exist in a binary world: z must be
        # (close to) zero, pinning x at the top of its window.
        x_lo = max(x_lo, (budget - delta) // 2)
    if x_lo > x_hi:
        raise SimulationError(
            "infeasible evolution: cannot change "
            f"{difference:.0%} of predictions while moving accuracy from "
            f"{old_correct / n:.4f} to {target_accuracy:.4f} "
            f"(only {n_wrong} wrong examples available)"
        )
    x = x_lo + (x_hi - x_lo) // 4  # a little churn beyond the minimum
    y = x + delta
    z = budget - x - y
    new_predictions = old_predictions.copy()
    if x > 0:
        chosen = rng.choice(correct_idx, size=x, replace=False)
        offsets = rng.integers(1, n_classes, size=x)
        new_predictions[chosen] = (labels[chosen] + offsets) % n_classes
    flip_pool = rng.permutation(wrong_idx)
    if y > 0:
        new_predictions[flip_pool[:y]] = labels[flip_pool[:y]]
    if z > 0:
        churn = flip_pool[y : y + z]
        # A wrong class different from both the label and the old wrong
        # prediction (guaranteed representable when n_classes >= 3).
        current = new_predictions[churn]
        candidate = (current + 1) % n_classes
        collision = candidate == labels[churn]
        candidate[collision] = (candidate[collision] + 1) % n_classes
        new_predictions[churn] = candidate
    return new_predictions


def _largest_remainder(masses: np.ndarray, total: int) -> np.ndarray:
    """Apportion ``total`` into integer counts proportional to ``masses``."""
    raw = masses * total
    counts = np.floor(raw).astype(int)
    shortfall = total - counts.sum()
    if shortfall > 0:
        order = np.argsort(-(raw - counts))
        counts[order[:shortfall]] += 1
    return counts
