"""Model implementations: trained classifiers and calibrated simulations."""

from repro.ml.models.base import Model, FixedPredictionModel
from repro.ml.models.linear import SoftmaxRegression
from repro.ml.models.naive_bayes import MultinomialNaiveBayes
from repro.ml.models.knn import KNearestNeighbors
from repro.ml.models.majority import MajorityClassModel
from repro.ml.models.simulated import (
    JointBuckets,
    ModelPairSpec,
    SimulatedPair,
    simulate_model_pair,
    simulate_accuracy_model,
    evolve_predictions,
)

__all__ = [
    "Model",
    "FixedPredictionModel",
    "SoftmaxRegression",
    "MultinomialNaiveBayes",
    "KNearestNeighbors",
    "MajorityClassModel",
    "JointBuckets",
    "ModelPairSpec",
    "SimulatedPair",
    "simulate_model_pair",
    "simulate_accuracy_model",
    "evolve_predictions",
]
