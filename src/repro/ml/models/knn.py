"""k-nearest-neighbours classifier (Euclidean, chunked, numpy only).

Used in examples as a second "real" model family so CI comparisons
between genuinely different model classes (kNN vs logistic regression)
can be demonstrated.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.utils.validation import check_positive_int

__all__ = ["KNearestNeighbors"]


class KNearestNeighbors:
    """Plain kNN with majority voting (ties -> smallest class id).

    Parameters
    ----------
    k:
        Number of neighbours.
    chunk_size:
        Rows of the query matrix processed per distance block, bounding
        peak memory at ``chunk_size * len(train)`` floats.
    """

    def __init__(self, k: int = 5, *, chunk_size: int = 256):
        self.k = check_positive_int(k, "k")
        self.chunk_size = check_positive_int(chunk_size, "chunk_size")
        self._train_x: np.ndarray | None = None
        self._train_y: np.ndarray | None = None
        self._n_classes: int = 0

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "KNearestNeighbors":
        """Memorize the training set."""
        X = np.asarray(features, dtype=float)
        y = np.asarray(labels)
        if X.ndim != 2:
            raise InvalidParameterError(f"features must be 2-D, got shape {X.shape}")
        if len(X) != len(y):
            raise InvalidParameterError("features and labels must align")
        if self.k > len(X):
            raise InvalidParameterError(
                f"k={self.k} exceeds training-set size {len(X)}"
            )
        self._train_x = X
        self._train_y = y
        self._n_classes = int(y.max()) + 1
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Majority vote among the k nearest training points."""
        if self._train_x is None or self._train_y is None:
            raise InvalidParameterError("model is not fitted")
        Q = np.asarray(features, dtype=float)
        out = np.empty(len(Q), dtype=self._train_y.dtype)
        train_sq = np.sum(self._train_x**2, axis=1)
        for start in range(0, len(Q), self.chunk_size):
            block = Q[start : start + self.chunk_size]
            # Squared Euclidean distances via the expansion trick.
            d2 = (
                np.sum(block**2, axis=1)[:, None]
                - 2.0 * block @ self._train_x.T
                + train_sq[None, :]
            )
            nearest = np.argpartition(d2, self.k - 1, axis=1)[:, : self.k]
            votes = self._train_y[nearest]
            counts = np.zeros((len(block), self._n_classes), dtype=int)
            for c in range(self._n_classes):
                counts[:, c] = (votes == c).sum(axis=1)
            out[start : start + self.chunk_size] = counts.argmax(axis=1)
        return out
