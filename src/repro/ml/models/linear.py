"""Multinomial logistic regression trained with batch gradient descent.

A real, trainable classifier (numpy only) used by the end-to-end examples
so the full pipeline — train, commit, CI-evaluate — runs without any
simulation shortcut.  Vectorized throughout per the ml-systems guide; no
per-example Python loops.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_positive, check_positive_int

__all__ = ["SoftmaxRegression"]


def _softmax(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


class SoftmaxRegression:
    """Linear classifier with softmax output and cross-entropy loss.

    Parameters
    ----------
    n_classes:
        Size of the label space (labels must be ``0 .. n_classes-1``).
    learning_rate:
        Gradient-descent step size.
    n_epochs:
        Full-batch epochs.
    l2:
        L2 regularization strength on the weights (not the bias).
    seed:
        Initialization seed.
    """

    def __init__(
        self,
        n_classes: int,
        *,
        learning_rate: float = 0.5,
        n_epochs: int = 200,
        l2: float = 1e-4,
        seed=None,
    ):
        self.n_classes = check_positive_int(n_classes, "n_classes")
        self.learning_rate = check_positive(learning_rate, "learning_rate")
        self.n_epochs = check_positive_int(n_epochs, "n_epochs")
        if l2 < 0:
            raise InvalidParameterError(f"l2 must be >= 0, got {l2}")
        self.l2 = l2
        self._rng = ensure_rng(seed)
        self.weights: np.ndarray | None = None
        self.bias: np.ndarray | None = None
        self.loss_history: list[float] = []

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "SoftmaxRegression":
        """Train on a dense feature matrix ``(m, k)`` and integer labels."""
        X = np.asarray(features, dtype=float)
        y = np.asarray(labels)
        if X.ndim != 2:
            raise InvalidParameterError(f"features must be 2-D, got shape {X.shape}")
        if len(X) != len(y):
            raise InvalidParameterError("features and labels must align")
        if y.min() < 0 or y.max() >= self.n_classes:
            raise InvalidParameterError(
                f"labels must be in [0, {self.n_classes}), got "
                f"[{y.min()}, {y.max()}]"
            )
        m, k = X.shape
        self.weights = self._rng.normal(0.0, 0.01, size=(k, self.n_classes))
        self.bias = np.zeros(self.n_classes)
        onehot = np.zeros((m, self.n_classes))
        onehot[np.arange(m), y] = 1.0
        self.loss_history = []
        for _ in range(self.n_epochs):
            probs = _softmax(X @ self.weights + self.bias)
            # Cross-entropy with the standard epsilon clamp.
            loss = -np.mean(np.log(np.clip(probs[np.arange(m), y], 1e-12, None)))
            loss += 0.5 * self.l2 * float(np.sum(self.weights**2))
            self.loss_history.append(loss)
            grad_logits = (probs - onehot) / m
            grad_w = X.T @ grad_logits + self.l2 * self.weights
            grad_b = grad_logits.sum(axis=0)
            self.weights -= self.learning_rate * grad_w
            self.bias -= self.learning_rate * grad_b
        return self

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Class probabilities, shape ``(m, n_classes)``."""
        if self.weights is None or self.bias is None:
            raise InvalidParameterError("model is not fitted")
        X = np.asarray(features, dtype=float)
        return _softmax(X @ self.weights + self.bias)

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Most probable class per example."""
        return self.predict_proba(features).argmax(axis=1)
