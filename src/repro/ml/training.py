"""Small training-loop helpers for the end-to-end examples.

Produces *genuine* incremental development histories: the same model
family trained on growing data / better hyperparameters, yielding a
sequence of models whose accuracy actually improves — the input the CI
engine consumes in the real-training example.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.ml.metrics import accuracy
from repro.ml.models.linear import SoftmaxRegression
from repro.utils.validation import check_positive_int

__all__ = ["TrainedIteration", "train_incremental_history"]


@dataclass(frozen=True)
class TrainedIteration:
    """One genuinely-trained development iteration.

    Attributes
    ----------
    index:
        1-based iteration number.
    model:
        The fitted model.
    train_size:
        Training examples used.
    train_accuracy:
        Accuracy on the training slice (the developer's view).
    """

    index: int
    model: SoftmaxRegression
    train_size: int
    train_accuracy: float


def train_incremental_history(
    features: np.ndarray,
    labels: np.ndarray,
    *,
    n_classes: int,
    train_sizes: Sequence[int],
    n_epochs: int = 150,
    seed=0,
) -> list[TrainedIteration]:
    """Train one softmax model per training-set size.

    Each iteration sees a prefix of the training data (the "more data
    arrived this week" development story), so later models genuinely
    dominate earlier ones in expectation while staying highly correlated
    in their predictions — the regime the paper's Pattern 2 exploits.
    """
    X = np.asarray(features, dtype=float)
    y = np.asarray(labels)
    iterations: list[TrainedIteration] = []
    for i, size in enumerate(train_sizes):
        size = check_positive_int(size, "train_size")
        size = min(size, len(X))
        model = SoftmaxRegression(
            n_classes=n_classes, n_epochs=n_epochs, seed=seed
        ).fit(X[:size], y[:size])
        iterations.append(
            TrainedIteration(
                index=i + 1,
                model=model,
                train_size=size,
                train_accuracy=accuracy(model.predict(X[:size]), y[:size]),
            )
        )
    return iterations
