"""Command-line interface: the sample-size estimator as a shell utility.

The paper frames the Sample Size Estimator as a *system utility* the
integration team runs before collecting data (§2.3).  This CLI exposes it:

``python -m repro plan``
    Size a condition given reliability/adaptivity/steps — prints the plan
    (labels, unlabeled pool, per-commit active-labeling cost) followed by
    the planning-cache deltas the derivation produced.  With
    ``--workers N`` (or ``auto``) the cold derivation runs on the
    parallel planning executor; either way the process-wide caches are
    left warm, so operators can pre-pay planning cost before traffic
    arrives.

``python -m repro validate <script.yml>``
    Parse and validate a ``.travis.yml``-style script's ``ml:`` section,
    printing the normalized configuration and its plan.

``python -m repro figure2``
    Regenerate the paper's Figure 2 table on stdout.

``python -m repro ops <state-dir>``
    Restore a persisted CI service (snapshot + journal replay, without
    mutating the journal) and print its operations report — pool runway,
    generation budgets, cache statistics, journal lag, reliability
    counters.  ``--json`` emits the machine-readable form.  ``--fsck``
    instead runs the read-only state-directory doctor
    (:mod:`repro.reliability.fsck`): snapshot classification, quarantined
    files, replay depth — exit code 2 when nothing is restorable.

Examples
--------
::

    python -m repro plan --condition "n - o > 0.02 +/- 0.01 /\\ d < 0.1 +/- 0.01" \\
        --reliability 0.9999 --adaptivity full --steps 32
    python -m repro plan --condition "n - o > 0.02 +/- 0.02" \\
        --reliability 0.998 --steps 7 --variance-bound 0.1
    python -m repro validate .travis.yml
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.core.estimators.api import SampleSizeEstimator
from repro.core.script.config import CIScript
from repro.exceptions import ReproError

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ease.ml/ci sample-size estimation and script validation",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    plan = sub.add_parser("plan", help="size a test condition")
    plan.add_argument(
        "--condition", required=True, help="DSL condition, e.g. 'n - o > 0.02 +/- 0.01'"
    )
    group = plan.add_mutually_exclusive_group(required=True)
    group.add_argument("--reliability", type=float, help="1 - delta, e.g. 0.9999")
    group.add_argument("--delta", type=float, help="failure budget directly")
    plan.add_argument(
        "--adaptivity",
        default="none",
        choices=["none", "full", "firstChange"],
        help="interaction mode (default: none)",
    )
    plan.add_argument("--steps", type=int, default=1, help="testset lifetime H")
    plan.add_argument(
        "--variance-bound",
        type=float,
        default=None,
        help="a-priori bound on consecutive-model prediction difference "
        "(enables the Pattern 2 optimization)",
    )
    plan.add_argument(
        "--baseline",
        action="store_true",
        help="disable the Section 4 optimizations (Hoeffding only)",
    )
    plan.add_argument(
        "--exact-binomial",
        action="store_true",
        help="size single-variable clauses by exact binomial inversion (§4.3)",
    )
    plan.add_argument(
        "--workers",
        default=None,
        help="planning worker processes: a count, 'auto' (one per CPU) or "
        "'serial' (default: serial, or $REPRO_PLAN_WORKERS)",
    )
    plan.add_argument(
        "--precision",
        default="float64",
        choices=["float64", "float32"],
        help="planning-kernel accumulation tier: float32 halves memory "
        "traffic; adopted plans are certified against the float64 "
        "reference either way (default: float64)",
    )

    validate = sub.add_parser("validate", help="validate a script file")
    validate.add_argument("script", type=Path, help="path to the .travis.yml-style file")

    sub.add_parser("figure2", help="regenerate the paper's Figure 2 table")

    ops = sub.add_parser(
        "ops", help="operations report of a persisted CI service"
    )
    ops.add_argument(
        "state_dir",
        type=Path,
        help="state directory written by CIService.persist_to()",
    )
    ops.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable report instead of the table",
    )
    ops.add_argument(
        "--fsck",
        action="store_true",
        help="integrity-check the state directory instead of restoring it: "
        "classify snapshots, list quarantined files, measure replay depth "
        "(read-only — never repairs, truncates or journals)",
    )

    fleet = sub.add_parser(
        "fleet", help="operations report of a multi-tenant fleet root"
    )
    fleet.add_argument(
        "root",
        type=Path,
        help="fleet root directory owned by CIFleet (contains tenants/)",
    )
    fleet.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable report instead of the table",
    )
    fleet.add_argument(
        "--fsck",
        action="store_true",
        help="integrity-sweep every tenant state directory and intake queue "
        "instead of reporting operations (read-only — never repairs)",
    )
    fleet.add_argument(
        "--tenant",
        metavar="ID",
        help="report one tenant's full CIService operations report instead "
        "of the fleet summary",
    )

    experiments = sub.add_parser(
        "experiments", help="run all E1-E9 experiments, writing JSON artifacts"
    )
    experiments.add_argument(
        "--output", type=Path, default=Path("results"), help="artifact directory"
    )
    experiments.add_argument(
        "--quick", action="store_true", help="shrink Monte-Carlo workloads"
    )
    return parser


def _run_plan(args: argparse.Namespace) -> int:
    from repro.stats.cache import all_cache_info
    from repro.stats.parallel import resolve_workers

    workers = resolve_workers(args.workers)
    before = {name: info.currsize for name, info in all_cache_info().items()}
    estimator = SampleSizeEstimator(
        optimizations="none" if args.baseline else "auto",
        use_exact_binomial=args.exact_binomial,
        workers=args.workers,
        precision=args.precision,
    )
    plan = estimator.plan(
        args.condition,
        reliability=args.reliability,
        delta=args.delta,
        adaptivity=args.adaptivity,
        steps=args.steps,
        known_variance_bound=args.variance_bound,
    )
    print(plan.describe())
    print()
    print(f"cache deltas ({workers} worker process(es)):")
    warmed = False
    for name, info in sorted(all_cache_info().items()):
        grown = info.currsize - before.get(name, 0)
        if grown > 0:
            warmed = True
            print(f"  {name:<42} +{grown} entries ({info.currsize} total)")
    if not warmed:
        print("  (all planning caches already warm)")
    return 0


def _run_validate(args: argparse.Namespace) -> int:
    script = CIScript.from_file(args.script)
    print("script is valid:")
    print(script.describe())
    plan = SampleSizeEstimator().plan(
        script.condition,
        delta=script.delta,
        adaptivity=script.adaptivity,
        steps=script.steps,
        known_variance_bound=script.variance_bound,
    )
    print()
    print(plan.describe())
    return 0


def _run_ops(args: argparse.Namespace) -> int:
    from repro.ci.persistence import open_state_dir
    from repro.ci.service import CIService
    from repro.utils.serialization import dumps

    if args.fsck:
        from repro.reliability.fsck import fsck_state_dir

        report = fsck_state_dir(args.state_dir)
        print(dumps(report) if args.json else report.describe())
        return 0 if report.restorable else 2
    # Restore without recording: inspection must never mutate the journal
    # (and, with record=False, never quarantines corrupt snapshots either).
    store, journal = open_state_dir(args.state_dir, create=False)
    service = CIService.restore(store, journal, record=False)
    report = service.operations()
    print(dumps(report) if args.json else report.describe())
    return 0


def _run_fleet(args: argparse.Namespace) -> int:
    from repro.fleet import CIFleet
    from repro.utils.serialization import dumps

    fleet = CIFleet(args.root, create=False)
    if args.fsck:
        report = fleet.fsck()
        print(dumps(report) if args.json else report.describe())
        return 0 if report.healthy else 2
    if not (args.root / "tenants").is_dir():
        print(f"error: no fleet root at {args.root}", file=sys.stderr)
        return 2
    if args.tenant:
        # Full single-tenant report: restored read-only, never resident.
        report = fleet.tenant_operations(args.tenant)
    else:
        report = fleet.operations()
    print(dumps(report) if args.json else report.describe())
    return 0


def _run_experiments(args: argparse.Namespace) -> int:
    from repro.experiments.runner import run_all

    records = run_all(args.output, quick=args.quick)
    for record in records:
        print(f"{record.experiment_id:16} -> {record.path}")
    print(f"wrote {len(records)} artifacts + summary.json to {args.output}/")
    return 0


def _run_figure2(_: argparse.Namespace) -> int:
    from repro.experiments.figure2 import run_figure2
    from repro.utils.formatting import Table, format_count

    table = Table(
        ["1-delta", "eps", "F1/F4 none", "F1/F4 full", "F2/F3 none", "F2/F3 full"],
        align=[">"] * 6,
        title="Figure 2: samples required, H = 32 ('*' = impractical)",
    )
    for row in run_figure2():
        flags = row.impractical()
        table.add_row(
            [
                row.reliability,
                row.tolerance,
                format_count(row.f1_none) + ("*" if flags["f1_none"] else ""),
                format_count(row.f1_full) + ("*" if flags["f1_full"] else ""),
                format_count(row.f2_none) + ("*" if flags["f2_none"] else ""),
                format_count(row.f2_full) + ("*" if flags["f2_full"] else ""),
            ]
        )
    print(table.render())
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "plan": _run_plan,
        "validate": _run_validate,
        "figure2": _run_figure2,
        "ops": _run_ops,
        "fleet": _run_fleet,
        "experiments": _run_experiments,
    }
    try:
        return handlers[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
