"""repro — a from-scratch reproduction of **ease.ml/ci** (Renggli et al.,
MLSys 2019): continuous integration for machine learning models with
rigorous (epsilon, delta) guarantees at practical labeling cost.

Quick start::

    from repro import SampleSizeEstimator

    est = SampleSizeEstimator()
    plan = est.plan("n - o > 0.02 +/- 0.01 /\\\\ d < 0.1 +/- 0.01",
                    reliability=0.9999, adaptivity="full", steps=32)
    print(plan.samples)          # testset size to request from the user
    print(plan.describe())

See ``README.md`` for the architecture overview, ``DESIGN.md`` for the
system inventory and ``EXPERIMENTS.md`` for the paper-vs-measured record.
"""

from repro.core.dsl import parse_condition, parse_expression
from repro.core.dsl.nodes import Clause, Formula
from repro.core.estimators import (
    Adaptivity,
    ClausePlan,
    ClauseStrategy,
    SampleSizeEstimator,
    SampleSizePlan,
)
from repro.core.evaluation import ConditionEvaluator, EvaluationResult
from repro.core.intervals import Interval
from repro.core.logic import Mode, TernaryResult, resolve_ternary
from repro.core.script import CIScript
from repro.core.testset import (
    GenerationRotationEvent,
    PoolLowWatermarkEvent,
    Testset,
    TestsetManager,
    TestsetPool,
)
from repro.core.alarm import AlarmEvent, AlarmReason, NewTestsetAlarm
from repro.core.engine import CIEngine, CommitResult
from repro.stats.estimation import PairedSample
from repro.exceptions import (
    ReproError,
    ParseError,
    ScriptError,
    InvalidParameterError,
    TestsetExhaustedError,
    TestsetSizeError,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # DSL
    "parse_condition",
    "parse_expression",
    "Clause",
    "Formula",
    # estimation
    "Adaptivity",
    "SampleSizeEstimator",
    "SampleSizePlan",
    "ClausePlan",
    "ClauseStrategy",
    # evaluation
    "ConditionEvaluator",
    "EvaluationResult",
    "Interval",
    "Mode",
    "TernaryResult",
    "resolve_ternary",
    "PairedSample",
    # engine
    "CIScript",
    "Testset",
    "TestsetManager",
    "TestsetPool",
    "PoolLowWatermarkEvent",
    "GenerationRotationEvent",
    "AlarmEvent",
    "AlarmReason",
    "NewTestsetAlarm",
    "CIEngine",
    "CommitResult",
    # errors
    "ReproError",
    "ParseError",
    "ScriptError",
    "InvalidParameterError",
    "TestsetExhaustedError",
    "TestsetSizeError",
]
