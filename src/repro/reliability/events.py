"""The process-wide reliability event log.

Every degraded-mode transition the reliability layer performs is
recorded here so operators can see *that* the system healed itself, not
just that results kept flowing: a planning pool respawned after a worker
crash, the executor fell back to the serial backend, a restore skipped a
corrupt snapshot and replayed a longer journal tail, a notification was
retried or dead-lettered.  The log is runtime operational state — like
cache statistics it is per-process, never snapshotted, and starts empty
after a restore (the restore's own fallback events are the first
entries the new process records).

:meth:`repro.ci.service.CIService.operations` folds the log into its
report and ``repro ops`` renders it; tests assert on it directly.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "ReliabilityEvent",
    "record_event",
    "reliability_events",
    "clear_events",
]


@dataclass(frozen=True)
class ReliabilityEvent:
    """One recovery or degradation action taken by the reliability layer.

    Attributes
    ----------
    kind:
        What happened — e.g. ``"pool-respawn"``, ``"planning-degraded"``,
        ``"snapshot-quarantined"``, ``"snapshot-fallback"``,
        ``"journal-torn-tail"``, ``"notification-retry"``,
        ``"notification-dead-letter"``.
    site:
        Where — the subsystem or injection-point name that observed the
        failure (``"stats.parallel"``, ``"ci.persistence"``, ...).
    detail:
        JSON-compatible context (paths, attempt counts, error strings).
    """

    kind: str
    site: str
    detail: dict[str, Any] = field(default_factory=dict)


_EVENTS: list[ReliabilityEvent] = []
_LOCK = threading.Lock()


def record_event(kind: str, site: str, **detail: Any) -> ReliabilityEvent:
    """Append one event to the process-wide log and return it."""
    event = ReliabilityEvent(kind=kind, site=site, detail=dict(detail))
    with _LOCK:
        _EVENTS.append(event)
    return event


def reliability_events(kind: str | None = None) -> list[ReliabilityEvent]:
    """All recorded events in order, optionally filtered by ``kind``."""
    with _LOCK:
        events = list(_EVENTS)
    if kind is None:
        return events
    return [event for event in events if event.kind == kind]


def clear_events() -> None:
    """Empty the log (test isolation)."""
    with _LOCK:
        _EVENTS.clear()
