"""The process-wide reliability event log.

Every degraded-mode transition the reliability layer performs is
recorded here so operators can see *that* the system healed itself, not
just that results kept flowing: a planning pool respawned after a worker
crash, the executor fell back to the serial backend, a restore skipped a
corrupt snapshot and replayed a longer journal tail, a notification was
retried or dead-lettered, a fleet tenant tripped its circuit breaker.
The log is runtime operational state — like cache statistics it is
per-process, never snapshotted, and starts empty after a restore (the
restore's own fallback events are the first entries the new process
records).

The log is a fixed-capacity ring buffer (default
:data:`DEFAULT_EVENT_CAPACITY` entries): a long-running fleet that
hydrates, evicts and retries for weeks keeps the newest events and a
:func:`dropped_event_count` tally instead of leaking memory.  Tests that
assert on the log record far fewer events than the capacity, so
:func:`reliability_events` semantics (all retained events, in order,
optionally filtered by kind) are unchanged.

:meth:`repro.ci.service.CIService.operations` folds the log into its
report and ``repro ops`` renders it; tests assert on it directly.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "DEFAULT_EVENT_CAPACITY",
    "ReliabilityEvent",
    "record_event",
    "reliability_events",
    "dropped_event_count",
    "event_capacity",
    "set_event_capacity",
    "clear_events",
]

#: How many events the ring buffer retains before dropping the oldest.
DEFAULT_EVENT_CAPACITY = 4096


@dataclass(frozen=True)
class ReliabilityEvent:
    """One recovery or degradation action taken by the reliability layer.

    Attributes
    ----------
    kind:
        What happened — e.g. ``"pool-respawn"``, ``"planning-degraded"``,
        ``"snapshot-quarantined"``, ``"snapshot-fallback"``,
        ``"journal-torn-tail"``, ``"notification-retry"``,
        ``"notification-dead-letter"``, ``"breaker-open"``,
        ``"tenant-evicted"``.
    site:
        Where — the subsystem or injection-point name that observed the
        failure (``"stats.parallel"``, ``"ci.persistence"``,
        ``"fleet.gateway"``, ...).
    detail:
        JSON-compatible context (paths, attempt counts, error strings).
    """

    kind: str
    site: str
    detail: dict[str, Any] = field(default_factory=dict)


_EVENTS: deque[ReliabilityEvent] = deque(maxlen=DEFAULT_EVENT_CAPACITY)
_DROPPED = 0
_LOCK = threading.Lock()


def record_event(kind: str, site: str, **detail: Any) -> ReliabilityEvent:
    """Append one event to the process-wide log and return it.

    When the ring buffer is full the oldest retained event is dropped
    (and tallied on :func:`dropped_event_count`) to make room.
    """
    global _DROPPED
    event = ReliabilityEvent(kind=kind, site=site, detail=dict(detail))
    with _LOCK:
        if _EVENTS.maxlen is not None and len(_EVENTS) == _EVENTS.maxlen:
            _DROPPED += 1
        _EVENTS.append(event)
    return event


def reliability_events(kind: str | None = None) -> list[ReliabilityEvent]:
    """All retained events in order, optionally filtered by ``kind``."""
    with _LOCK:
        events = list(_EVENTS)
    if kind is None:
        return events
    return [event for event in events if event.kind == kind]


def dropped_event_count() -> int:
    """Events the ring buffer has discarded since the last clear."""
    with _LOCK:
        return _DROPPED


def event_capacity() -> int:
    """The ring buffer's current capacity."""
    with _LOCK:
        return _EVENTS.maxlen or 0


def set_event_capacity(capacity: int) -> None:
    """Resize the ring buffer, keeping the newest ``capacity`` events.

    Shrinking discards the oldest retained events (they count toward
    :func:`dropped_event_count`); growing never loses anything.
    """
    global _EVENTS, _DROPPED
    if capacity < 1:
        raise ValueError(f"event capacity must be >= 1, got {capacity}")
    with _LOCK:
        retained = list(_EVENTS)
        _DROPPED += max(0, len(retained) - capacity)
        _EVENTS = deque(retained[-capacity:], maxlen=capacity)


def clear_events() -> None:
    """Empty the log and reset the dropped tally (test isolation)."""
    global _DROPPED
    with _LOCK:
        _EVENTS.clear()
        _DROPPED = 0
