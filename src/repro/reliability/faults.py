"""Deterministic fault injection: seeded chaos with named injection points.

Production failures — a planning worker OOM-killed mid-sweep, a snapshot
torn by a dying disk, a webhook endpoint timing out — are rare and
unreproducible exactly when a test needs them.  This module makes them
*scheduled*: instrumented code traverses named **injection points**
(:func:`fault_point`), and an installed :class:`FaultInjector` decides,
deterministically, whether a fault fires at each traversal.

Injection points wired into the system
--------------------------------------
========================  =====================================================
site                      instrumented where
========================  =====================================================
``executor.task``         entry of every planning-executor worker task
                          (:mod:`repro.stats.parallel`) — ``kill`` /
                          ``hang`` / ``raise`` here simulate crashed,
                          wedged and flaky workers
``snapshot.write``        :meth:`SnapshotStore.save` — ``tear`` leaves a
                          silently truncated snapshot on disk (the
                          bit-rot / non-atomic-filesystem case)
``snapshot.fsync``        the snapshot's pre-rename fsync — ``raise``
                          simulates a failing disk
``journal.append``        :meth:`EventJournal.append` — ``tear`` writes a
                          partial line then raises (crash mid-append)
``journal.write``         the journal's per-append ``write`` — ``errno``
                          (ENOSPC/EIO) is the full-disk / dying-disk
                          case before any byte lands
``journal.fsync``         the journal's per-append fsync
``journal.compact``       :meth:`EventJournal.compact`, before the
                          temp-then-rename rewrite — an aborted
                          compaction leaves the original journal intact
``snapshot.rename``       the snapshot's final ``os.replace`` — ``errno``
                          leaves the temp file behind and no new
                          generation visible; the previous snapshot
                          still restores
``intake.write``          :meth:`IntakeQueue._append_record`'s write —
                          ``errno`` rejects the submission before any
                          byte lands (by the crash model it was never
                          accepted)
``notification.send``     :class:`repro.ci.notifications.RetryingTransport`
                          — ``raise`` is a flaky transport (retried),
                          ``drop`` loses the message silently
``intake.append``         :meth:`repro.fleet.intake.IntakeQueue.append` —
                          ``tear`` writes a partial intake line then
                          raises (crash mid-accept; the torn tail is
                          quarantined and truncated at the next open)
``fleet.hydrate``         :meth:`repro.fleet.CIFleet.service` — ``raise``
                          simulates a tenant whose cold resume fails
                          (counts against its circuit breaker)
``fleet.evict``           the fleet's LRU eviction (snapshot + close) —
                          ``raise`` aborts the eviction; the tenant
                          stays resident, nothing is lost
``fleet.process``         traversed before each intake entry is applied
                          to a tenant's engine; the per-tenant variant
                          ``fleet.process.<tenant-id>`` is traversed
                          right after it, so a chaos schedule can fail
                          exactly one tenant's engine repeatedly (the
                          breaker-isolation scenario)
``shm.attach``            :func:`repro.stats.batch.attach_shared_table` —
                          ``raise`` simulates a worker that cannot map
                          the shared log-factorial segment (unlinked by
                          a dying owner, exhausted ``/dev/shm``); the
                          manifest merge falls back to the private
                          regrow, so planning results are unchanged
========================  =====================================================

Determinism
-----------
A rule fires either *positionally* (``at=N``: the Nth traversal of its
site) or *probabilistically* (``probability=p``): traversal ``n`` of
site ``s`` under seed ``q`` draws ``Random(f"{q}:{s}:{n}").random()`` —
a pure function of (seed, site, occurrence index), independent of call
interleaving across sites, threads or repeated runs.  Every chaos test
is therefore reproducible from its rule list and seed alone.

Traversal counters are per-process by default.  Worker processes
inherit the installed injector through ``fork`` (and the environment
spec below under ``spawn``), but each counts its own traversals — a
``kill at=1`` rule kills *every* fresh worker's first task, which is
exactly the repeated-failure ladder the supervisor must degrade
through.  For kill-*once* semantics pass ``counter_dir``: counters
then live in lock-protected files shared by every process of the test.

Safety
------
``kill`` and ``hang`` actions only ever fire inside executor worker
processes (marked by the pool initializer via :func:`mark_worker`);
in the parent they are skipped.  The ``executor.task`` point goes
further: it is only *traversed* in worker processes at all, so a
degraded-to-serial planning pass re-running the task functions in the
parent sits outside the injection surface for every action — a
persistent ``raise`` rule cannot crash the fallback that exists to
survive it.

Environment activation: when no injector is installed,
``REPRO_FAULT_SPEC`` (a JSON list of rule mappings) plus
``REPRO_FAULT_SEED`` activate one lazily — this is how the CI chaos leg
and spawn-context workers pick up the schedule.
"""

from __future__ import annotations

import errno
import json
import os
import random
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator, Sequence

__all__ = [
    "InjectedFault",
    "FaultRule",
    "FaultInjector",
    "install_injector",
    "uninstall_injector",
    "get_injector",
    "fault_point",
    "injected_faults",
    "mark_worker",
    "in_worker",
    "seed_from_env",
    "FAULT_SPEC_ENV",
    "FAULT_SEED_ENV",
]

#: JSON list of rule mappings activating an injector process-wide.
FAULT_SPEC_ENV = "REPRO_FAULT_SPEC"
#: Seed for probabilistic rules (and for tests that build their own
#: schedules from it); integer, default 0.
FAULT_SEED_ENV = "REPRO_FAULT_SEED"

_ACTIONS = frozenset({"raise", "kill", "hang", "tear", "drop", "errno"})
#: Actions that must only fire inside an executor worker process.
_WORKER_ONLY_ACTIONS = frozenset({"kill", "hang"})


class InjectedFault(Exception):
    """An injected failure.

    Deliberately *not* a :class:`~repro.exceptions.ReproError`: injected
    faults simulate infrastructure failures (a dead worker, a failing
    disk, a flaky webhook), which the library's own error contract does
    not cover.  The supervised executor treats it as retryable; the
    retrying transport treats it as a delivery failure.
    """

    def __init__(self, site: str, message: str | None = None):
        self.site = site
        super().__init__(message or f"injected fault at {site!r}")


@dataclass(frozen=True)
class FaultRule:
    """One scheduled fault.

    Attributes
    ----------
    site:
        The injection-point name this rule watches.
    action:
        ``"raise"`` (raise :class:`InjectedFault`), ``"kill"``
        (``os._exit`` — worker processes only), ``"hang"`` (sleep
        ``hang_seconds`` — worker processes only), ``"tear"`` (the
        instrumented writer truncates its write at byte ``tear_at``),
        ``"drop"`` (the instrumented sender silently loses the message),
        ``"errno"`` (raise a real :class:`OSError` carrying
        ``errno_name`` — the disk-failure case: the instrumented code
        must survive genuine ``ENOSPC``/``EIO``, not just the library's
        own exception types).
    at:
        Fire on exactly the ``at``-th traversal of the site (1-based).
        ``None`` means fire probabilistically instead.
    probability:
        Per-traversal firing probability for ``at=None`` rules, drawn
        deterministically from the injector seed.
    times:
        Maximum number of firings (per process, or per ``counter_dir``
        when the injector shares counters); ``None`` = unlimited.
    tear_at:
        Byte offset for ``tear`` actions (the write keeps exactly this
        many bytes).
    hang_seconds:
        Sleep duration for ``hang`` actions.
    errno_name:
        Symbolic errno for ``errno`` actions (``"ENOSPC"``, ``"EIO"``,
        or any name the :mod:`errno` module defines).
    """

    site: str
    action: str
    at: int | None = None
    probability: float = 0.0
    times: int | None = 1
    tear_at: int = 0
    hang_seconds: float = 30.0
    errno_name: str = "ENOSPC"

    def __post_init__(self):
        if self.action not in _ACTIONS:
            raise ValueError(
                f"unknown fault action {self.action!r}; expected one of "
                f"{sorted(_ACTIONS)}"
            )
        if self.action == "errno" and not hasattr(errno, self.errno_name):
            raise ValueError(
                f"unknown errno name {self.errno_name!r}; expected a "
                "symbolic name from the errno module (e.g. ENOSPC, EIO)"
            )
        if self.at is not None and self.at < 1:
            raise ValueError(f"at must be >= 1, got {self.at}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {self.probability}")


@dataclass(frozen=True)
class FiredFault:
    """Audit record of one firing (site, action, traversal index)."""

    site: str
    action: str
    occurrence: int
    rule: FaultRule = field(repr=False)


class FaultInjector:
    """Evaluates :class:`FaultRule` schedules at injection points.

    Parameters
    ----------
    rules:
        The fault schedule.
    seed:
        Drives the probabilistic rules (see module docstring).
    counter_dir:
        Optional directory for cross-process traversal counters and
        firing tallies (lock-protected files).  Without it, counters are
        per-process — forked workers start from the parent's counts at
        fork time and diverge independently.
    """

    def __init__(
        self,
        rules: Sequence[FaultRule] = (),
        *,
        seed: int = 0,
        counter_dir: str | os.PathLike | None = None,
    ):
        self.rules = list(rules)
        self.seed = int(seed)
        self.counter_dir = os.fspath(counter_dir) if counter_dir is not None else None
        self._counts: dict[str, int] = {}
        self._firings: dict[int, int] = {}
        self._fired: list[FiredFault] = []
        self._lock = threading.Lock()

    # -- audit ---------------------------------------------------------------
    @property
    def fired(self) -> list[FiredFault]:
        """Every firing this process observed, in order."""
        with self._lock:
            return list(self._fired)

    # -- counters ------------------------------------------------------------
    def _counter_path(self, name: str) -> str:
        assert self.counter_dir is not None
        safe = "".join(c if c.isalnum() or c in "._-" else "_" for c in name)
        return os.path.join(self.counter_dir, safe + ".count")

    def _shared_increment(self, name: str) -> int:
        """Atomically increment a cross-process counter file; return it."""
        import fcntl

        os.makedirs(self.counter_dir, exist_ok=True)
        path = self._counter_path(name)
        with open(path, "a+") as handle:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            handle.seek(0)
            raw = handle.read().strip()
            value = int(raw) + 1 if raw else 1
            handle.seek(0)
            handle.truncate()
            handle.write(str(value))
            handle.flush()
        return value

    def _increment(self, name: str) -> int:
        if self.counter_dir is not None:
            return self._shared_increment(name)
        with self._lock:
            self._counts[name] = self._counts.get(name, 0) + 1
            return self._counts[name]

    def _rule_firings(self, index: int) -> int:
        if self.counter_dir is not None:
            path = self._counter_path(f"rule-{index}-fired")
            try:
                with open(path) as handle:
                    return int(handle.read().strip() or 0)
            except (FileNotFoundError, ValueError):
                return 0
        with self._lock:
            return self._firings.get(index, 0)

    def _record_firing(self, index: int, fault: FiredFault) -> None:
        if self.counter_dir is not None:
            self._shared_increment(f"rule-{index}-fired")
        with self._lock:
            self._firings[index] = self._firings.get(index, 0) + 1
            self._fired.append(fault)

    # -- evaluation ----------------------------------------------------------
    def _draw(self, site: str, occurrence: int) -> float:
        return random.Random(f"{self.seed}:{site}:{occurrence}").random()

    def check(self, site: str) -> FiredFault | None:
        """Evaluate one traversal of ``site``; return the firing, if any.

        At most one rule fires per traversal (first match in rule
        order).  Worker-only actions never fire in the parent process.
        """
        if not any(rule.site == site for rule in self.rules):
            return None
        occurrence = self._increment(site)
        for index, rule in enumerate(self.rules):
            if rule.site != site:
                continue
            if rule.action in _WORKER_ONLY_ACTIONS and not in_worker():
                continue
            if rule.times is not None and self._rule_firings(index) >= rule.times:
                continue
            if rule.at is not None:
                if occurrence != rule.at:
                    continue
            elif self._draw(site, occurrence) >= rule.probability:
                continue
            fault = FiredFault(
                site=site, action=rule.action, occurrence=occurrence, rule=rule
            )
            self._record_firing(index, fault)
            return fault
        return None


# ---------------------------------------------------------------------------
# Process-wide installation
# ---------------------------------------------------------------------------

_INSTALLED: FaultInjector | None = None
_ENV_CHECKED = False
_IS_WORKER = False


def install_injector(injector: FaultInjector) -> FaultInjector:
    """Install the process-wide injector (replacing any previous one)."""
    global _INSTALLED
    _INSTALLED = injector
    return injector


def uninstall_injector() -> None:
    """Remove the installed injector (environment activation stays off)."""
    global _INSTALLED
    _INSTALLED = None


def _from_env() -> FaultInjector | None:
    spec = os.environ.get(FAULT_SPEC_ENV)
    if not spec:
        return None
    rules = [FaultRule(**mapping) for mapping in json.loads(spec)]
    return FaultInjector(rules, seed=seed_from_env())


def get_injector() -> FaultInjector | None:
    """The installed injector, activating from the environment lazily."""
    global _ENV_CHECKED, _INSTALLED
    if _INSTALLED is not None:
        return _INSTALLED
    if not _ENV_CHECKED:
        _ENV_CHECKED = True
        _INSTALLED = _from_env()
    return _INSTALLED


def seed_from_env(default: int = 0) -> int:
    """The ``REPRO_FAULT_SEED`` value (``default`` when unset/invalid)."""
    raw = os.environ.get(FAULT_SEED_ENV, "")
    try:
        return int(raw)
    except ValueError:
        return default


@contextmanager
def injected_faults(
    rules: Sequence[FaultRule],
    *,
    seed: int = 0,
    counter_dir: str | os.PathLike | None = None,
) -> Iterator[FaultInjector]:
    """Context manager installing (then uninstalling) an injector."""
    previous = _INSTALLED
    injector = install_injector(
        FaultInjector(rules, seed=seed, counter_dir=counter_dir)
    )
    try:
        yield injector
    finally:
        install_injector(previous) if previous is not None else uninstall_injector()


def mark_worker() -> None:
    """Mark this process as an executor worker (enables kill/hang rules)."""
    global _IS_WORKER
    _IS_WORKER = True


def in_worker() -> bool:
    """Whether this process has been marked as an executor worker."""
    return _IS_WORKER


# ---------------------------------------------------------------------------
# The injection point
# ---------------------------------------------------------------------------

def fault_point(site: str) -> FiredFault | None:
    """Traverse injection point ``site``.

    With no injector installed this is a few-nanosecond no-op.  When a
    rule fires: ``raise`` raises :class:`InjectedFault`; ``errno``
    raises a *real* :class:`OSError` with the rule's ``errno_name``
    (deliberately not an :class:`InjectedFault` — the instrumented write
    paths must survive the same exception a genuinely full or dying
    disk produces); ``kill`` exits the process immediately (worker
    processes only — the supervised executor sees a broken pool);
    ``hang`` sleeps ``hang_seconds`` (worker only — the supervisor sees
    a task timeout) and then returns; ``tear`` and ``drop`` are
    returned to the caller, which interprets them (truncate the write
    at ``rule.tear_at`` / lose the message).
    """
    injector = get_injector()
    if injector is None:
        return None
    fault = injector.check(site)
    if fault is None:
        return None
    if fault.action == "raise":
        raise InjectedFault(site)
    if fault.action == "errno":
        code = getattr(errno, fault.rule.errno_name)
        raise OSError(
            code,
            f"{os.strerror(code)} [injected at {site!r}, "
            f"occurrence {fault.occurrence}]",
        )
    if fault.action == "kill":
        os._exit(17)
    if fault.action == "hang":
        time.sleep(fault.rule.hang_seconds)
        return None
    return fault


def torn_bytes(data: bytes, fault: FiredFault | None) -> bytes | None:
    """The truncated write a ``tear`` firing prescribes (else ``None``).

    The kept prefix is clamped to ``len(data)``; a clamp to the full
    length still counts as a tear of zero bytes removed (callers treat
    any non-``None`` return as the torn path).
    """
    if fault is None or fault.action != "tear":
        return None
    return data[: max(0, min(fault.rule.tear_at, len(data)))]
