"""A read-only doctor for CI state directories (``repro ops --fsck``).

After a crash — or worse, after silent disk damage — the first question
an operator asks is *"can this state directory still restore, and how
much journal replay will it take?"*.  :func:`fsck_state_dir` answers it
without mutating anything:

* every snapshot file is classified (``valid`` / ``corrupt`` /
  ``unsupported-version``) by reading its envelope and verifying the
  payload checksum — payloads are never unpickled;
* quarantined files (corrupt snapshots moved aside by a previous
  restore, torn journal tails saved by a previous open) are listed;
* the journal is classified with :func:`repro.ci.persistence.scan_journal`
  — which, unlike opening an :class:`~repro.ci.persistence.EventJournal`,
  never truncates a torn trailing line;
* the *replay depth* is computed: how many journaled commits (and
  events) lie past the newest valid snapshot's anchor, i.e. how much
  work :meth:`CIService.restore` would re-run.

The whole report is JSON-compatible via
:func:`repro.utils.serialization.to_jsonable` and renders for terminals
through :meth:`FsckReport.describe`.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.ci.persistence import JournalScan, SnapshotStore, scan_journal
from repro.exceptions import PersistenceError, SnapshotCorruptError

__all__ = ["SnapshotHealth", "FsckReport", "fsck_state_dir"]


@dataclass(frozen=True)
class SnapshotHealth:
    """Classification of one snapshot file.

    Attributes
    ----------
    sequence:
        The snapshot's generation number (from its file name).
    path:
        The snapshot file.
    status:
        ``"valid"`` (envelope reads, checksum matches),
        ``"corrupt"`` (truncated, bit-rotted, or torn), or
        ``"unsupported-version"`` (written by an incompatible build).
    journal_sequence:
        Replay anchor recorded in the envelope (``None`` unless valid).
    error:
        The integrity failure, for corrupt/unsupported files.
    """

    sequence: int
    path: Path
    status: str
    journal_sequence: int | None = None
    error: str | None = None


@dataclass(frozen=True)
class FsckReport:
    """Everything :func:`fsck_state_dir` learned, without mutating anything.

    Attributes
    ----------
    state_dir:
        The inspected directory.
    exists:
        Whether the directory exists at all (every other field is empty
        when it does not).
    snapshots:
        Per-file classification, oldest first.
    quarantined:
        Files a previous restore/open moved aside (corrupt snapshots,
        torn journal tails) — never deleted, always reported.
    journal:
        Read-only journal classification (torn tail *not* truncated).
    restorable:
        Whether at least one valid snapshot exists *and* its anchor
        covers the journal's compaction boundary — a journal compacted
        past every valid snapshot would leave a replay gap, which is
        unrestorable corruption, not a crash artifact.
    restore_sequence:
        The snapshot generation a restore would load (0 when none).
    replay_commits:
        Journaled commits past that snapshot's anchor — the builds a
        restore re-runs.
    replay_events:
        Total journal records past the anchor (commits plus the audit
        trail).
    """

    state_dir: Path
    exists: bool
    snapshots: tuple[SnapshotHealth, ...]
    quarantined: tuple[Path, ...]
    journal: JournalScan
    restorable: bool
    restore_sequence: int
    replay_commits: int
    replay_events: int

    def describe(self) -> str:
        """A terminal-friendly rendering (what ``repro ops --fsck`` prints)."""
        if not self.exists:
            return f"fsck: state directory {str(self.state_dir)!r} does not exist"
        lines = [f"fsck report for state directory {str(self.state_dir)!r}:"]
        valid = sum(1 for s in self.snapshots if s.status == "valid")
        broken = [s for s in self.snapshots if s.status != "valid"]
        lines.append(
            f"  snapshots     : {len(self.snapshots)} on disk "
            f"({valid} valid, {len(broken)} damaged)"
        )
        for snapshot in broken:
            lines.append(
                f"    ! #{snapshot.sequence} {snapshot.path.name}: "
                f"{snapshot.status} ({snapshot.error})"
            )
        if self.quarantined:
            lines.append(f"  quarantined   : {len(self.quarantined)} file(s)")
            for path in self.quarantined:
                lines.append(f"    - {path.name}")
        else:
            lines.append("  quarantined   : 0 file(s)")
        if self.journal.exists:
            compacted = (
                f", compacted through seq {self.journal.compacted_through}"
                if self.journal.compacted_through
                else ""
            )
            lines.append(
                f"  journal       : {self.journal.records} intact record(s) "
                f"at seq {self.journal.last_sequence}, "
                f"{len(self.journal.corrupt_lines)} corrupt line(s), "
                f"torn tail {self.journal.torn_tail_bytes} byte(s)"
                f"{compacted}"
            )
        else:
            lines.append("  journal       : (no journal file)")
        if self.restorable:
            lines.append(
                f"  restore       : snapshot #{self.restore_sequence}, "
                f"then replay {self.replay_commits} commit(s) "
                f"across {self.replay_events} journal event(s)"
            )
        else:
            lines.append("  restore       : IMPOSSIBLE (no valid snapshot)")
        return "\n".join(lines)


def fsck_state_dir(state_dir: str | Path) -> FsckReport:
    """Inspect a :func:`~repro.ci.persistence.open_state_dir` layout, read-only.

    Nothing is quarantined, truncated, repaired or journaled — running
    the doctor twice yields byte-identical state directories and
    identical reports.  A missing directory yields an ``exists=False``
    report instead of raising, so the doctor is safe to point anywhere.
    """
    directory = Path(state_dir)
    journal_scan = scan_journal(directory / "journal.jsonl")
    if not directory.is_dir():
        return FsckReport(
            state_dir=directory,
            exists=False,
            snapshots=(),
            quarantined=(),
            journal=journal_scan,
            restorable=False,
            restore_sequence=0,
            replay_commits=0,
            replay_events=0,
        )
    store = SnapshotStore(directory / "snapshots")
    reports: list[SnapshotHealth] = []
    for sequence, path in store._entries():
        try:
            # The envelope reader checksums without unpickling payloads —
            # exactly the read-only probe the doctor needs.
            envelope, _ = store._read_envelope(sequence)
        except SnapshotCorruptError as exc:
            reports.append(
                SnapshotHealth(
                    sequence=sequence, path=path, status="corrupt", error=str(exc)
                )
            )
        except PersistenceError as exc:
            reports.append(
                SnapshotHealth(
                    sequence=sequence,
                    path=path,
                    status="unsupported-version",
                    error=str(exc),
                )
            )
        else:
            reports.append(
                SnapshotHealth(
                    sequence=sequence,
                    path=path,
                    status="valid",
                    journal_sequence=int(envelope.get("journal_sequence", 0)),
                )
            )
    valid = [report for report in reports if report.status == "valid"]
    newest = valid[-1] if valid else None
    anchor = newest.journal_sequence if newest is not None else 0
    replay_commits = sum(
        1
        for journal_sequence in journal_scan.commit_journal_sequences
        if journal_sequence > (anchor or 0)
    )
    replay_events = max(0, journal_scan.last_sequence - (anchor or 0))
    # A compacted journal only restores from a snapshot anchored at or
    # past the compaction boundary: anything older would need records
    # compaction deliberately dropped.
    restorable = newest is not None and (
        (anchor or 0) >= journal_scan.compacted_through
    )
    return FsckReport(
        state_dir=directory,
        exists=True,
        snapshots=tuple(reports),
        quarantined=tuple(store.quarantined()),
        journal=journal_scan,
        restorable=restorable,
        restore_sequence=newest.sequence if newest is not None else 0,
        replay_commits=replay_commits if restorable else 0,
        replay_events=replay_events if restorable else 0,
    )
