"""Fault tolerance for the CI service: supervision, recovery, chaos.

The paper's guarantees are statistical; this package is about the
*systems* failures a production ease.ml/ci must survive without ever
silently weakening the (epsilon, delta) contract:

* :mod:`repro.reliability.events` — the process-wide reliability event
  log.  Degraded-mode transitions (parallel planning falling back to the
  serial backend, a restore skipping a corrupt snapshot, a notification
  dead-lettered) are recorded here and surfaced through
  :meth:`repro.ci.service.CIService.operations` / ``repro ops``.
* :mod:`repro.reliability.faults` — the deterministic fault-injection
  harness: a seeded registry of injection points (kill a worker, hang a
  worker, fail an fsync, tear a write at byte *k*, drop a notification)
  wired into the planning executor, the persistence layer and the
  notification transport.  Every chaos test is reproducible from its
  rule list and seed.
* :mod:`repro.reliability.fsck` — the read-only state-directory doctor
  behind ``repro ops --fsck``: classifies snapshots, scans the journal
  without repairing it, and reports quarantined files and replay depth.
* :mod:`repro.reliability.storage` — disk budgets: the
  :class:`~repro.reliability.storage.StorageGovernor` meters state-dir
  bytes against soft (reclaim) and hard (degrade-to-read-only)
  watermarks, and :func:`~repro.reliability.storage.maintain_state_dir`
  is the offline prune-and-compact reclamation primitive.

The recovery invariant threading through all three: a retried task, a
serially-recomputed shard, or a restore from an older snapshot with a
longer journal replay produces results *bit-identical* to the
undisturbed run — fault tolerance rides on the same determinism
contracts (manifest merge, batch-composition invariance, replay parity)
that PR 4/5 already enforce.
"""

from repro.reliability.events import (
    ReliabilityEvent,
    clear_events,
    record_event,
    reliability_events,
)
from repro.reliability.faults import (
    FaultInjector,
    FaultRule,
    InjectedFault,
    fault_point,
    get_injector,
    injected_faults,
    install_injector,
    uninstall_injector,
)
from repro.reliability.storage import (
    MaintenanceReport,
    StorageGovernor,
    StorageStatus,
    directory_bytes,
    maintain_state_dir,
)

__all__ = [
    "ReliabilityEvent",
    "record_event",
    "reliability_events",
    "clear_events",
    "FaultRule",
    "FaultInjector",
    "InjectedFault",
    "fault_point",
    "install_injector",
    "uninstall_injector",
    "get_injector",
    "injected_faults",
    "StorageStatus",
    "StorageGovernor",
    "MaintenanceReport",
    "directory_bytes",
    "maintain_state_dir",
]
