"""Disk budgets and storage governance for durable CI state.

The paper's practicality argument (ease.ml/ci, Section 3) rests on the
CI loop running unattended for long stretches, which makes unbounded
state growth an operational failure mode in its own right: snapshots
accumulate one generation per cadence tick, and the event journal is
append-only.  This module supplies the two governance pieces:

* :class:`StorageGovernor` — meters bytes under a directory against
  *soft* and *hard* watermarks.  Soft means "reclaim now" (prune old
  snapshots, compact the journal); hard means "degrade to read-only"
  (reject new durable writes with a typed, retryable
  :class:`~repro.exceptions.StorageExhaustedError` while inspection and
  restore keep working).  The governor itself only *measures and
  classifies*; the service / fleet layers decide what to do at each
  level, so the same governor serves a single state dir and a whole
  fleet root.

* :func:`maintain_state_dir` — the offline reclamation primitive:
  prune a state directory's snapshot store down to ``keep`` valid
  generations, then checkpoint-truncate its journal through the
  *oldest retained valid* snapshot's anchor.  Compacting through the
  oldest retained anchor (not the newest) means every snapshot the
  store still holds can fall back to journal replay without hitting a
  gap — corruption of the newest generation stays recoverable.

Nothing here writes new state: reclamation only deletes and rewrites
what snapshots already cover, so it is safe to run on a disk that is
already at its hard watermark.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path

from repro.exceptions import InvalidParameterError
from repro.reliability.events import record_event

__all__ = [
    "StorageStatus",
    "StorageGovernor",
    "MaintenanceReport",
    "directory_bytes",
    "retention_anchor",
    "maintain_state_dir",
]


def directory_bytes(path: str | Path) -> int:
    """Total bytes of regular files under ``path`` (0 if it is absent).

    Walks without following symlinks; files that vanish mid-walk (a
    concurrent prune) are skipped rather than raising.
    """
    root = Path(path)
    if not root.exists():
        return 0
    if root.is_file():
        return root.stat().st_size
    total = 0
    for dirpath, _dirnames, filenames in os.walk(root):
        for name in filenames:
            try:
                total += os.stat(
                    os.path.join(dirpath, name), follow_symlinks=False
                ).st_size
            except OSError:
                continue
    return total


@dataclass(frozen=True)
class StorageStatus:
    """One measurement of a directory against its watermarks.

    Attributes
    ----------
    path:
        The measured directory.
    used_bytes:
        Bytes of regular files currently under it.
    soft_bytes / hard_bytes:
        The governor's watermarks (``None`` = unlimited).
    level:
        ``"ok"`` (under soft), ``"soft"`` (reclaim now) or ``"hard"``
        (degrade to read-only).
    retry_after_seconds:
        The measuring governor's backoff hint, carried so rejection
        layers (admission, the commit gate) can forward it.
    """

    path: Path
    used_bytes: int
    soft_bytes: int | None
    hard_bytes: int | None
    level: str
    retry_after_seconds: float = 1.0

    @property
    def read_only(self) -> bool:
        """True when durable writes must be refused (hard watermark)."""
        return self.level == "hard"

    def describe(self) -> str:
        limit = "unlimited" if self.hard_bytes is None else f"{self.hard_bytes}B"
        return (
            f"storage {self.level}: {self.used_bytes}B used of {limit}"
            f" at {self.path}"
        )


class StorageGovernor:
    """Meters a directory's bytes against soft/hard watermarks.

    Parameters
    ----------
    soft_bytes:
        Reclamation threshold — at or above this, callers should prune
        snapshots and compact journals.  ``None`` disables the soft
        level.
    hard_bytes:
        Read-only threshold — at or above this, durable writes must be
        refused with :class:`~repro.exceptions.StorageExhaustedError`.
        ``None`` disables the hard level.
    retry_after_seconds:
        Backoff hint carried by the typed rejection.

    The governor is stateless between calls: each :meth:`check` walks
    the directory fresh, so reclamation (or an operator's ``rm``) is
    observed on the very next measurement.
    """

    def __init__(
        self,
        soft_bytes: int | None = None,
        hard_bytes: int | None = None,
        *,
        retry_after_seconds: float = 1.0,
    ):
        if soft_bytes is not None and soft_bytes <= 0:
            raise InvalidParameterError(
                f"soft_bytes must be positive, got {soft_bytes}"
            )
        if hard_bytes is not None and hard_bytes <= 0:
            raise InvalidParameterError(
                f"hard_bytes must be positive, got {hard_bytes}"
            )
        if (
            soft_bytes is not None
            and hard_bytes is not None
            and soft_bytes > hard_bytes
        ):
            raise InvalidParameterError(
                f"soft watermark ({soft_bytes}) must not exceed the hard "
                f"watermark ({hard_bytes})"
            )
        self.soft_bytes = soft_bytes
        self.hard_bytes = hard_bytes
        self.retry_after_seconds = float(retry_after_seconds)

    def check(self, path: str | Path) -> StorageStatus:
        """Measure ``path`` and classify it against the watermarks."""
        used = directory_bytes(path)
        if self.hard_bytes is not None and used >= self.hard_bytes:
            level = "hard"
        elif self.soft_bytes is not None and used >= self.soft_bytes:
            level = "soft"
        else:
            level = "ok"
        return StorageStatus(
            path=Path(path),
            used_bytes=used,
            soft_bytes=self.soft_bytes,
            hard_bytes=self.hard_bytes,
            level=level,
            retry_after_seconds=self.retry_after_seconds,
        )


@dataclass(frozen=True)
class MaintenanceReport:
    """What one :func:`maintain_state_dir` pass reclaimed."""

    state_dir: Path
    pruned_snapshots: int
    dropped_records: int
    compacted_through: int
    bytes_before: int
    bytes_after: int


def retention_anchor(store) -> int:
    """Journal sequence of the *oldest retained valid* snapshot (0 if none).

    This is the safe compaction boundary after a prune: every snapshot
    still in the store anchors at or past it, so replay from any of
    them — including an older generation reached by corruption
    fallback — never lands in a compacted gap.
    """
    from repro.exceptions import PersistenceError

    anchors = []
    for sequence, _path in store._entries():
        try:
            # Checksums the envelope without unpickling the payload;
            # corrupt/unsupported generations are simply not anchors.
            envelope, _ = store._read_envelope(sequence)
        except PersistenceError:
            continue
        anchors.append(int(envelope.get("journal_sequence", 0)))
    return min(anchors) if anchors else 0


def maintain_state_dir(
    state_dir: str | Path,
    *,
    keep: int = 3,
    store=None,
    journal=None,
    sync: bool = True,
) -> MaintenanceReport:
    """Prune a state dir's snapshots and compact its journal, offline.

    Opens the directory's :class:`~repro.ci.persistence.SnapshotStore`
    and :class:`~repro.ci.persistence.EventJournal` (or uses the ones
    passed in, for callers that already hold them), keeps the newest
    ``keep`` valid snapshots, then compacts the journal through the
    oldest retained valid anchor.  Purely reclamatory — nothing new is
    written beyond the journal rewrite, so this is the reclamation step
    a hard-watermark (read-only) state dir runs to dig itself out.
    """
    from repro.ci.persistence import EventJournal, SnapshotStore

    state_dir = Path(state_dir)
    bytes_before = directory_bytes(state_dir)
    if store is None:
        store = SnapshotStore(state_dir / "snapshots")
    if journal is None:
        journal = EventJournal(state_dir / "journal.jsonl", sync=sync)
    pruned = store.prune(keep=keep) if store.latest_sequence else []
    anchor = retention_anchor(store)
    dropped = 0
    if anchor > journal.compacted_through and anchor <= journal.last_sequence:
        dropped = journal.compact(anchor)
    report = MaintenanceReport(
        state_dir=state_dir,
        pruned_snapshots=len(pruned),
        dropped_records=dropped,
        compacted_through=journal.compacted_through,
        bytes_before=bytes_before,
        bytes_after=directory_bytes(state_dir),
    )
    if report.pruned_snapshots or report.dropped_records:
        record_event(
            "storage-maintained",
            "reliability.storage",
            state_dir=str(state_dir),
            pruned_snapshots=report.pruned_snapshots,
            dropped_records=report.dropped_records,
            bytes_before=report.bytes_before,
            bytes_after=report.bytes_after,
        )
    return report
