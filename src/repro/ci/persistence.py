"""Durable CI state: versioned snapshots plus an append-only event journal.

ease.ml/ci's statistical guarantees live in server-side state — the
per-testset evaluation budget ``H``, the adaptivity-mode accounting, the
pool of unreleased test-set generations.  Losing that state to a process
restart is not an inconvenience, it *forfeits budget accounting*: a
rebooted service that re-evaluates commits on a released testset replays
labels the math says are spent.  This module makes the state durable:

* :class:`SnapshotStore` — versioned, atomic (write-temp-then-rename)
  pickle snapshots of :meth:`CIService.export_state` /
  :meth:`CIEngine.export_state` mappings.  Every snapshot records the
  journal sequence it was taken at, so a restorer knows where replay
  begins.
* :class:`EventJournal` — an append-only JSON-lines event log (commit
  received / build recorded / promotion / rotation / alarm / snapshot /
  restore).  ``commit-received`` records embed the committed model
  (pickled, base64) *before* the build runs, so a crash mid-build loses
  no commit: restore replays it deterministically.
* :func:`open_state_dir` — the one-directory layout convention
  (``<dir>/snapshots/`` + ``<dir>/journal.jsonl``) used by
  :meth:`CIService.persist_to` / :meth:`CIService.resume` and the
  ``repro ops`` CLI.

Crash model
-----------
Kill the process at any *journal boundary* (between two appends; each
append is flushed and fsynced before returning) and restore: the service
loads the latest snapshot, then replays every journaled
``commit-received`` whose repository sequence the snapshot does not yet
contain, in order, deduplicated by sequence.  Because evaluation is a
pure function of engine state and the committed model, the replayed
:class:`CommitResult`/:class:`BuildRecord` sequence is element-wise
identical to the uninterrupted run — in all three adaptivity modes (the
restart-parity suite asserts this).  A torn trailing journal line (the
crash landed mid-append) is ignored; a torn line *followed by* intact
records means real corruption and raises :class:`PersistenceError`.

Corruption model
----------------
Beyond clean crashes, the store tolerates *damaged files*.  Snapshot
envelopes carry a CRC-32 over the pickled payload and journal lines
carry a per-line CRC, so truncation and bit-rot are detected, not
deserialized.  A corrupt or truncated snapshot raises
:class:`~repro.exceptions.SnapshotCorruptError` from :meth:`SnapshotStore.load`;
:meth:`SnapshotStore.load_latest` instead *quarantines* it (renamed with
a ``.quarantined`` suffix — never deleted) and falls back to the next
older generation, which simply extends journal replay: the restored run
stays element-wise identical.  A torn trailing journal line is likewise
quarantined into a sidecar file before the self-healing truncation.
Every fallback/quarantine is recorded on the process-wide reliability
event log (:mod:`repro.reliability.events`) and reported by
``repro ops``; the read-only doctor behind ``repro ops --fsck``
(:mod:`repro.reliability.fsck`) classifies a state directory without
mutating it.

Side effects are recovered as state, not re-fired: notification
transports are runtime wiring, so replay suppresses the notifier — the
pre-crash process already delivered those messages, and at most the
single in-flight commit's notification can be lost.

Security note: snapshots and ``commit-received`` payloads contain
pickles (models are arbitrary objects).  State directories are trusted,
server-local data — never restore from an untrusted one.
"""

from __future__ import annotations

import base64
import json
import os
import pickle
import re
import zlib
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Callable, Iterator

from repro.exceptions import PersistenceError, SnapshotCorruptError
from repro.reliability.events import record_event
from repro.reliability.faults import InjectedFault, fault_point, torn_bytes
from repro.utils.serialization import to_jsonable

__all__ = [
    "SNAPSHOT_FORMAT_VERSION",
    "COMMIT_RECEIVED",
    "BUILD_RECORDED",
    "PROMOTION",
    "ROTATION",
    "ALARM",
    "SNAPSHOT",
    "RESTORE",
    "COMPACTION",
    "EVENT_TYPES",
    "JournalRecord",
    "EventJournal",
    "JournalScan",
    "scan_journal",
    "SnapshotInfo",
    "SnapshotStore",
    "open_state_dir",
    "encode_model",
    "decode_model",
]

#: Version of the on-disk snapshot envelope; bumped on incompatible change.
#: Version 2 wraps the payload pickle in a checksummed envelope; version 1
#: (unchecksummed) envelopes are still read.
SNAPSHOT_FORMAT_VERSION = 2


def _crc32(data: bytes) -> int:
    return zlib.crc32(data) & 0xFFFFFFFF

# Journal event types.  The first is the one replay is driven by; the rest
# form the operational audit trail.  COMPACTION is the checkpoint-truncate
# header: a compacted journal's first record, declaring every sequence at
# or below its ``compacted_through`` dropped (already captured by a
# snapshot) — readers treat the missing prefix as compacted, not torn.
COMMIT_RECEIVED = "commit-received"
BUILD_RECORDED = "build-recorded"
PROMOTION = "promotion"
ROTATION = "rotation"
ALARM = "alarm"
SNAPSHOT = "snapshot"
RESTORE = "restore"
COMPACTION = "compacted-through"

EVENT_TYPES = frozenset(
    {
        COMMIT_RECEIVED,
        BUILD_RECORDED,
        PROMOTION,
        ROTATION,
        ALARM,
        SNAPSHOT,
        RESTORE,
        COMPACTION,
    }
)

_SNAPSHOT_NAME = re.compile(r"^snapshot-(\d{6})\.pkl$")


# ---------------------------------------------------------------------------
# Model payload encoding
# ---------------------------------------------------------------------------

def encode_model(model: Any) -> str:
    """Pickle ``model`` into a base64 string for a JSON journal payload."""
    return base64.b64encode(
        pickle.dumps(model, protocol=pickle.HIGHEST_PROTOCOL)
    ).decode("ascii")


def decode_model(payload: str) -> Any:
    """Invert :func:`encode_model` (trusted, server-local data only)."""
    return pickle.loads(base64.b64decode(payload.encode("ascii")))


# ---------------------------------------------------------------------------
# The journal
# ---------------------------------------------------------------------------

def _parse_journal_line(line: str) -> dict[str, Any] | None:
    """Parse one journal line into its record mapping, or ``None``.

    ``None`` means the line is not an intact record: unparseable JSON, a
    missing required field, or (for lines that carry one) a CRC that
    does not match the canonical serialization of the rest of the line.
    Lines without a ``crc`` field are accepted — journals written before
    the checksummed format remain readable.
    """
    try:
        raw = json.loads(line)
        int(raw["sequence"])
        raw["type"], raw["recorded_at"]
    except (ValueError, KeyError, TypeError):
        return None
    if not isinstance(raw, dict):
        return None
    crc = raw.pop("crc", None)
    if crc is not None:
        body = json.dumps(raw, sort_keys=True).encode("utf-8")
        if crc != _crc32(body):
            return None
    return raw


@dataclass(frozen=True)
class JournalRecord:
    """One journal line.

    Attributes
    ----------
    sequence:
        Journal-wide 1-based append counter (monotonic; snapshots store
        the sequence they were taken at, and ``journal lag`` on the
        operations surface is the distance from it).
    type:
        One of the module's event-type constants.
    recorded_at:
        ISO-8601 UTC wall-clock stamp.  Operational metadata only — no
        result ever depends on it, preserving the library's determinism.
    payload:
        Event-specific JSON-compatible mapping.
    """

    sequence: int
    type: str
    recorded_at: str
    payload: dict[str, Any] = field(default_factory=dict)


class EventJournal:
    """An append-only JSON-lines event log with fsync durability.

    Parameters
    ----------
    path:
        The journal file (created, along with parent directories, on
        first append).  Existing records are scanned once at open to
        resume the sequence counter.
    sync:
        Fsync after every append (default).  Turning it off trades the
        crash guarantee for throughput — acceptable for tests and
        simulations, not for a deployment.
    clock:
        Timestamp source for ``recorded_at`` (UTC now by default);
        injectable for deterministic tests.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        sync: bool = True,
        clock: Callable[[], datetime] | None = None,
    ):
        self.path = Path(path)
        self.sync = bool(sync)
        self._clock = clock or (lambda: datetime.now(timezone.utc))
        # Cached append-mode handle (O_APPEND, so an external truncation
        # of the tail cannot misplace a later write).  Opened lazily,
        # popped whenever an append fails or a compaction replaces the
        # file, so the next append reopens cleanly.
        self._handle = None
        self._compacted_through = 0
        self._next_sequence = self._repair_and_scan() + 1

    def _repair_and_scan(self) -> int:
        """Scan intact records; truncate a torn *trailing* line in place.

        A torn trailing line is the tolerated crash artifact — the append
        never completed, so by the crash model its event never happened.
        It cannot be left in the file: :meth:`append` opens in append
        mode, so the next record would merge into the torn bytes (losing
        it), and one more append after that would make the merged line
        *non*-trailing — permanently unreadable corruption.  Truncating
        the torn tail once, at open, keeps append blind and the journal
        self-healing; the torn bytes are quarantined into a sidecar file
        first (never deleted — they are forensic evidence, not state).
        Garbage *followed by* intact records is real corruption; it is
        left untouched for :meth:`records` to raise on.
        """
        if not self.path.exists():
            return 0
        raw = self.path.read_bytes()
        last, valid_end, offset = 0, 0, 0
        for chunk in raw.splitlines(keepends=True):
            offset += len(chunk)
            line = chunk.decode("utf-8", errors="replace").strip()
            if not line:
                valid_end = offset
                continue
            parsed = _parse_journal_line(line)
            if parsed is None:
                continue  # valid_end stays put; trailing garbage truncates
            last = int(parsed["sequence"])
            valid_end = offset
            if parsed.get("type") == COMPACTION:
                payload = parsed.get("payload") or {}
                self._compacted_through = max(
                    self._compacted_through,
                    int(payload.get("compacted_through", last)),
                )
        if valid_end < len(raw):
            torn = raw[valid_end:]
            sidecar = self.path.with_name(
                f"{self.path.name}.torn-{valid_end}.quarantined"
            )
            sidecar.write_bytes(torn)
            record_event(
                "journal-torn-tail",
                "ci.persistence",
                journal=str(self.path),
                quarantined=str(sidecar),
                torn_bytes=len(torn),
            )
            with open(self.path, "r+b") as handle:
                handle.truncate(valid_end)
        return last

    @property
    def last_sequence(self) -> int:
        """Sequence of the newest record (0 for an empty journal)."""
        return self._next_sequence - 1

    @property
    def compacted_through(self) -> int:
        """Highest sequence a compaction has dropped through (0 = never).

        Every record at or below this sequence was captured by a
        snapshot before :meth:`compact` removed it; readers must not
        interpret the missing prefix as loss.
        """
        return self._compacted_through

    def __len__(self) -> int:
        return sum(1 for _ in self.records())

    # -- the append handle ---------------------------------------------------
    def _acquire_handle(self):
        if self._handle is None or self._handle.closed:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "ab")
        return self._handle

    def close(self) -> None:
        """Close the cached append handle (reopened lazily on next append)."""
        handle, self._handle = self._handle, None
        if handle is not None and not handle.closed:
            try:
                handle.close()
            except OSError:
                pass

    def _discard_failed_append(self, start: int) -> None:
        """Self-heal after a failed append: pop the handle, truncate the tail.

        A failed append — torn write, failing fsync, ``ENOSPC`` — leaves
        the cached handle in an indeterminate position and possibly
        bytes on disk for an event the caller was told never happened
        (a fully written line whose fsync failed even parses as valid,
        which no later scan could distinguish from a real record).  The
        handle is popped so the next append reopens cleanly, and the
        file is truncated back to its pre-append size with the removed
        bytes quarantined into a sidecar — mirroring the torn-tail
        healing the next open would perform, but eagerly, while this
        process can still tell where the append began.  Best-effort: a
        disk too broken to truncate leaves recovery to the next open's
        scan, exactly as before.
        """
        self.close()
        try:
            with open(self.path, "r+b") as handle:
                handle.seek(0, os.SEEK_END)
                end = handle.tell()
                if end <= start:
                    return
                handle.seek(start)
                torn = handle.read(end - start)
                sidecar = self.path.with_name(
                    f"{self.path.name}.torn-{start}.quarantined"
                )
                suffix = 0
                while sidecar.exists():
                    suffix += 1
                    sidecar = self.path.with_name(
                        f"{self.path.name}.torn-{start}.quarantined.{suffix}"
                    )
                sidecar.write_bytes(torn)
                handle.truncate(start)
        except OSError:
            return
        record_event(
            "journal-torn-tail",
            "ci.persistence",
            journal=str(self.path),
            quarantined=str(sidecar),
            torn_bytes=len(torn),
        )

    # -- writing -------------------------------------------------------------
    def _render_line(self, record: JournalRecord) -> bytes:
        """One CRC-stamped JSON line (canonical serialization)."""
        rendered = to_jsonable(record)
        body = json.dumps(rendered, sort_keys=True).encode("utf-8")
        rendered["crc"] = _crc32(body)
        return (json.dumps(rendered, sort_keys=True) + "\n").encode("utf-8")

    def append(self, type: str, payload: dict[str, Any] | None = None) -> JournalRecord:
        """Append one event; flushed (and fsynced) before returning.

        The record's JSON line is rendered through
        :func:`repro.utils.serialization.to_jsonable` — payloads may
        carry datetimes, paths, enums and numpy values directly — and
        stamped with a CRC-32 over its canonical serialization, so a
        reader can tell a damaged line from a valid one.

        Appends go through a cached ``O_APPEND`` handle.  Any failure —
        an injected tear, a failing fsync, a real ``ENOSPC``/``EIO`` —
        pops the handle and truncates the file back to its pre-append
        size (quarantining whatever landed), so the journal self-heals
        immediately and a subsequent append simply reopens and succeeds;
        the event whose append failed never happened, exactly as the
        crash model promises.

        Fault-injection points: ``journal.write`` (``errno`` — the disk
        fills before any byte lands), ``journal.append`` (``tear``
        writes a partial line then raises — the crash-mid-append case)
        and ``journal.fsync`` (a failing disk after a complete write).
        """
        if type not in EVENT_TYPES:
            raise PersistenceError(
                f"unknown journal event type {type!r}; expected one of "
                f"{sorted(EVENT_TYPES)}"
            )
        record = JournalRecord(
            sequence=self._next_sequence,
            type=type,
            recorded_at=self._clock().isoformat(),
            payload=dict(payload or {}),
        )
        data = self._render_line(record)
        handle = self._acquire_handle()
        start = os.fstat(handle.fileno()).st_size
        try:
            torn = torn_bytes(data, fault_point("journal.append"))
            fault_point("journal.write")
            handle.write(data if torn is None else torn)
            handle.flush()
            if torn is not None:
                if self.sync:
                    os.fsync(handle.fileno())
                raise InjectedFault(
                    "journal.append", f"write torn at byte {len(torn)}"
                )
            fault_point("journal.fsync")
            if self.sync:
                os.fsync(handle.fileno())
        except BaseException:
            self._discard_failed_append(start)
            raise
        self._next_sequence += 1
        return record

    # -- compaction ----------------------------------------------------------
    def compact(self, through_sequence: int) -> int:
        """Checkpoint-truncate: drop records at or below ``through_sequence``.

        The caller asserts — normally by pointing at a *valid* snapshot's
        :attr:`~SnapshotInfo.journal_sequence` — that everything at or
        below ``through_sequence`` is captured durably elsewhere.  The
        journal is rewritten temp-then-rename: a ``compacted-through``
        header record first (carrying ``through_sequence`` as its own
        sequence, so the file stays monotonic and an all-dropped journal
        still resumes its counter correctly), then every surviving
        record with its original sequence and timestamp.  A crash at any
        point leaves either the old or the new journal, both complete.

        Compacting to a boundary at or below a previous compaction's is
        a no-op; returns the number of records dropped this pass.

        Fault-injection point: ``journal.compact`` (``errno`` — the
        rewrite never starts; the original journal is untouched).
        """
        through = int(through_sequence)
        if through <= self._compacted_through:
            return 0
        if through > self.last_sequence:
            raise PersistenceError(
                f"cannot compact journal {self.path} through sequence "
                f"{through}: newest record is {self.last_sequence}"
            )
        survivors: list[JournalRecord] = []
        dropped = 0
        prior_dropped = 0
        for record in self.records():
            if record.type == COMPACTION:
                prior_dropped = int(record.payload.get("dropped", 0))
            if record.sequence <= through:
                dropped += 1
            else:
                survivors.append(record)
        fault_point("journal.compact")
        header = JournalRecord(
            sequence=through,
            type=COMPACTION,
            recorded_at=self._clock().isoformat(),
            payload={
                "compacted_through": through,
                "dropped": prior_dropped + dropped,
            },
        )
        bytes_before = self.path.stat().st_size if self.path.exists() else 0
        data = b"".join(
            self._render_line(record) for record in [header] + survivors
        )
        temp = self.path.with_name(self.path.name + ".compact.tmp")
        try:
            with open(temp, "wb") as handle:
                handle.write(data)
                handle.flush()
                if self.sync:
                    os.fsync(handle.fileno())
            self.close()  # the cached handle points at the old inode
            os.replace(temp, self.path)
        except BaseException:
            try:
                temp.unlink(missing_ok=True)
            except OSError:
                pass
            raise
        self._compacted_through = through
        record_event(
            "journal-compacted",
            "ci.persistence",
            journal=str(self.path),
            compacted_through=through,
            dropped=dropped,
            bytes_before=bytes_before,
            bytes_after=len(data),
        )
        return dropped

    # -- reading -------------------------------------------------------------
    def records(self) -> Iterator[JournalRecord]:
        """Yield every intact record, oldest first.

        A torn *trailing* line — the crash landed mid-append — is
        silently dropped (its event never happened, by the crash model).
        A malformed or CRC-failing line with intact records after it is
        corruption and raises :class:`PersistenceError`.
        """
        if not self.path.exists():
            return
        with open(self.path, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        pending_error: PersistenceError | None = None
        for number, line in enumerate(lines, start=1):
            if not line.strip():
                continue
            raw = _parse_journal_line(line)
            if raw is None:
                pending_error = PersistenceError(
                    f"journal {self.path} line {number} is corrupt "
                    "(non-trailing): malformed or checksum mismatch"
                )
                continue
            record = JournalRecord(
                sequence=int(raw["sequence"]),
                type=str(raw["type"]),
                recorded_at=str(raw["recorded_at"]),
                payload=dict(raw.get("payload") or {}),
            )
            if pending_error is not None:
                raise pending_error
            yield record

    def records_of(self, type: str) -> Iterator[JournalRecord]:
        """Yield intact records of one event type, oldest first."""
        return (record for record in self.records() if record.type == type)


@dataclass(frozen=True)
class JournalScan:
    """Read-only classification of a journal file (``repro ops --fsck``).

    Unlike constructing an :class:`EventJournal` — which self-heals by
    truncating a torn trailing line — producing this report never
    touches the file.

    Attributes
    ----------
    path:
        The scanned journal file.
    exists:
        Whether the file exists at all.
    records:
        Count of intact records.
    last_sequence:
        Sequence of the newest intact record (0 when none).
    corrupt_lines:
        1-based line numbers of malformed / CRC-failing lines that are
        *followed by* intact records (real corruption; replay raises).
    torn_tail_bytes:
        Size of the invalid trailing region (a crash artifact the next
        open would quarantine and truncate), 0 when the tail is clean.
    commit_sequences:
        Repository sequences of every intact ``commit-received`` record,
        in journal order — what replay depth is computed from.
    commit_journal_sequences:
        *Journal* sequences of those same records, aligned with
        ``commit_sequences`` — how the doctor counts commits past a
        snapshot's anchor.
    compacted_through:
        Highest ``compacted-through`` header boundary in the file (0
        when the journal was never compacted).  Records at or below
        this sequence were deliberately dropped by compaction — their
        absence is not loss, but a restore needs a snapshot anchored at
        or past this boundary.
    """

    path: Path
    exists: bool
    records: int
    last_sequence: int
    corrupt_lines: tuple[int, ...]
    torn_tail_bytes: int
    commit_sequences: tuple[int, ...]
    commit_journal_sequences: tuple[int, ...]
    compacted_through: int = 0


def scan_journal(path: str | Path) -> JournalScan:
    """Classify a journal file without opening it for repair."""
    path = Path(path)
    if not path.exists():
        return JournalScan(
            path=path,
            exists=False,
            records=0,
            last_sequence=0,
            corrupt_lines=(),
            torn_tail_bytes=0,
            commit_sequences=(),
            commit_journal_sequences=(),
        )
    raw = path.read_bytes()
    records = 0
    last_sequence = 0
    compacted_through = 0
    invalid: list[int] = []
    commit_sequences: list[int] = []
    commit_journal_sequences: list[int] = []
    valid_end = offset = 0
    number = 0
    for chunk in raw.splitlines(keepends=True):
        offset += len(chunk)
        number += 1
        line = chunk.decode("utf-8", errors="replace").strip()
        if not line:
            valid_end = offset
            continue
        parsed = _parse_journal_line(line)
        if parsed is None:
            invalid.append(number)
            continue
        records += 1
        last_sequence = int(parsed["sequence"])
        valid_end = offset
        if parsed.get("type") == COMMIT_RECEIVED:
            payload = parsed.get("payload") or {}
            if "sequence" in payload:
                commit_sequences.append(int(payload["sequence"]))
                commit_journal_sequences.append(int(parsed["sequence"]))
        elif parsed.get("type") == COMPACTION:
            payload = parsed.get("payload") or {}
            compacted_through = max(
                compacted_through,
                int(payload.get("compacted_through", parsed["sequence"])),
            )
    torn_tail_bytes = len(raw) - valid_end
    # Invalid lines inside the valid region are corruption; invalid lines
    # in the trailing region are the (tolerated) torn tail.
    corrupt_lines = tuple(
        n for n in invalid if _line_offset(raw, n) < valid_end
    )
    return JournalScan(
        path=path,
        exists=True,
        records=records,
        last_sequence=last_sequence,
        corrupt_lines=corrupt_lines,
        torn_tail_bytes=torn_tail_bytes,
        commit_sequences=tuple(commit_sequences),
        commit_journal_sequences=tuple(commit_journal_sequences),
        compacted_through=compacted_through,
    )


def _line_offset(raw: bytes, number: int) -> int:
    """Byte offset at which 1-based line ``number`` starts."""
    offset = 0
    for index, chunk in enumerate(raw.splitlines(keepends=True), start=1):
        if index == number:
            return offset
        offset += len(chunk)
    return offset


# ---------------------------------------------------------------------------
# The snapshot store
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SnapshotInfo:
    """Metadata of one stored snapshot.

    Attributes
    ----------
    sequence:
        1-based snapshot counter within the store.
    journal_sequence:
        The journal's :attr:`~EventJournal.last_sequence` at save time —
        where replay begins for a restore from this snapshot.
    format_version:
        On-disk envelope version the snapshot was written with.
    path:
        The snapshot file.
    """

    sequence: int
    journal_sequence: int
    format_version: int
    path: Path


class SnapshotStore:
    """Versioned, atomically-written snapshots of exported CI state.

    Each :meth:`save` pickles an envelope ``{format_version, sequence,
    journal_sequence, payload}`` to a temporary file in the store
    directory and :func:`os.replace`-renames it into place — a reader
    (or a crash) never observes a half-written snapshot.  Snapshots are
    numbered; :meth:`load_latest` restores from the newest one and older
    generations remain on disk as a fallback/audit trail (prune with
    :meth:`prune`).
    """

    def __init__(self, directory: str | Path):
        self.directory = Path(directory)
        # Metadata of snapshots this instance has saved or loaded, so the
        # operations surface (journal lag needs only 3 ints) does not
        # unpickle whole engine states from disk on every report.  Keyed
        # by sequence; a sequence minted by another process is simply not
        # cached yet and falls back to a disk read.
        self._info_cache: dict[int, SnapshotInfo] = {}

    # -- inspection ----------------------------------------------------------
    def _entries(self) -> list[tuple[int, Path]]:
        if not self.directory.is_dir():
            return []
        entries = []
        for child in self.directory.iterdir():
            match = _SNAPSHOT_NAME.match(child.name)
            if match:
                entries.append((int(match.group(1)), child))
        return sorted(entries)

    def sequences(self) -> list[int]:
        """Stored snapshot sequence numbers, oldest first."""
        return [sequence for sequence, _ in self._entries()]

    @property
    def latest_sequence(self) -> int:
        """Newest stored sequence (0 for an empty store)."""
        entries = self._entries()
        return entries[-1][0] if entries else 0

    def snapshots(self) -> list[SnapshotInfo]:
        """Metadata of every stored snapshot, oldest first (no payloads)."""
        return [self._info(sequence) for sequence in self.sequences()]

    def _info(self, sequence: int) -> SnapshotInfo:
        cached = self._info_cache.get(sequence)
        return cached if cached is not None else self.load(sequence)[1]

    # -- writing -------------------------------------------------------------
    def save(self, payload: Any, *, journal_sequence: int = 0) -> SnapshotInfo:
        """Persist ``payload`` as the next snapshot generation, atomically.

        The payload pickle is wrapped in an envelope carrying its CRC-32,
        so a reader can tell truncation and bit-rot from valid state.

        Fault-injection points: ``snapshot.write`` (``tear`` writes a
        truncated envelope straight to the final path and *returns
        normally* — the silent-corruption case a checksum exists to
        catch), ``snapshot.fsync`` (``raise`` simulates a failing disk
        before the atomic rename; nothing is renamed into place) and
        ``snapshot.rename`` (``errno`` — ``ENOSPC``/``EIO`` at the
        rename itself; the temp file is removed and the previous
        generation stays the newest).
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        sequence = self.latest_sequence + 1
        payload_pickle = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        envelope = {
            "format_version": SNAPSHOT_FORMAT_VERSION,
            "sequence": sequence,
            "journal_sequence": int(journal_sequence),
            "checksum": _crc32(payload_pickle),
            "payload_pickle": payload_pickle,
        }
        data = pickle.dumps(envelope, protocol=pickle.HIGHEST_PROTOCOL)
        path = self.directory / f"snapshot-{sequence:06d}.pkl"
        info = SnapshotInfo(
            sequence=sequence,
            journal_sequence=int(journal_sequence),
            format_version=SNAPSHOT_FORMAT_VERSION,
            path=path,
        )
        torn = torn_bytes(data, fault_point("snapshot.write"))
        if torn is not None:
            # Simulated bit-rot / non-atomic filesystem: the torn bytes
            # land at the final path and the writer believes it
            # succeeded.  load() detects this through the checksum.
            path.write_bytes(torn)
            self._info_cache[sequence] = info
            return info
        temp = path.with_suffix(".pkl.tmp")
        try:
            with open(temp, "wb") as handle:
                handle.write(data)
                handle.flush()
                fault_point("snapshot.fsync")
                os.fsync(handle.fileno())
            fault_point("snapshot.rename")
            os.replace(temp, path)
        except BaseException:
            try:
                temp.unlink(missing_ok=True)
            except OSError:
                pass
            raise
        self._info_cache[sequence] = info
        return info

    def prune(self, keep: int = 1) -> list[Path]:
        """Delete old *valid* snapshots, keeping the newest ``keep`` of them.

        Only snapshots that verify (envelope readable, checksum intact)
        are ever deleted: pruning on sequence number alone could, after
        the latest snapshot was corrupted, remove the only restorable
        generation while keeping the damaged one.  Corrupt files are
        never deleted here — they are :meth:`load_latest`'s to
        quarantine and ``repro ops --fsck``'s to report.
        """
        if keep < 1:
            raise PersistenceError(f"keep must be >= 1, got {keep}")
        entries = self._entries()
        valid = [sequence for sequence, path in entries if self.verify(sequence)]
        keep_sequences = set(valid[-keep:])
        removed = []
        for sequence, path in entries:
            if sequence in keep_sequences or sequence not in valid:
                continue
            path.unlink()
            self._info_cache.pop(sequence, None)
            removed.append(path)
        return removed

    # -- reading -------------------------------------------------------------
    def _read_envelope(self, sequence: int) -> tuple[dict[str, Any], Path]:
        """Read and integrity-check one envelope (payload not unpickled)."""
        path = self.directory / f"snapshot-{sequence:06d}.pkl"
        if not path.exists():
            raise PersistenceError(
                f"snapshot {sequence} not found in {self.directory}"
            )
        try:
            envelope = pickle.loads(path.read_bytes())
            if not isinstance(envelope, dict):
                raise ValueError(f"envelope is {type(envelope).__name__}, not dict")
        except PersistenceError:
            raise
        except Exception as exc:
            raise SnapshotCorruptError(
                f"snapshot {path} is unreadable (truncated or damaged): {exc}"
            ) from exc
        version = envelope.get("format_version")
        if version not in (1, SNAPSHOT_FORMAT_VERSION):
            raise PersistenceError(
                f"snapshot {path} has format version {version!r}; this build "
                f"reads version {SNAPSHOT_FORMAT_VERSION}"
            )
        if version != 1 and _crc32(envelope["payload_pickle"]) != envelope.get(
            "checksum"
        ):
            raise SnapshotCorruptError(
                f"snapshot {path} failed its checksum (bit-rot or torn write)"
            )
        return envelope, path

    def verify(self, sequence: int) -> bool:
        """Whether snapshot ``sequence`` exists and passes integrity checks."""
        try:
            self._read_envelope(sequence)
        except PersistenceError:
            return False
        return True

    def load(self, sequence: int) -> tuple[Any, SnapshotInfo]:
        """Load one snapshot generation; returns ``(payload, info)``.

        Raises :class:`~repro.exceptions.SnapshotCorruptError` (a
        :class:`PersistenceError`) when the file is truncated, fails its
        checksum, or does not unpickle.
        """
        envelope, path = self._read_envelope(sequence)
        version = int(envelope["format_version"])
        if version == 1:
            payload = envelope["payload"]
        else:
            try:
                payload = pickle.loads(envelope["payload_pickle"])
            except Exception as exc:
                raise SnapshotCorruptError(
                    f"snapshot {path} payload does not unpickle: {exc}"
                ) from exc
        info = SnapshotInfo(
            sequence=int(envelope["sequence"]),
            journal_sequence=int(envelope["journal_sequence"]),
            format_version=version,
            path=path,
        )
        self._info_cache[info.sequence] = info
        return payload, info

    def quarantined(self) -> list[Path]:
        """Quarantined snapshot files in this store, oldest name first."""
        if not self.directory.is_dir():
            return []
        return sorted(self.directory.glob("*.quarantined*"))

    def _quarantine(self, sequence: int, path: Path, error: Exception) -> Path:
        """Move a corrupt snapshot aside (never delete) and log the event."""
        target = path.with_name(path.name + ".quarantined")
        suffix = 0
        while target.exists():
            suffix += 1
            target = path.with_name(f"{path.name}.quarantined.{suffix}")
        os.replace(path, target)
        self._info_cache.pop(sequence, None)
        record_event(
            "snapshot-quarantined",
            "ci.persistence",
            snapshot=str(path),
            quarantined=str(target),
            error=str(error),
        )
        return target

    def load_latest(
        self, *, quarantine: bool = True
    ) -> tuple[Any, SnapshotInfo] | None:
        """Load the newest *restorable* snapshot, or ``None`` for none.

        A corrupt or truncated newest snapshot does not abort the
        restore: it is quarantined (renamed aside, never deleted) and
        the next older generation is tried, which simply extends the
        journal replay a restorer performs.  Each skip is recorded on
        the reliability event log.  With ``quarantine=False`` corrupt
        snapshots are skipped but left in place — the read-only
        inspection mode ``repro ops`` uses.
        """
        skipped = 0
        for sequence, path in reversed(self._entries()):
            try:
                payload, info = self.load(sequence)
            except SnapshotCorruptError as exc:
                if quarantine:
                    self._quarantine(sequence, path, exc)
                else:
                    record_event(
                        "snapshot-skipped",
                        "ci.persistence",
                        snapshot=str(path),
                        error=str(exc),
                    )
                skipped += 1
                continue
            if skipped:
                record_event(
                    "snapshot-fallback",
                    "ci.persistence",
                    restored_sequence=info.sequence,
                    skipped_snapshots=skipped,
                    journal_sequence=info.journal_sequence,
                )
            return payload, info
        return None

    def latest_info(self) -> SnapshotInfo | None:
        """Metadata of the newest *readable* snapshot (``None`` for none).

        Served from the instance's metadata cache when this process saved
        or loaded that snapshot — the operations surface calls this per
        report, and unpickling a full engine state to read three ints
        would make a cheap counters report cost a disk-sized load.
        Corrupt newer snapshots are skipped, mirroring what
        :meth:`load_latest` would restore from, so an operations report
        over a damaged store describes the restorable generation instead
        of raising.
        """
        for sequence, _ in reversed(self._entries()):
            cached = self._info_cache.get(sequence)
            if cached is not None:
                return cached
            try:
                return self.load(sequence)[1]
            except PersistenceError:
                continue
        return None


# ---------------------------------------------------------------------------
# State-directory convention
# ---------------------------------------------------------------------------

def open_state_dir(
    path: str | Path, *, create: bool = True, sync: bool = True
) -> tuple[SnapshotStore, EventJournal]:
    """Open (or create) the one-directory layout the service and CLI share.

    ``<path>/snapshots/`` holds the :class:`SnapshotStore`;
    ``<path>/journal.jsonl`` is the :class:`EventJournal`.  With
    ``create=False`` a missing directory raises :class:`PersistenceError`
    (the ``repro ops`` CLI uses this so a typo'd path fails loudly
    instead of materializing an empty state dir).
    """
    directory = Path(path)
    if not directory.is_dir():
        if not create:
            raise PersistenceError(f"state directory {directory} does not exist")
        directory.mkdir(parents=True, exist_ok=True)
    return (
        SnapshotStore(directory / "snapshots"),
        EventJournal(directory / "journal.jsonl", sync=sync),
    )
