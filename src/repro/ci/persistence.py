"""Durable CI state: versioned snapshots plus an append-only event journal.

ease.ml/ci's statistical guarantees live in server-side state — the
per-testset evaluation budget ``H``, the adaptivity-mode accounting, the
pool of unreleased test-set generations.  Losing that state to a process
restart is not an inconvenience, it *forfeits budget accounting*: a
rebooted service that re-evaluates commits on a released testset replays
labels the math says are spent.  This module makes the state durable:

* :class:`SnapshotStore` — versioned, atomic (write-temp-then-rename)
  pickle snapshots of :meth:`CIService.export_state` /
  :meth:`CIEngine.export_state` mappings.  Every snapshot records the
  journal sequence it was taken at, so a restorer knows where replay
  begins.
* :class:`EventJournal` — an append-only JSON-lines event log (commit
  received / build recorded / promotion / rotation / alarm / snapshot /
  restore).  ``commit-received`` records embed the committed model
  (pickled, base64) *before* the build runs, so a crash mid-build loses
  no commit: restore replays it deterministically.
* :func:`open_state_dir` — the one-directory layout convention
  (``<dir>/snapshots/`` + ``<dir>/journal.jsonl``) used by
  :meth:`CIService.persist_to` / :meth:`CIService.resume` and the
  ``repro ops`` CLI.

Crash model
-----------
Kill the process at any *journal boundary* (between two appends; each
append is flushed and fsynced before returning) and restore: the service
loads the latest snapshot, then replays every journaled
``commit-received`` whose repository sequence the snapshot does not yet
contain, in order, deduplicated by sequence.  Because evaluation is a
pure function of engine state and the committed model, the replayed
:class:`CommitResult`/:class:`BuildRecord` sequence is element-wise
identical to the uninterrupted run — in all three adaptivity modes (the
restart-parity suite asserts this).  A torn trailing journal line (the
crash landed mid-append) is ignored; a torn line *followed by* intact
records means real corruption and raises :class:`PersistenceError`.

Side effects are recovered as state, not re-fired: notification
transports are runtime wiring, so replay suppresses the notifier — the
pre-crash process already delivered those messages, and at most the
single in-flight commit's notification can be lost.

Security note: snapshots and ``commit-received`` payloads contain
pickles (models are arbitrary objects).  State directories are trusted,
server-local data — never restore from an untrusted one.
"""

from __future__ import annotations

import base64
import json
import os
import pickle
import re
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Callable, Iterator

from repro.exceptions import PersistenceError
from repro.utils.serialization import to_jsonable

__all__ = [
    "SNAPSHOT_FORMAT_VERSION",
    "COMMIT_RECEIVED",
    "BUILD_RECORDED",
    "PROMOTION",
    "ROTATION",
    "ALARM",
    "SNAPSHOT",
    "RESTORE",
    "EVENT_TYPES",
    "JournalRecord",
    "EventJournal",
    "SnapshotInfo",
    "SnapshotStore",
    "open_state_dir",
    "encode_model",
    "decode_model",
]

#: Version of the on-disk snapshot envelope; bumped on incompatible change.
SNAPSHOT_FORMAT_VERSION = 1

# Journal event types.  The first is the one replay is driven by; the rest
# form the operational audit trail.
COMMIT_RECEIVED = "commit-received"
BUILD_RECORDED = "build-recorded"
PROMOTION = "promotion"
ROTATION = "rotation"
ALARM = "alarm"
SNAPSHOT = "snapshot"
RESTORE = "restore"

EVENT_TYPES = frozenset(
    {COMMIT_RECEIVED, BUILD_RECORDED, PROMOTION, ROTATION, ALARM, SNAPSHOT, RESTORE}
)

_SNAPSHOT_NAME = re.compile(r"^snapshot-(\d{6})\.pkl$")


# ---------------------------------------------------------------------------
# Model payload encoding
# ---------------------------------------------------------------------------

def encode_model(model: Any) -> str:
    """Pickle ``model`` into a base64 string for a JSON journal payload."""
    return base64.b64encode(
        pickle.dumps(model, protocol=pickle.HIGHEST_PROTOCOL)
    ).decode("ascii")


def decode_model(payload: str) -> Any:
    """Invert :func:`encode_model` (trusted, server-local data only)."""
    return pickle.loads(base64.b64decode(payload.encode("ascii")))


# ---------------------------------------------------------------------------
# The journal
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class JournalRecord:
    """One journal line.

    Attributes
    ----------
    sequence:
        Journal-wide 1-based append counter (monotonic; snapshots store
        the sequence they were taken at, and ``journal lag`` on the
        operations surface is the distance from it).
    type:
        One of the module's event-type constants.
    recorded_at:
        ISO-8601 UTC wall-clock stamp.  Operational metadata only — no
        result ever depends on it, preserving the library's determinism.
    payload:
        Event-specific JSON-compatible mapping.
    """

    sequence: int
    type: str
    recorded_at: str
    payload: dict[str, Any] = field(default_factory=dict)


class EventJournal:
    """An append-only JSON-lines event log with fsync durability.

    Parameters
    ----------
    path:
        The journal file (created, along with parent directories, on
        first append).  Existing records are scanned once at open to
        resume the sequence counter.
    sync:
        Fsync after every append (default).  Turning it off trades the
        crash guarantee for throughput — acceptable for tests and
        simulations, not for a deployment.
    clock:
        Timestamp source for ``recorded_at`` (UTC now by default);
        injectable for deterministic tests.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        sync: bool = True,
        clock: Callable[[], datetime] | None = None,
    ):
        self.path = Path(path)
        self.sync = bool(sync)
        self._clock = clock or (lambda: datetime.now(timezone.utc))
        self._next_sequence = self._repair_and_scan() + 1

    def _repair_and_scan(self) -> int:
        """Scan intact records; truncate a torn *trailing* line in place.

        A torn trailing line is the tolerated crash artifact — the append
        never completed, so by the crash model its event never happened.
        It cannot be left in the file: :meth:`append` opens in append
        mode, so the next record would merge into the torn bytes (losing
        it), and one more append after that would make the merged line
        *non*-trailing — permanently unreadable corruption.  Truncating
        the torn tail once, at open, keeps append blind and the journal
        self-healing.  Garbage *followed by* intact records is real
        corruption; it is left untouched for :meth:`records` to raise on.
        """
        if not self.path.exists():
            return 0
        raw = self.path.read_bytes()
        last, valid_end, offset = 0, 0, 0
        for chunk in raw.splitlines(keepends=True):
            offset += len(chunk)
            line = chunk.decode("utf-8", errors="replace").strip()
            if not line:
                valid_end = offset
                continue
            try:
                record = json.loads(line)
                sequence = int(record["sequence"])
                record["type"], record["recorded_at"]
            except (ValueError, KeyError, TypeError):
                continue  # valid_end stays put; trailing garbage truncates
            last = sequence
            valid_end = offset
        if valid_end < len(raw):
            with open(self.path, "r+b") as handle:
                handle.truncate(valid_end)
        return last

    @property
    def last_sequence(self) -> int:
        """Sequence of the newest record (0 for an empty journal)."""
        return self._next_sequence - 1

    def __len__(self) -> int:
        return sum(1 for _ in self.records())

    # -- writing -------------------------------------------------------------
    def append(self, type: str, payload: dict[str, Any] | None = None) -> JournalRecord:
        """Append one event; flushed (and fsynced) before returning.

        The record's JSON line is rendered through
        :func:`repro.utils.serialization.to_jsonable`, so payloads may
        carry datetimes, paths, enums and numpy values directly.
        """
        if type not in EVENT_TYPES:
            raise PersistenceError(
                f"unknown journal event type {type!r}; expected one of "
                f"{sorted(EVENT_TYPES)}"
            )
        record = JournalRecord(
            sequence=self._next_sequence,
            type=type,
            recorded_at=self._clock().isoformat(),
            payload=dict(payload or {}),
        )
        line = json.dumps(to_jsonable(record), sort_keys=True)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            if self.sync:
                os.fsync(handle.fileno())
        self._next_sequence += 1
        return record

    # -- reading -------------------------------------------------------------
    def records(self) -> Iterator[JournalRecord]:
        """Yield every intact record, oldest first.

        A torn *trailing* line — the crash landed mid-append — is
        silently dropped (its event never happened, by the crash model).
        A malformed line with intact records after it is corruption and
        raises :class:`PersistenceError`.
        """
        if not self.path.exists():
            return
        with open(self.path, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        pending_error: PersistenceError | None = None
        for number, line in enumerate(lines, start=1):
            if not line.strip():
                continue
            try:
                raw = json.loads(line)
                record = JournalRecord(
                    sequence=int(raw["sequence"]),
                    type=str(raw["type"]),
                    recorded_at=str(raw["recorded_at"]),
                    payload=dict(raw.get("payload") or {}),
                )
            except (ValueError, KeyError, TypeError) as exc:
                pending_error = PersistenceError(
                    f"journal {self.path} line {number} is corrupt "
                    f"(non-trailing): {exc}"
                )
                continue
            if pending_error is not None:
                raise pending_error
            yield record

    def records_of(self, type: str) -> Iterator[JournalRecord]:
        """Yield intact records of one event type, oldest first."""
        return (record for record in self.records() if record.type == type)


# ---------------------------------------------------------------------------
# The snapshot store
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SnapshotInfo:
    """Metadata of one stored snapshot.

    Attributes
    ----------
    sequence:
        1-based snapshot counter within the store.
    journal_sequence:
        The journal's :attr:`~EventJournal.last_sequence` at save time —
        where replay begins for a restore from this snapshot.
    format_version:
        On-disk envelope version the snapshot was written with.
    path:
        The snapshot file.
    """

    sequence: int
    journal_sequence: int
    format_version: int
    path: Path


class SnapshotStore:
    """Versioned, atomically-written snapshots of exported CI state.

    Each :meth:`save` pickles an envelope ``{format_version, sequence,
    journal_sequence, payload}`` to a temporary file in the store
    directory and :func:`os.replace`-renames it into place — a reader
    (or a crash) never observes a half-written snapshot.  Snapshots are
    numbered; :meth:`load_latest` restores from the newest one and older
    generations remain on disk as a fallback/audit trail (prune with
    :meth:`prune`).
    """

    def __init__(self, directory: str | Path):
        self.directory = Path(directory)
        # Metadata of snapshots this instance has saved or loaded, so the
        # operations surface (journal lag needs only 3 ints) does not
        # unpickle whole engine states from disk on every report.  Keyed
        # by sequence; a sequence minted by another process is simply not
        # cached yet and falls back to a disk read.
        self._info_cache: dict[int, SnapshotInfo] = {}

    # -- inspection ----------------------------------------------------------
    def _entries(self) -> list[tuple[int, Path]]:
        if not self.directory.is_dir():
            return []
        entries = []
        for child in self.directory.iterdir():
            match = _SNAPSHOT_NAME.match(child.name)
            if match:
                entries.append((int(match.group(1)), child))
        return sorted(entries)

    def sequences(self) -> list[int]:
        """Stored snapshot sequence numbers, oldest first."""
        return [sequence for sequence, _ in self._entries()]

    @property
    def latest_sequence(self) -> int:
        """Newest stored sequence (0 for an empty store)."""
        entries = self._entries()
        return entries[-1][0] if entries else 0

    def snapshots(self) -> list[SnapshotInfo]:
        """Metadata of every stored snapshot, oldest first (no payloads)."""
        return [self._info(sequence) for sequence in self.sequences()]

    def _info(self, sequence: int) -> SnapshotInfo:
        cached = self._info_cache.get(sequence)
        return cached if cached is not None else self.load(sequence)[1]

    # -- writing -------------------------------------------------------------
    def save(self, payload: Any, *, journal_sequence: int = 0) -> SnapshotInfo:
        """Persist ``payload`` as the next snapshot generation, atomically."""
        self.directory.mkdir(parents=True, exist_ok=True)
        sequence = self.latest_sequence + 1
        envelope = {
            "format_version": SNAPSHOT_FORMAT_VERSION,
            "sequence": sequence,
            "journal_sequence": int(journal_sequence),
            "payload": payload,
        }
        path = self.directory / f"snapshot-{sequence:06d}.pkl"
        temp = path.with_suffix(".pkl.tmp")
        with open(temp, "wb") as handle:
            pickle.dump(envelope, handle, protocol=pickle.HIGHEST_PROTOCOL)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp, path)
        info = SnapshotInfo(
            sequence=sequence,
            journal_sequence=int(journal_sequence),
            format_version=SNAPSHOT_FORMAT_VERSION,
            path=path,
        )
        self._info_cache[sequence] = info
        return info

    def prune(self, keep: int = 1) -> list[Path]:
        """Delete all but the newest ``keep`` snapshots; returns removed paths."""
        if keep < 1:
            raise PersistenceError(f"keep must be >= 1, got {keep}")
        removed = []
        for sequence, path in self._entries()[:-keep]:
            path.unlink()
            self._info_cache.pop(sequence, None)
            removed.append(path)
        return removed

    # -- reading -------------------------------------------------------------
    def load(self, sequence: int) -> tuple[Any, SnapshotInfo]:
        """Load one snapshot generation; returns ``(payload, info)``."""
        path = self.directory / f"snapshot-{sequence:06d}.pkl"
        if not path.exists():
            raise PersistenceError(
                f"snapshot {sequence} not found in {self.directory}"
            )
        with open(path, "rb") as handle:
            envelope = pickle.load(handle)
        version = envelope.get("format_version")
        if version != SNAPSHOT_FORMAT_VERSION:
            raise PersistenceError(
                f"snapshot {path} has format version {version!r}; this build "
                f"reads version {SNAPSHOT_FORMAT_VERSION}"
            )
        info = SnapshotInfo(
            sequence=int(envelope["sequence"]),
            journal_sequence=int(envelope["journal_sequence"]),
            format_version=int(version),
            path=path,
        )
        self._info_cache[info.sequence] = info
        return envelope["payload"], info

    def load_latest(self) -> tuple[Any, SnapshotInfo] | None:
        """Load the newest snapshot, or ``None`` for an empty store."""
        latest = self.latest_sequence
        if latest == 0:
            return None
        return self.load(latest)

    def latest_info(self) -> SnapshotInfo | None:
        """Metadata of the newest snapshot (``None`` for an empty store).

        Served from the instance's metadata cache when this process saved
        or loaded that snapshot — the operations surface calls this per
        report, and unpickling a full engine state to read three ints
        would make a cheap counters report cost a disk-sized load.
        """
        latest = self.latest_sequence
        if latest == 0:
            return None
        return self._info(latest)


# ---------------------------------------------------------------------------
# State-directory convention
# ---------------------------------------------------------------------------

def open_state_dir(
    path: str | Path, *, create: bool = True, sync: bool = True
) -> tuple[SnapshotStore, EventJournal]:
    """Open (or create) the one-directory layout the service and CLI share.

    ``<path>/snapshots/`` holds the :class:`SnapshotStore`;
    ``<path>/journal.jsonl`` is the :class:`EventJournal`.  With
    ``create=False`` a missing directory raises :class:`PersistenceError`
    (the ``repro ops`` CLI uses this so a typo'd path fails loudly
    instead of materializing an empty state dir).
    """
    directory = Path(path)
    if not directory.is_dir():
        if not create:
            raise PersistenceError(f"state directory {directory} does not exist")
        directory.mkdir(parents=True, exist_ok=True)
    return (
        SnapshotStore(directory / "snapshots"),
        EventJournal(directory / "journal.jsonl", sync=sync),
    )
