"""The CI service: repository webhooks → builds → signals (Figure 1).

:class:`CIService` is the outermost orchestration layer.  It subscribes to
a :class:`~repro.ci.repository.ModelRepository`, and for every commit:

1. triggers a *build* (numbered, recorded);
2. runs the ease.ml/ci engine's evaluation;
3. updates the commit status with what the developer is allowed to see;
4. routes third-party notifications and testset alarms through the
   configured transport.

The integration team interacts with the service to install fresh testsets
when alarms fire; the development team only sees commit statuses.

Planning cost under commit traffic: constructing a service (or rebuilding
one per repository/webhook worker) triggers a :class:`SampleSizePlan`
computation in the engine.  Plans are served from the process-wide plan
cache (:mod:`repro.stats.cache`), so every service after the first that
watches the same condition/reliability spec gets its plan in microseconds;
:meth:`CIService.planning_cache_info` exposes the hit statistics for
operational dashboards.

Evaluation cost under commit traffic: :meth:`CIService.process_batch` is
the high-throughput ingest path.  A whole push of commits is drained
through :meth:`CIEngine.submit_many`, which predicts each model once and
evaluates the condition for the entire queue with one vectorized batch
evaluation per comparison baseline — while producing build records,
commit statuses, promotions and alarms element-wise identical to the
per-commit webhook.  Commits that arrive after the testset's statistical
budget is exhausted are recorded as skipped builds, exactly as the
sequential webhook would record them.

Testset lifecycle under commit traffic:
:meth:`CIService.install_testset_pool` attaches a
:class:`~repro.core.testset.TestsetPool` of pre-labeled generations, after
which builds flow across generations without skipping — the engine
rotates on exhaustion (and on the retirement alarms that cause it),
rotation notices go out through the transport, and every build record and
commit is annotated with the generation that served it.  Skipped builds
then occur only when the pool is truly dry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro.ci.commit import Commit, CommitStatus
from repro.ci.notifications import NotificationTransport
from repro.ci.repository import ModelRepository
from repro.core.engine import CIEngine, CommitResult
from repro.core.script.config import CIScript
from repro.core.testset import Testset, TestsetPool
from repro.exceptions import TestsetExhaustedError, TestsetSizeError

__all__ = ["BuildRecord", "CIService"]


@dataclass(frozen=True)
class BuildRecord:
    """One build triggered by one commit.

    Attributes
    ----------
    build_number:
        1-based build counter (matching CI-server conventions).
    commit:
        The commit that triggered the build.
    result:
        The engine's :class:`CommitResult`, or ``None`` when the build was
        skipped (testset exhausted and not yet replaced).
    skipped_reason:
        Why the build did not run, when applicable.
    """

    build_number: int
    commit: Commit
    result: CommitResult | None
    skipped_reason: str | None = None

    @property
    def generation(self) -> int | None:
        """1-based testset generation that served the build's evaluation
        (``None`` for skipped builds) — the audit trail that tells the
        integration team which released dev set a signal came from."""
        return self.result.generation if self.result is not None else None

    @property
    def ran(self) -> bool:
        """Whether the build executed an evaluation."""
        return self.result is not None


class CIService:
    """Binds a repository to an ease.ml/ci engine.

    Parameters
    ----------
    script:
        The validated CI configuration.
    testset:
        Initial testset from the integration team.
    baseline_model:
        The deployed model new commits are compared against.
    repository:
        The watched repository (a fresh one is created when omitted).
    transport:
        Notification transport for third-party signals and alarms.
    engine_kwargs:
        Extra keyword arguments forwarded to :class:`CIEngine` (e.g.
        ``estimator`` or ``enforce_testset_size``).
    """

    def __init__(
        self,
        script: CIScript,
        testset: Testset,
        baseline_model: Any,
        *,
        repository: ModelRepository | None = None,
        transport: NotificationTransport | None = None,
        **engine_kwargs: Any,
    ):
        self.script = script
        self.transport = transport
        notifier = transport.send if transport is not None else None
        self.engine = CIEngine(
            script, testset, baseline_model, notifier=notifier, **engine_kwargs
        )
        self.repository = repository if repository is not None else ModelRepository()
        self.repository.on_commit(self._on_commit, batch_observer=self._on_commit_batch)
        self._builds: list[BuildRecord] = []

    # -- inspection --------------------------------------------------------------
    @property
    def builds(self) -> list[BuildRecord]:
        """All builds, in order."""
        return list(self._builds)

    @property
    def active_model(self) -> Any:
        """The currently deployed model (last truly passing commit)."""
        return self.engine.active_model

    @property
    def plan(self):
        """The engine's :class:`~repro.core.estimators.plans.SampleSizePlan`."""
        return self.engine.plan

    @staticmethod
    def planning_cache_info():
        """Hit/miss statistics of the shared plan cache (operations view)."""
        from repro.core.estimators.api import SampleSizeEstimator

        return SampleSizeEstimator.plan_cache_info()

    # -- the webhook ---------------------------------------------------------------
    def _on_commit(self, commit: Commit) -> None:
        build_number = len(self._builds) + 1
        try:
            result = self.engine.submit(commit.model)
        except (TestsetExhaustedError, TestsetSizeError) as exc:
            # Exhausted (no replacement at all) or unable to rotate (the
            # pool's next generation is undersized): either way the build
            # is recorded as skipped rather than lost.
            commit.status = CommitStatus.SKIPPED
            self._builds.append(
                BuildRecord(
                    build_number=build_number,
                    commit=commit,
                    result=None,
                    skipped_reason=str(exc),
                )
            )
            return
        commit.status = self._status_for(result)
        commit.generation = result.generation
        self._builds.append(
            BuildRecord(build_number=build_number, commit=commit, result=result)
        )

    def _on_commit_batch(self, commits: list[Commit]) -> None:
        before = self.engine.commits_evaluated
        skipped_reason: str | None = None
        try:
            results = self.engine.submit_many([commit.model for commit in commits])
        except (TestsetExhaustedError, TestsetSizeError) as exc:
            # The engine keeps every result it produced before the budget
            # ran out (or the rotation failed); the commits after become
            # skipped builds with the same reason the sequential webhook
            # reports — engine.results and service.builds stay in sync.
            results = self.engine.results[before:]
            skipped_reason = str(exc)
        for commit, result in zip(commits, results):
            commit.status = self._status_for(result)
            commit.generation = result.generation
            self._builds.append(
                BuildRecord(
                    build_number=len(self._builds) + 1, commit=commit, result=result
                )
            )
        for commit in commits[len(results):]:
            commit.status = CommitStatus.SKIPPED
            self._builds.append(
                BuildRecord(
                    build_number=len(self._builds) + 1,
                    commit=commit,
                    result=None,
                    skipped_reason=skipped_reason,
                )
            )

    # -- the batched ingest path ---------------------------------------------------
    def process_batch(
        self,
        models: Sequence[Any],
        messages: Sequence[str] | None = None,
        author: str = "developer",
    ) -> list[BuildRecord]:
        """Commit and evaluate a whole queue of models in one batched pass.

        The models are committed to the repository as one push and drained
        through :meth:`CIEngine.submit_many`; statuses, build records,
        promotions and alarms are element-wise identical to committing the
        models one at a time.  Returns the build records of this push.
        """
        commits = self.repository.commit_many(models, messages=messages, author=author)
        return self._builds[len(self._builds) - len(commits):]

    @staticmethod
    def _status_for(result: CommitResult) -> CommitStatus:
        if result.developer_signal is None:
            return CommitStatus.ACCEPTED
        return CommitStatus.PASSED if result.developer_signal else CommitStatus.FAILED

    # -- integration-team operations --------------------------------------------------
    def install_testset(self, testset: Testset, baseline_model: Any | None = None) -> None:
        """Install a fresh testset after an alarm (delegates to the engine)."""
        self.engine.install_testset(testset, baseline_model)

    def install_testset_pool(self, pool: TestsetPool) -> None:
        """Attach a pool of pre-labeled testset generations to the engine.

        From then on builds rotate across generations instead of skipping
        on exhaustion; register a low-watermark callback on the pool to
        drive "label a new set now" workflows, and read each build's
        :attr:`BuildRecord.generation` for the serving audit trail.
        """
        self.engine.install_testset_pool(pool)

    def summary(self) -> str:
        """A per-build summary table for logs and examples."""
        lines = [f"builds for repository {self.repository.name!r}:"]
        for build in self._builds:
            if not build.ran:
                lines.append(
                    f"  #{build.build_number:<3} {build.commit.commit_id}  SKIPPED "
                    f"({build.skipped_reason})"
                )
                continue
            result = build.result
            assert result is not None
            signal = (
                "pass"
                if result.developer_signal
                else "fail"
                if result.developer_signal is not None
                else "(hidden)"
            )
            alarm = f"  ALARM: {result.alarm_event.reason.value}" if result.alarm_event else ""
            lines.append(
                f"  #{build.build_number:<3} {build.commit.commit_id}  "
                f"signal={signal:<8} promoted={str(result.promoted):<5} "
                f"uses={result.testset_uses}{alarm}"
            )
        return "\n".join(lines)
