"""The CI service: repository webhooks → builds → signals (Figure 1).

:class:`CIService` is the outermost orchestration layer.  It subscribes to
a :class:`~repro.ci.repository.ModelRepository`, and for every commit:

1. triggers a *build* (numbered, recorded);
2. runs the ease.ml/ci engine's evaluation;
3. updates the commit status with what the developer is allowed to see;
4. routes third-party notifications and testset alarms through the
   configured transport.

The integration team interacts with the service to install fresh testsets
when alarms fire; the development team only sees commit statuses.

Planning cost under commit traffic: constructing a service (or rebuilding
one per repository/webhook worker) triggers a :class:`SampleSizePlan`
computation in the engine.  Plans are served from the process-wide plan
cache (:mod:`repro.stats.cache`), so every service after the first that
watches the same condition/reliability spec gets its plan in microseconds;
:meth:`CIService.planning_cache_info` exposes the hit statistics for
operational dashboards.

Evaluation cost under commit traffic: :meth:`CIService.process_batch` is
the high-throughput ingest path.  A whole push of commits is drained
through :meth:`CIEngine.submit_many`, which predicts each model once and
evaluates the condition for the entire queue with one vectorized batch
evaluation per comparison baseline — while producing build records,
commit statuses, promotions and alarms element-wise identical to the
per-commit webhook.  Commits that arrive after the testset's statistical
budget is exhausted are recorded as skipped builds, exactly as the
sequential webhook would record them.

Testset lifecycle under commit traffic:
:meth:`CIService.install_testset_pool` attaches a
:class:`~repro.core.testset.TestsetPool` of pre-labeled generations, after
which builds flow across generations without skipping — the engine
rotates on exhaustion (and on the retirement alarms that cause it),
rotation notices go out through the transport, and every build record and
commit is annotated with the generation that served it.  Skipped builds
then occur only when the pool is truly dry.

Durability: :meth:`CIService.persist_to` binds the service to a state
directory (:mod:`repro.ci.persistence`).  From then on every webhook
journals the commit *before* evaluating it and the build outcome after,
and :meth:`CIService.snapshot` (or the ``snapshot_every`` cadence)
captures the full exported state atomically.  After a crash,
:meth:`CIService.resume` loads the latest snapshot and replays the
journaled commits the snapshot predates — producing build records
element-wise identical to the uninterrupted run.
:meth:`CIService.operations` (and the ``repro ops`` CLI) reports pool
runway, generation budgets, cache statistics and journal lag.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.ci.commit import Commit, CommitStatus
from repro.ci.notifications import (
    DeadLetter,
    NotificationTransport,
    RetryingTransport,
)
from repro.ci.persistence import (
    ALARM,
    BUILD_RECORDED,
    COMMIT_RECEIVED,
    PROMOTION,
    RESTORE,
    ROTATION,
    SNAPSHOT,
    EventJournal,
    SnapshotInfo,
    SnapshotStore,
    decode_model,
    encode_model,
)
from repro.ci.repository import ModelRepository
from repro.core.engine import CIEngine, CommitResult
from repro.core.kernel import (
    DirectoryStateStore,
    KernelBackend,
    StateStore,
    get_backend,
)
from repro.core.script.config import CIScript
from repro.core.testset import Testset, TestsetPool
from repro.exceptions import (
    PersistenceError,
    StorageExhaustedError,
    TestsetExhaustedError,
    TestsetSizeError,
)
from repro.reliability.events import record_event, reliability_events
from repro.reliability.faults import InjectedFault
from repro.reliability.storage import StorageGovernor, retention_anchor

__all__ = ["BuildRecord", "CIService", "OperationsReport", "SERVICE_STATE_FORMAT"]

#: Version tag of the service's exported-state contract.
SERVICE_STATE_FORMAT = "repro.ci-service/v1"


@dataclass(frozen=True)
class BuildRecord:
    """One build triggered by one commit.

    Attributes
    ----------
    build_number:
        1-based build counter (matching CI-server conventions).
    commit:
        The commit that triggered the build.
    result:
        The engine's :class:`CommitResult`, or ``None`` when the build was
        skipped (testset exhausted and not yet replaced).
    skipped_reason:
        Why the build did not run, when applicable.
    """

    build_number: int
    commit: Commit
    result: CommitResult | None
    skipped_reason: str | None = None

    @property
    def generation(self) -> int | None:
        """1-based testset generation that served the build's evaluation
        (``None`` for skipped builds) — the audit trail that tells the
        integration team which released dev set a signal came from."""
        return self.result.generation if self.result is not None else None

    @property
    def ran(self) -> bool:
        """Whether the build executed an evaluation."""
        return self.result is not None


@dataclass(frozen=True)
class OperationsReport:
    """Point-in-time operational view of a CI service.

    Everything an on-call integration engineer asks of a running (or
    restored) service: build/commit counters, the active generation's
    budget, pool runway, planning/serving cache statistics, and how far
    the journal has run ahead of the last snapshot.  JSON-compatible via
    :func:`repro.utils.serialization.to_jsonable`; rendered for terminals
    by :meth:`describe`.
    """

    repository: str
    builds_total: int
    builds_ran: int
    builds_skipped: int
    commits_evaluated: int
    promotions: int
    alarms: int
    rotations: int
    active_generation: int
    generation_budget: int
    generation_uses: int
    generation_remaining: int
    generation_exhausted: bool
    pool_attached: bool
    pool_pending_generations: int
    pool_remaining_evaluations: int
    pool_low_watermark: int | None
    planning_cache: Mapping[str, Any]
    caches: Mapping[str, Mapping[str, Any]]
    persistence_attached: bool
    snapshot_sequence: int | None
    snapshot_journal_sequence: int | None
    journal_sequence: int | None
    journal_lag: int | None
    planning_degraded: bool
    pool_respawns: int
    snapshot_fallbacks: int
    quarantined_files: int
    dead_letters: int
    # Storage governance (defaults keep older constructors working).
    storage_bytes: int | None = None
    storage_soft_bytes: int | None = None
    storage_hard_bytes: int | None = None
    storage_level: str | None = None
    storage_read_only: bool = False
    journal_compacted_through: int | None = None

    def describe(self) -> str:
        """A terminal-friendly rendering (what ``repro ops`` prints)."""
        lines = [
            f"operations report for repository {self.repository!r}:",
            f"  builds        : {self.builds_total} total, "
            f"{self.builds_ran} ran, {self.builds_skipped} skipped",
            f"  commits       : {self.commits_evaluated} evaluated, "
            f"{self.promotions} promoted",
            f"  alarms        : {self.alarms} fired, {self.rotations} rotations",
            f"  generation    : #{self.active_generation}, "
            f"budget {self.generation_uses}/{self.generation_budget} used "
            f"({self.generation_remaining} remaining"
            f"{', RETIRED' if self.generation_exhausted else ''})",
        ]
        if self.pool_attached:
            lines.append(
                f"  pool runway   : {self.pool_pending_generations} pending "
                f"generation(s), {self.pool_remaining_evaluations} "
                f"evaluation(s), low watermark {self.pool_low_watermark}"
            )
        else:
            lines.append("  pool runway   : (no pool attached)")
        plan = self.planning_cache
        lines.append(
            f"  plan cache    : {plan['hits']} hits / {plan['misses']} misses "
            f"({plan['currsize']} plans cached)"
        )
        warm = sum(1 for info in self.caches.values() if info["currsize"])
        lines.append(f"  caches        : {warm}/{len(self.caches)} warm")
        if self.persistence_attached and self.journal_lag is not None:
            compacted = (
                f", compacted through seq {self.journal_compacted_through}"
                if self.journal_compacted_through
                else ""
            )
            lines.append(
                f"  durable state : snapshot #{self.snapshot_sequence or 0} "
                f"at journal seq {self.snapshot_journal_sequence or 0}, "
                f"journal at seq {self.journal_sequence or 0} "
                f"(lag {self.journal_lag} event(s){compacted})"
            )
        elif self.persistence_attached:
            lines.append(
                f"  durable state : snapshot #{self.snapshot_sequence or 0} "
                "(no journal attached)"
            )
        else:
            lines.append("  durable state : (persistence not attached)")
        if self.storage_level is not None:
            mode = "READ-ONLY" if self.storage_read_only else "writable"
            soft = "-" if self.storage_soft_bytes is None else str(self.storage_soft_bytes)
            hard = "-" if self.storage_hard_bytes is None else str(self.storage_hard_bytes)
            lines.append(
                f"  storage       : {self.storage_bytes}B used "
                f"(soft {soft}, hard {hard}) — "
                f"{self.storage_level}, {mode}"
            )
        planning = "DEGRADED to serial" if self.planning_degraded else "healthy"
        lines.append(
            f"  reliability   : planning {planning}, "
            f"{self.pool_respawns} pool respawn(s), "
            f"{self.snapshot_fallbacks} snapshot fallback(s), "
            f"{self.quarantined_files} quarantined file(s), "
            f"{self.dead_letters} dead letter(s)"
        )
        return "\n".join(lines)


class CIService:
    """Binds a repository to an ease.ml/ci engine.

    Parameters
    ----------
    script:
        The validated CI configuration.
    testset:
        Initial testset from the integration team.
    baseline_model:
        The deployed model new commits are compared against.
    repository:
        The watched repository (a fresh one is created when omitted).
    transport:
        Notification transport for third-party signals and alarms.
    workers:
        Planning-executor configuration forwarded to the engine and its
        estimator (``None`` = serial / ``$REPRO_PLAN_WORKERS``,
        ``"auto"`` = one worker process per CPU, or an explicit count).
        Cold plan derivations — construction, pool rotations — then run
        in worker processes with their warm cache state merged back;
        worker count never changes build records, signals or budgets,
        and snapshots taken under any worker setting restore identically
        on any other (plans are re-derived, never serialized).
    precision:
        Planning-kernel accumulation tier forwarded to the engine:
        ``None`` keeps the estimator's setting (``"float64"`` for the
        stock one); ``"float32"`` halves the planning kernels' memory
        traffic while every adopted plan is still certified against the
        float64 reference — build records, signals and budgets never
        change with the tier.
    engine_kwargs:
        Extra keyword arguments forwarded to :class:`CIEngine` (e.g.
        ``estimator`` or ``enforce_testset_size``).
    """

    def __init__(
        self,
        script: CIScript,
        testset: Testset,
        baseline_model: Any,
        *,
        repository: ModelRepository | None = None,
        transport: NotificationTransport | None = None,
        workers: int | str | None = None,
        precision: str | None = None,
        **engine_kwargs: Any,
    ):
        self.script = script
        self.repository = repository if repository is not None else ModelRepository()
        self.transport = transport
        self.delivery = self._wrap_transport(transport)
        notifier = self.delivery.send if self.delivery is not None else None
        self.engine = CIEngine(
            script,
            testset,
            baseline_model,
            notifier=notifier,
            workers=workers,
            precision=precision,
            **engine_kwargs,
        )
        self.repository.on_commit(self._on_commit, batch_observer=self._on_commit_batch)
        self._builds: list[BuildRecord] = []
        self._init_runtime_state()

    def _wrap_transport(
        self, transport: NotificationTransport | None
    ) -> RetryingTransport | None:
        """Wrap the user transport so delivery failures cannot reach webhooks.

        Every notification flows through a :class:`RetryingTransport`
        whose dead letters land in the repository's durable log — a flaky
        transport can delay a signal, never raise through ``submit`` or
        ``process_batch``, and never silently lose the message.  An
        already-retrying transport is used as-is (dead letters are still
        routed to the repository unless it routes them elsewhere).
        """
        if transport is None:
            return None
        if isinstance(transport, RetryingTransport):
            if transport.on_dead_letter is None:
                transport.on_dead_letter = self._record_dead_letter
            return transport
        return RetryingTransport(
            transport, on_dead_letter=self._record_dead_letter
        )

    def _record_dead_letter(self, letter: DeadLetter) -> None:
        self.repository.record_dead_letter(letter)

    def _init_runtime_state(self) -> None:
        """Persistence wiring defaults (shared by __init__ and restore)."""
        # All durable I/O routes through the kernel StateStore seam; the
        # _store/_journal pair mirrors the default backend's underlying
        # snapshot store and journal (None under a foreign backend) for
        # call sites that still speak the two-object PR-4 contract.
        self._state_store: StateStore | None = None
        self._store: SnapshotStore | None = None
        self._journal: EventJournal | None = None
        self._snapshot_every: int | None = None
        self._builds_since_snapshot = 0
        self._replaying = False
        # Storage governance (attach_persistence wires these up).
        self._keep_snapshots: int | None = None
        self._storage: "StorageGovernor | None" = None
        self._state_dir: Path | None = None
        self._storage_read_only = False

    # -- inspection --------------------------------------------------------------
    @property
    def builds(self) -> list[BuildRecord]:
        """All builds, in order."""
        return list(self._builds)

    @property
    def active_model(self) -> Any:
        """The currently deployed model (last truly passing commit)."""
        return self.engine.active_model

    @property
    def plan(self):
        """The engine's :class:`~repro.core.estimators.plans.SampleSizePlan`."""
        return self.engine.plan

    @staticmethod
    def planning_cache_info():
        """Hit/miss statistics of the shared plan cache (operations view)."""
        from repro.core.estimators.api import SampleSizeEstimator

        return SampleSizeEstimator.plan_cache_info()

    def operations(self) -> OperationsReport:
        """The operations surface: runway, budgets, caches, journal lag.

        Safe to call at any lifecycle point, persisted or not; the
        ``repro ops`` CLI restores a service from its state directory and
        prints exactly this report.
        """
        from repro.stats.cache import all_cache_info

        manager = self.engine.manager
        pool = self.engine.pool
        store = self._state_store
        snapshot_info = store.latest_info() if store is not None else None
        journal_sequence = store.journal_sequence if store is not None else None
        journal_lag = None
        if journal_sequence is not None:
            anchored = snapshot_info.journal_sequence if snapshot_info else 0
            journal_lag = journal_sequence - anchored
        plan_info = self.planning_cache_info()
        events = reliability_events()
        quarantined = len(store.quarantined()) if store is not None else 0
        storage_status = None
        if self._storage is not None and self._state_dir is not None:
            storage_status = self._storage.check(self._state_dir)
        return OperationsReport(
            repository=self.repository.name,
            builds_total=len(self._builds),
            builds_ran=sum(1 for build in self._builds if build.ran),
            builds_skipped=sum(1 for build in self._builds if not build.ran),
            commits_evaluated=self.engine.commits_evaluated,
            promotions=sum(1 for r in self.engine.results if r.promoted),
            alarms=len(self.engine.alarm.events),
            rotations=len(self.engine.rotations),
            active_generation=manager.generation,
            generation_budget=manager.budget,
            generation_uses=manager.uses,
            generation_remaining=manager.remaining,
            generation_exhausted=manager.is_exhausted,
            pool_attached=pool is not None,
            pool_pending_generations=pool.pending if pool is not None else 0,
            pool_remaining_evaluations=(
                pool.remaining_evaluations() if pool is not None else 0
            ),
            pool_low_watermark=pool.low_watermark if pool is not None else None,
            planning_cache={
                "hits": plan_info.hits,
                "misses": plan_info.misses,
                "maxsize": plan_info.maxsize,
                "currsize": plan_info.currsize,
                "hit_rate": plan_info.hit_rate,
            },
            caches={
                name: {
                    "hits": info.hits,
                    "misses": info.misses,
                    "maxsize": info.maxsize,
                    "currsize": info.currsize,
                }
                for name, info in all_cache_info().items()
            },
            persistence_attached=self._state_store is not None,
            snapshot_sequence=snapshot_info.sequence if snapshot_info else None,
            snapshot_journal_sequence=(
                snapshot_info.journal_sequence if snapshot_info else None
            ),
            journal_sequence=journal_sequence,
            journal_lag=journal_lag,
            planning_degraded=any(
                e.kind == "planning-degraded" for e in events
            ),
            pool_respawns=sum(1 for e in events if e.kind == "pool-respawn"),
            snapshot_fallbacks=sum(
                1 for e in events if e.kind == "snapshot-fallback"
            ),
            quarantined_files=quarantined,
            dead_letters=len(self.repository.dead_letters),
            storage_bytes=(
                storage_status.used_bytes if storage_status is not None else None
            ),
            storage_soft_bytes=(
                storage_status.soft_bytes if storage_status is not None else None
            ),
            storage_hard_bytes=(
                storage_status.hard_bytes if storage_status is not None else None
            ),
            storage_level=(
                storage_status.level if storage_status is not None else None
            ),
            storage_read_only=self._storage_read_only,
            journal_compacted_through=(
                self._journal.compacted_through
                if self._journal is not None
                else None
            ),
        )

    # -- the webhook ---------------------------------------------------------------
    def _on_commit(self, commit: Commit) -> None:
        self._journal_commit_received(commit)
        rotations_before = len(self.engine.rotations)
        build_number = len(self._builds) + 1
        try:
            result = self.engine.submit(commit.model)
        except (TestsetExhaustedError, TestsetSizeError) as exc:
            # Exhausted (no replacement at all) or unable to rotate (the
            # pool's next generation is undersized): either way the build
            # is recorded as skipped rather than lost.
            commit.status = CommitStatus.SKIPPED
            build = BuildRecord(
                build_number=build_number,
                commit=commit,
                result=None,
                skipped_reason=str(exc),
            )
            self._builds.append(build)
            self._journal_build(build, rotations_before)
            self._maybe_auto_snapshot()
            return
        commit.status = self._status_for(result)
        commit.generation = result.generation
        build = BuildRecord(build_number=build_number, commit=commit, result=result)
        self._builds.append(build)
        self._journal_build(build, rotations_before)
        self._maybe_auto_snapshot()

    def _on_commit_batch(self, commits: list[Commit]) -> None:
        for commit in commits:
            self._journal_commit_received(commit)
        rotations_before = len(self.engine.rotations)
        before = self.engine.commits_evaluated
        skipped_reason: str | None = None
        try:
            results = self.engine.submit_many([commit.model for commit in commits])
        except (TestsetExhaustedError, TestsetSizeError) as exc:
            # The engine keeps every result it produced before the budget
            # ran out (or the rotation failed); the commits after become
            # skipped builds with the same reason the sequential webhook
            # reports — engine.results and service.builds stay in sync.
            results = self.engine.results[before:]
            skipped_reason = str(exc)
        self._journal_rotations(rotations_before)
        for commit, result in zip(commits, results):
            commit.status = self._status_for(result)
            commit.generation = result.generation
            build = BuildRecord(
                build_number=len(self._builds) + 1, commit=commit, result=result
            )
            self._builds.append(build)
            self._journal_build(build, rotations_before=None)
        for commit in commits[len(results):]:
            commit.status = CommitStatus.SKIPPED
            build = BuildRecord(
                build_number=len(self._builds) + 1,
                commit=commit,
                result=None,
                skipped_reason=skipped_reason,
            )
            self._builds.append(build)
            self._journal_build(build, rotations_before=None)
        self._maybe_auto_snapshot(builds=len(commits))

    # -- the batched ingest path ---------------------------------------------------
    def process_batch(
        self,
        models: Sequence[Any],
        messages: Sequence[str] | None = None,
        author: str = "developer",
    ) -> list[BuildRecord]:
        """Commit and evaluate a whole queue of models in one batched pass.

        The models are committed to the repository as one push and drained
        through :meth:`CIEngine.submit_many`; statuses, build records,
        promotions and alarms are element-wise identical to committing the
        models one at a time.  Returns the build records of this push.
        """
        commits = self.repository.commit_many(models, messages=messages, author=author)
        return self._builds[len(self._builds) - len(commits):]

    @staticmethod
    def _status_for(result: CommitResult) -> CommitStatus:
        if result.developer_signal is None:
            return CommitStatus.ACCEPTED
        return CommitStatus.PASSED if result.developer_signal else CommitStatus.FAILED

    # -- journaling ---------------------------------------------------------------
    def _journal_event(self, type: str, payload: dict[str, Any]) -> None:
        if self._state_store is not None and not self._replaying:
            self._state_store.append_event(type, payload)

    def _journal_commit_received(self, commit: Commit) -> None:
        """Journal a commit *before* its build runs.

        This is the record replay is driven by: it embeds the committed
        model, so a crash anywhere between this append and the build's
        completion loses nothing — restore re-runs the evaluation
        deterministically from the snapshot-exact engine state.
        """
        if self._state_store is None or self._replaying:
            return
        self._state_store.append_event(
            COMMIT_RECEIVED,
            {
                "sequence": commit.sequence,
                "commit_id": commit.commit_id,
                "author": commit.author,
                "message": commit.message,
                "model_pickle": encode_model(commit.model),
            },
        )

    def _journal_build(
        self, build: BuildRecord, rotations_before: int | None
    ) -> None:
        """Journal the outcome trail of one recorded build.

        ``rotations_before`` is the rotation count captured before the
        engine call for the per-commit webhook (``None`` when the caller
        already journaled the batch's rotations itself).
        """
        if self._state_store is None or self._replaying:
            return
        if rotations_before is not None:
            self._journal_rotations(rotations_before)
        result = build.result
        if result is not None and result.promoted:
            self._state_store.append_event(
                PROMOTION,
                {
                    "build_number": build.build_number,
                    "commit_sequence": build.commit.sequence,
                    "generation": result.generation,
                },
            )
        if result is not None and result.alarm_event is not None:
            event = result.alarm_event
            self._state_store.append_event(
                ALARM,
                {
                    "reason": event.reason,
                    "testset_name": event.testset_name,
                    "uses": event.uses,
                    "generation": event.generation,
                },
            )
        self._state_store.append_event(
            BUILD_RECORDED,
            {
                "build_number": build.build_number,
                "commit_sequence": build.commit.sequence,
                "commit_id": build.commit.commit_id,
                "status": build.commit.status,
                "ran": build.ran,
                "generation": build.generation,
                "skipped_reason": build.skipped_reason,
                "truly_passed": result.truly_passed if result else None,
                "promoted": result.promoted if result else None,
                "testset_uses": result.testset_uses if result else None,
            },
        )

    def _journal_rotations(self, rotations_before: int) -> None:
        if self._state_store is None or self._replaying:
            return
        for event in self.engine.rotations[rotations_before:]:
            self._state_store.append_event(
                ROTATION,
                {
                    "retired": event.retired_testset_name,
                    "installed": event.installed_testset_name,
                    "from_generation": event.from_generation,
                    "to_generation": event.to_generation,
                    "pending_generations": event.pending_generations,
                },
            )

    # -- durable state ------------------------------------------------------------
    @staticmethod
    def _coerce_state_store(
        store: "StateStore | SnapshotStore",
        journal: EventJournal | None,
    ) -> StateStore:
        """Accept the kernel seam or the legacy two-object PR-4 pair.

        A :class:`~repro.core.kernel.StateStore` passes through (its
        journal, if any, is its own business — ``journal`` must then be
        ``None``); a bare :class:`SnapshotStore` plus optional
        :class:`EventJournal` is wrapped in the default backend's
        :class:`~repro.core.kernel.DirectoryStateStore`.
        """
        if isinstance(store, SnapshotStore):
            return DirectoryStateStore(store, journal)
        if journal is not None:
            raise PersistenceError(
                "journal= can only accompany a SnapshotStore; a StateStore "
                "carries its own event record"
            )
        return store

    def attach_persistence(
        self,
        store: "StateStore | SnapshotStore",
        journal: EventJournal | None = None,
        *,
        snapshot_every: int | None = None,
        keep_snapshots: int | None = 3,
        storage: StorageGovernor | None = None,
    ) -> None:
        """Bind the service to a state store.

        ``store`` is either a kernel
        :class:`~repro.core.kernel.StateStore` or — the original PR-4
        surface — a :class:`SnapshotStore` with an optional
        :class:`EventJournal`.  With an event record available every
        webhook journals the commit before evaluating and the build
        trail after; ``snapshot_every=N`` also snapshots automatically
        after every ``N`` builds, bounding replay work (journal lag) at
        restore time.

        ``keep_snapshots=N`` (default 3) bounds the *disk*, the way
        ``snapshot_every`` bounds replay: every snapshot also prunes the
        store down to the newest ``N`` valid generations and compacts
        the journal through the oldest retained one's anchor — replay
        from any retained snapshot never hits a compacted gap.  Pass
        ``None`` to keep every generation (crash-forensics harnesses
        that reconstruct historical states need this).

        ``storage`` attaches a :class:`StorageGovernor`: every commit is
        gated on the state dir's byte budget *before* anything mutates —
        at the soft watermark the service reclaims (snapshot + prune +
        compact); at the hard watermark it degrades to read-only,
        rejecting commits with a retryable
        :class:`~repro.exceptions.StorageExhaustedError` until
        reclamation (or an operator) brings usage back under.
        """
        if snapshot_every is not None and snapshot_every < 1:
            raise PersistenceError(
                f"snapshot_every must be >= 1, got {snapshot_every}"
            )
        if keep_snapshots is not None and keep_snapshots < 1:
            raise PersistenceError(
                f"keep_snapshots must be >= 1, got {keep_snapshots}"
            )
        state_store = self._coerce_state_store(store, journal)
        self._state_store = state_store
        self._store = getattr(state_store, "snapshots", None)
        self._journal = getattr(state_store, "journal", None)
        self._snapshot_every = snapshot_every
        self._builds_since_snapshot = 0
        self._keep_snapshots = keep_snapshots
        self._storage = storage
        self._state_dir = (
            self._store.directory.parent if self._store is not None else None
        )
        self._storage_read_only = False
        if storage is not None:
            if self._state_dir is None:
                raise PersistenceError(
                    "a StorageGovernor needs the default directory backend; "
                    "this state store exposes no on-disk state dir to meter"
                )
            self.repository.add_commit_gate(self._storage_gate)

    def persist_to(
        self,
        state_dir: str | Path,
        *,
        snapshot_every: int | None = None,
        sync: bool = True,
        backend: str | KernelBackend | None = None,
        keep_snapshots: int | None = 3,
        storage: StorageGovernor | None = None,
    ) -> SnapshotInfo:
        """Bind to ``state_dir`` (creating it) and take the first snapshot.

        The initial snapshot makes the service restorable immediately —
        a crash before the first commit restores to this exact state.
        The state store is opened through ``backend`` when given, and
        through the engine's own kernel backend otherwise, so a service
        running on a registered backend persists through that backend's
        durability layer without extra wiring.  ``keep_snapshots`` and
        ``storage`` govern disk growth — see :meth:`attach_persistence`.
        """
        kernel = (
            self.engine.backend if backend is None else get_backend(backend)
        )
        store = kernel.open_state_store(state_dir, create=True, sync=sync)
        self.attach_persistence(
            store,
            snapshot_every=snapshot_every,
            keep_snapshots=keep_snapshots,
            storage=storage,
        )
        return self.snapshot()

    def snapshot(self) -> SnapshotInfo:
        """Atomically persist the full exported state as a new snapshot.

        When a retention policy is attached (``keep_snapshots``), every
        snapshot also reclaims: old valid generations are pruned and the
        journal is checkpoint-truncated through the oldest retained
        anchor — the snapshot cadence is simultaneously the compaction
        cadence, so a long-running service's disk footprint is bounded
        by ``keep_snapshots`` generations plus one snapshot-interval of
        journal tail.
        """
        if self._state_store is None:
            raise PersistenceError(
                "no snapshot store attached; call persist_to()/attach_persistence()"
            )
        info = self._state_store.save_snapshot(self.export_state())
        self._builds_since_snapshot = 0
        self._journal_event(
            SNAPSHOT,
            {"snapshot_sequence": info.sequence, "path": info.path},
        )
        self._run_retention()
        return info

    def _run_retention(self) -> None:
        """Prune snapshots and compact the journal per ``keep_snapshots``.

        A no-op when retention is off or the backend is foreign (no
        directory snapshot store to prune).  Compaction's boundary is
        the *oldest retained valid* snapshot's anchor, so every snapshot
        still on disk — including older generations a corrupt-newest
        fallback may restore from — replays without a gap.
        """
        if self._keep_snapshots is None or self._store is None:
            return
        if self._store.latest_sequence:
            self._store.prune(keep=self._keep_snapshots)
        if self._journal is None:
            return
        anchor = retention_anchor(self._store)
        if (
            anchor > self._journal.compacted_through
            and anchor <= self._journal.last_sequence
        ):
            self._journal.compact(anchor)

    def _storage_gate(self, count: int) -> None:
        """Commit-admission gate installed when a governor is attached.

        Runs *before* any commit mutates the repository.  Soft watermark
        → reclaim (snapshot advances the compaction anchor, then prune +
        compact) and proceed.  Hard watermark → reclaim without writing
        (retention only — a full disk cannot take a new snapshot), and
        if still over, degrade to read-only: the commit is refused with
        a retryable typed error, nothing durable is half-written, and
        the mode clears itself on the first gate pass back under the
        watermark.  Never gates replay — restore must work on a full
        disk.
        """
        if self._storage is None or self._state_dir is None or self._replaying:
            return
        status = self._storage.check(self._state_dir)
        if status.level == "soft":
            record_event(
                "storage-soft-watermark",
                "ci.service",
                state_dir=str(self._state_dir),
                used_bytes=status.used_bytes,
                soft_bytes=status.soft_bytes,
            )
            try:
                self.snapshot()
            except (OSError, InjectedFault):
                self._run_retention()
            status = self._storage.check(self._state_dir)
        if status.level == "hard":
            self._run_retention()
            status = self._storage.check(self._state_dir)
        if status.read_only:
            if not self._storage_read_only:
                self._storage_read_only = True
                record_event(
                    "storage-degraded-read-only",
                    "ci.service",
                    state_dir=str(self._state_dir),
                    used_bytes=status.used_bytes,
                    hard_bytes=status.hard_bytes,
                )
            raise StorageExhaustedError(
                f"state dir {self._state_dir} is at its hard storage "
                f"watermark ({status.used_bytes}B >= {status.hard_bytes}B); "
                "service is degraded to read-only — reclaim or raise the "
                "budget, then retry",
                retry_after_seconds=self._storage.retry_after_seconds,
            )
        if self._storage_read_only:
            self._storage_read_only = False
            record_event(
                "storage-recovered",
                "ci.service",
                state_dir=str(self._state_dir),
                used_bytes=status.used_bytes,
            )

    def _maybe_auto_snapshot(self, builds: int = 1) -> None:
        self._builds_since_snapshot += builds
        if (
            self._snapshot_every is not None
            and self._state_store is not None
            and not self._replaying
            and self._builds_since_snapshot >= self._snapshot_every
        ):
            self.snapshot()

    def export_state(self) -> dict[str, Any]:
        """The service's durable state (format ``repro.ci-service/v1``).

        One mapping holding the engine's exported state, the repository
        (history + nonce; observers dropped) and the build records.  The
        transport — like the engine's notifier it feeds — is runtime
        wiring, re-supplied on restore.
        """
        return {
            "format": SERVICE_STATE_FORMAT,
            "engine": self.engine.export_state(),
            "repository": self.repository,
            "builds": list(self._builds),
        }

    @classmethod
    def from_state(
        cls,
        state: dict[str, Any],
        *,
        transport: NotificationTransport | None = None,
    ) -> "CIService":
        """Rebuild a service from :meth:`export_state` output.

        Rebuilds the engine (re-deriving plans through warm caches),
        rewires the repository webhook, and reattaches the runtime-only
        ``transport``.  Journal replay is :meth:`restore`'s job, not
        this method's.
        """
        fmt = state.get("format")
        if fmt != SERVICE_STATE_FORMAT:
            raise PersistenceError(
                f"unsupported service state format {fmt!r} "
                f"(this build reads {SERVICE_STATE_FORMAT!r})"
            )
        service = object.__new__(cls)
        service.repository = state["repository"]
        service.transport = transport
        service.delivery = service._wrap_transport(transport)
        notifier = service.delivery.send if service.delivery is not None else None
        service.engine = CIEngine.from_state(state["engine"], notifier=notifier)
        service.script = service.engine.script
        service.repository.on_commit(
            service._on_commit, batch_observer=service._on_commit_batch
        )
        service._builds = list(state["builds"])
        service._init_runtime_state()
        return service

    def __getstate__(self) -> dict[str, Any]:
        return self.export_state()

    def __setstate__(self, state: dict[str, Any]) -> None:
        restored = CIService.from_state(state)
        self.__dict__.update(restored.__dict__)
        # The unpickled copy, not `restored`, must be the webhook target.
        self.repository._observers = []
        self.repository.on_commit(
            self._on_commit, batch_observer=self._on_commit_batch
        )

    @classmethod
    def restore(
        cls,
        store: "StateStore | SnapshotStore",
        journal: EventJournal | None = None,
        *,
        transport: NotificationTransport | None = None,
        snapshot_every: int | None = None,
        record: bool = True,
        keep_snapshots: int | None = 3,
        storage: StorageGovernor | None = None,
    ) -> "CIService":
        """Restore from the latest snapshot and replay the journal tail.

        Every journaled ``commit-received`` the snapshot predates is
        re-committed in sequence order (deduplicated by sequence, so
        restoring twice — or restoring a journal that already contains a
        previous restore's replay — never double-spends budget).  Replay
        recovers *state*, not side effects: the notifier is suppressed
        while replaying, since the pre-crash process already delivered
        those messages.  With ``record=True`` a ``restore`` event is
        journaled afterwards; ``repro ops`` passes ``record=False`` so
        inspection never mutates the journal.

        Corrupt snapshots do not stop a restore:
        :meth:`SnapshotStore.load_latest` falls back to the newest
        *valid* snapshot, and the longer journal tail re-derives the
        missing builds.  Damaged files are quarantined (renamed, never
        deleted) only when ``record=True``; read-only inspection skips
        them in place.
        """
        state_store = cls._coerce_state_store(store, journal)
        loaded = state_store.load_latest(quarantine=record)
        if loaded is None:
            raise PersistenceError(
                f"no snapshot to restore from in {state_store.location}; "
                "persist_to() must have run at least once"
            )
        state, info = loaded
        service = cls.from_state(state, transport=transport)
        service.attach_persistence(
            state_store,
            snapshot_every=snapshot_every,
            keep_snapshots=keep_snapshots,
            storage=storage,
        )
        replayed = 0
        if state_store.journal_sequence is not None:
            replayed = service._replay_journal()
            if record:
                state_store.append_event(
                    RESTORE,
                    {
                        "snapshot_sequence": info.sequence,
                        "replayed_commits": replayed,
                    },
                )
        return service

    @classmethod
    def resume(
        cls,
        state_dir: str | Path,
        *,
        transport: NotificationTransport | None = None,
        snapshot_every: int | None = None,
        record: bool = True,
        backend: str | KernelBackend | None = None,
        keep_snapshots: int | None = 3,
        storage: StorageGovernor | None = None,
    ) -> "CIService":
        """:meth:`restore` from a persisted state directory.

        ``backend`` selects whose state-store layer reads the directory
        (``None`` = ``"default"``, the :func:`open_state_dir` layout) —
        it must match the backend that persisted it.
        """
        store = get_backend(backend).open_state_store(state_dir, create=False)
        return cls.restore(
            store,
            transport=transport,
            snapshot_every=snapshot_every,
            record=record,
            keep_snapshots=keep_snapshots,
            storage=storage,
        )

    def _replay_journal(self) -> int:
        """Re-commit every journaled commit the snapshot predates.

        Deduplicates by repository sequence (append-only journals may
        legitimately contain a sequence twice after repeated restores)
        and demands a gap-free run from the restored repository head —
        a hole means the journal and snapshot disagree, which is
        corruption, not a crash artifact.
        """
        assert self._state_store is not None
        start = len(self.repository)
        pending: dict[int, dict[str, Any]] = {}
        for record in self._state_store.records_of(COMMIT_RECEIVED):
            sequence = int(record.payload["sequence"])
            if sequence >= start:
                pending.setdefault(sequence, record.payload)
        engine_notifier = self.engine.notifier
        self._replaying = True
        self.engine.notifier = None  # replay recovers state, not side effects
        try:
            for sequence in sorted(pending):
                if sequence != len(self.repository):
                    raise PersistenceError(
                        f"journal replay expected commit sequence "
                        f"{len(self.repository)} but found {sequence}; the "
                        "journal does not line up with the snapshot"
                    )
                payload = pending[sequence]
                self.repository.commit(
                    decode_model(payload["model_pickle"]),
                    message=payload.get("message", ""),
                    author=payload.get("author", "developer"),
                )
        finally:
            self._replaying = False
            self.engine.notifier = engine_notifier
        return len(pending)

    # -- integration-team operations --------------------------------------------------
    def install_testset(self, testset: Testset, baseline_model: Any | None = None) -> None:
        """Install a fresh testset after an alarm (delegates to the engine)."""
        self.engine.install_testset(testset, baseline_model)

    def install_testset_pool(self, pool: TestsetPool) -> None:
        """Attach a pool of pre-labeled testset generations to the engine.

        From then on builds rotate across generations instead of skipping
        on exhaustion; register a low-watermark callback on the pool to
        drive "label a new set now" workflows, and read each build's
        :attr:`BuildRecord.generation` for the serving audit trail.
        """
        self.engine.install_testset_pool(pool)

    def summary(self) -> str:
        """A per-build summary table for logs and examples."""
        lines = [f"builds for repository {self.repository.name!r}:"]
        for build in self._builds:
            if not build.ran:
                lines.append(
                    f"  #{build.build_number:<3} {build.commit.commit_id}  SKIPPED "
                    f"({build.skipped_reason})"
                )
                continue
            result = build.result
            assert result is not None
            signal = (
                "pass"
                if result.developer_signal
                else "fail"
                if result.developer_signal is not None
                else "(hidden)"
            )
            alarm = f"  ALARM: {result.alarm_event.reason.value}" if result.alarm_event else ""
            lines.append(
                f"  #{build.build_number:<3} {build.commit.commit_id}  "
                f"signal={signal:<8} promoted={str(result.promoted):<5} "
                f"uses={result.testset_uses}{alarm}"
            )
        return "\n".join(lines)
