"""Commit objects for the model repository."""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field
from typing import Any

__all__ = ["CommitStatus", "Commit"]


class CommitStatus(enum.Enum):
    """Lifecycle of a commit inside the CI pipeline."""

    PENDING = "pending"  #: committed, build not yet run
    PASSED = "passed"  #: build ran; CI signal was pass
    FAILED = "failed"  #: build ran; CI signal was fail
    ACCEPTED = "accepted"  #: accepted without a visible signal (adaptivity none)
    SKIPPED = "skipped"  #: build could not run (e.g. testset exhausted)


@dataclass
class Commit:
    """One committed model version.

    Attributes
    ----------
    sequence:
        0-based commit number within its repository (stands in for a
        timestamp; the library avoids wall-clock reads for determinism).
    model:
        The committed model object (anything with ``predict``).
    message:
        The commit message.
    author:
        Developer identifier.
    status:
        Current pipeline status, updated by the CI service.
    generation:
        1-based testset generation that served this commit's build, set
        by the CI service once the build ran (``None`` while pending or
        skipped).  Under a testset pool this annotates repository history
        with which released dev set each signal came from.
    repo_nonce:
        The owning repository's identity nonce, mixed into
        :attr:`commit_id` so commits of *different* repositories (or of a
        restored-then-diverged copy re-seeded with a fresh nonce) never
        collide even at identical ``sequence:author:message`` triples.
    parent_sha:
        :attr:`commit_id` of the preceding commit (``None`` for the
        root), chaining ids git-style: once two histories diverge at any
        commit, every later id diverges too.
    """

    sequence: int
    model: Any
    message: str = ""
    author: str = "developer"
    status: CommitStatus = field(default=CommitStatus.PENDING)
    generation: int | None = field(default=None)
    repo_nonce: str = ""
    parent_sha: str | None = None

    @property
    def commit_id(self) -> str:
        """A stable short hex id naming this commit within its history.

        Derived from the repository nonce, the parent chain and the
        ``sequence:author:message`` triple — the triple alone collides
        across repositories (two fresh repos both mint ``#0 developer:
        "fix"``), which matters once histories are persisted, restored
        and diverge.
        """
        payload = (
            f"{self.repo_nonce}:{self.parent_sha or ''}:"
            f"{self.sequence}:{self.author}:{self.message}"
        ).encode()
        return hashlib.sha1(payload).hexdigest()[:10]

    def __str__(self) -> str:
        return f"commit {self.commit_id} (#{self.sequence}, {self.status.value})"
