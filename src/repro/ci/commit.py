"""Commit objects for the model repository."""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field
from typing import Any

__all__ = ["CommitStatus", "Commit"]


class CommitStatus(enum.Enum):
    """Lifecycle of a commit inside the CI pipeline."""

    PENDING = "pending"  #: committed, build not yet run
    PASSED = "passed"  #: build ran; CI signal was pass
    FAILED = "failed"  #: build ran; CI signal was fail
    ACCEPTED = "accepted"  #: accepted without a visible signal (adaptivity none)
    SKIPPED = "skipped"  #: build could not run (e.g. testset exhausted)


@dataclass
class Commit:
    """One committed model version.

    Attributes
    ----------
    sequence:
        0-based commit number within its repository (stands in for a
        timestamp; the library avoids wall-clock reads for determinism).
    model:
        The committed model object (anything with ``predict``).
    message:
        The commit message.
    author:
        Developer identifier.
    status:
        Current pipeline status, updated by the CI service.
    generation:
        1-based testset generation that served this commit's build, set
        by the CI service once the build ran (``None`` while pending or
        skipped).  Under a testset pool this annotates repository history
        with which released dev set each signal came from.
    """

    sequence: int
    model: Any
    message: str = ""
    author: str = "developer"
    status: CommitStatus = field(default=CommitStatus.PENDING)
    generation: int | None = field(default=None)

    @property
    def commit_id(self) -> str:
        """A stable short hex id derived from sequence/author/message."""
        payload = f"{self.sequence}:{self.author}:{self.message}".encode()
        return hashlib.sha1(payload).hexdigest()[:10]

    def __str__(self) -> str:
        return f"commit {self.commit_id} (#{self.sequence}, {self.status.value})"
