"""Travis-like CI substrate: repositories, commits, builds, notifications.

The paper positions ease.ml/ci as an extension of an existing CI engine
(Figure 1 shows the GitHub + ``.travis.yml`` workflow).  This package
supplies that surrounding machinery so the examples and experiments can
exercise the *whole* four-step loop — define script, provide testset,
commit models, receive signals — rather than calling the statistical core
directly:

* :mod:`commit` / :mod:`repository` — a minimal model-versioning store;
* :mod:`notifications` — pluggable message transports (in-memory email
  for tests, console for examples);
* :mod:`service` — :class:`~repro.ci.service.CIService`, which watches a
  repository, triggers a build per commit, runs the ease.ml/ci engine and
  routes signals/alarms to the right parties;
* :mod:`persistence` — durable state: atomic versioned snapshots plus an
  append-only event journal, giving the service restart-identical resume
  (:meth:`~repro.ci.service.CIService.persist_to` /
  :meth:`~repro.ci.service.CIService.resume`) and the ``repro ops``
  operations surface.
"""

from repro.ci.commit import Commit, CommitStatus
from repro.ci.repository import ModelRepository
from repro.ci.notifications import (
    EmailMessage,
    NotificationTransport,
    InMemoryEmailTransport,
    ConsoleTransport,
)
from repro.ci.persistence import (
    EventJournal,
    JournalRecord,
    SnapshotInfo,
    SnapshotStore,
    open_state_dir,
)
from repro.ci.service import BuildRecord, CIService, OperationsReport

__all__ = [
    "Commit",
    "CommitStatus",
    "ModelRepository",
    "EmailMessage",
    "NotificationTransport",
    "InMemoryEmailTransport",
    "ConsoleTransport",
    "EventJournal",
    "JournalRecord",
    "SnapshotInfo",
    "SnapshotStore",
    "open_state_dir",
    "BuildRecord",
    "CIService",
    "OperationsReport",
]
