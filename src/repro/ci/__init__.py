"""Travis-like CI substrate: repositories, commits, builds, notifications.

The paper positions ease.ml/ci as an extension of an existing CI engine
(Figure 1 shows the GitHub + ``.travis.yml`` workflow).  This package
supplies that surrounding machinery so the examples and experiments can
exercise the *whole* four-step loop — define script, provide testset,
commit models, receive signals — rather than calling the statistical core
directly:

* :mod:`commit` / :mod:`repository` — a minimal model-versioning store;
* :mod:`notifications` — pluggable message transports (in-memory email
  for tests, console for examples);
* :mod:`service` — :class:`~repro.ci.service.CIService`, which watches a
  repository, triggers a build per commit, runs the ease.ml/ci engine and
  routes signals/alarms to the right parties.
"""

from repro.ci.commit import Commit, CommitStatus
from repro.ci.repository import ModelRepository
from repro.ci.notifications import (
    EmailMessage,
    NotificationTransport,
    InMemoryEmailTransport,
    ConsoleTransport,
)
from repro.ci.service import BuildRecord, CIService

__all__ = [
    "Commit",
    "CommitStatus",
    "ModelRepository",
    "EmailMessage",
    "NotificationTransport",
    "InMemoryEmailTransport",
    "ConsoleTransport",
    "BuildRecord",
    "CIService",
]
