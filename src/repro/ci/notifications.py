"""Notification transports for CI signals and testset lifecycle events.

Three delivery paths flow through one transport:

* under ``adaptivity: none`` the true pass/fail signal is mailed to a
  third-party address the developer cannot read (§2.2);
* the *new testset alarm* notifies the integration team when the testset's
  statistical budget is spent (§2.3);
* a pool-aware engine sends *generation rotation* notices
  ("[ease.ml/ci] testset generation rotated") when it installs the next
  :class:`~repro.core.testset.TestsetPool` generation over a retired one —
  operational visibility for rotations that no longer block commits.

Production systems would plug in SMTP or a chat webhook; the experiments
use :class:`InMemoryEmailTransport` (assertable) and examples use
:class:`ConsoleTransport`.

Transports fail — webhooks time out, SMTP servers bounce — and a build
result must never be lost to one.  :class:`RetryingTransport` wraps any
transport with bounded retries, exponential backoff and a dead-letter
callback; :class:`CIService` wraps its transport in one automatically,
routing dead letters to the repository's durable dead-letter log, so a
flaky transport can no longer raise through ``submit``/``process_batch``.

Transports are *runtime wiring*, not durable CI state: service snapshots
(:mod:`repro.ci.persistence`) never carry them, and a restore re-attaches
whichever transport the new process supplies
(``CIService.resume(state_dir, transport=...)``).  Journal replay
deliberately suppresses delivery — the pre-crash process already sent
those messages — so a transport sees each notification at most once per
process lifetime, and at most the single in-flight commit's notification
can be lost to a crash.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Protocol

from repro.reliability.events import record_event
from repro.reliability.faults import fault_point

__all__ = [
    "EmailMessage",
    "DeadLetter",
    "NotificationTransport",
    "InMemoryEmailTransport",
    "ConsoleTransport",
    "RetryingTransport",
    "FlakyTransport",
]


@dataclass(frozen=True)
class EmailMessage:
    """A delivered notification.

    Attributes
    ----------
    recipient:
        Address (or role name) the message was sent to.
    subject, body:
        Message content.
    sequence:
        0-based delivery order within the transport.
    """

    recipient: str
    subject: str
    body: str
    sequence: int


class NotificationTransport(Protocol):
    """Anything that can deliver a (recipient, subject, body) triple."""

    def send(self, recipient: str, subject: str, body: str) -> None:
        """Deliver one message."""
        ...  # pragma: no cover - protocol


class InMemoryEmailTransport:
    """Records messages for inspection — the test double of choice.

    The developer-visibility invariant of ``adaptivity: none`` is tested
    by asserting that all true signals land here and nowhere else.
    """

    def __init__(self):
        self._messages: list[EmailMessage] = []

    def send(self, recipient: str, subject: str, body: str) -> None:
        """Record a message."""
        self._messages.append(
            EmailMessage(
                recipient=recipient,
                subject=subject,
                body=body,
                sequence=len(self._messages),
            )
        )

    @property
    def messages(self) -> list[EmailMessage]:
        """All delivered messages, in order."""
        return list(self._messages)

    def messages_for(self, recipient: str) -> list[EmailMessage]:
        """Messages delivered to a specific recipient."""
        return [m for m in self._messages if m.recipient == recipient]

    def __len__(self) -> int:
        return len(self._messages)


class ConsoleTransport:
    """Prints messages to stdout (used by the runnable examples)."""

    def send(self, recipient: str, subject: str, body: str) -> None:
        """Print one message."""
        print(f"--- mail to {recipient}: {subject}")
        for line in body.splitlines():
            print(f"    {line}")


@dataclass(frozen=True)
class DeadLetter:
    """A notification that could not be delivered after every retry.

    Attributes
    ----------
    recipient, subject, body:
        The undeliverable message, kept whole so an operator can re-send
        it once the transport recovers.
    error:
        String form of the final delivery error.
    attempts:
        Total delivery attempts made (1 + retries).
    """

    recipient: str
    subject: str
    body: str
    error: str
    attempts: int


class RetryingTransport:
    """Wraps a transport with bounded retries, backoff and dead-letters.

    A delivery that raises is retried up to ``retries`` more times with
    exponential backoff; when the final attempt also fails the message
    becomes a :class:`DeadLetter` handed to ``on_dead_letter`` — and the
    failure *stops here*: ``send`` never raises, so a flaky webhook can
    no longer blow up the CI webhook that triggered it.  Build results
    are never lost either way: they live in the service's build records
    and journal, and the dead letter preserves the message itself.

    The ``notification.send`` fault-injection point is traversed before
    each attempt: a ``raise`` rule simulates the flaky transport, and a
    ``drop`` rule simulates silent message loss (recorded, not retried —
    no acknowledgement exists to retry on).

    Parameters
    ----------
    transport:
        The wrapped delivery transport.
    retries:
        Extra attempts after the first failure.
    backoff, max_backoff:
        Exponential-backoff base and cap in seconds.
    on_dead_letter:
        Called with the :class:`DeadLetter` after the final failure.
    sleep:
        Injectable sleep for the backoff (tests pass a no-op).
    """

    def __init__(
        self,
        transport: NotificationTransport,
        *,
        retries: int = 2,
        backoff: float = 0.05,
        max_backoff: float = 1.0,
        on_dead_letter: Callable[[DeadLetter], None] | None = None,
        sleep: Callable[[float], None] = time.sleep,
    ):
        self.transport = transport
        self.retries = int(retries)
        self.backoff = float(backoff)
        self.max_backoff = float(max_backoff)
        self.on_dead_letter = on_dead_letter
        self._sleep = sleep
        self._dead_letters: list[DeadLetter] = []

    @property
    def dead_letters(self) -> list[DeadLetter]:
        """Messages that exhausted their retries, in order."""
        return list(self._dead_letters)

    def send(self, recipient: str, subject: str, body: str) -> None:
        """Deliver with retries; dead-letter instead of raising."""
        error: Exception | None = None
        for attempt in range(1, self.retries + 2):
            try:
                fault = fault_point("notification.send")
                if fault is not None and fault.action == "drop":
                    record_event(
                        "notification-dropped",
                        "ci.notifications",
                        recipient=recipient,
                        subject=subject,
                    )
                    return
                self.transport.send(recipient, subject, body)
                return
            except Exception as exc:
                error = exc
                if attempt <= self.retries:
                    record_event(
                        "notification-retry",
                        "ci.notifications",
                        recipient=recipient,
                        subject=subject,
                        attempt=attempt,
                        error=f"{type(exc).__name__}: {exc}",
                    )
                    self._sleep(
                        min(self.backoff * (2 ** (attempt - 1)), self.max_backoff)
                    )
        letter = DeadLetter(
            recipient=recipient,
            subject=subject,
            body=body,
            error=f"{type(error).__name__}: {error}",
            attempts=self.retries + 1,
        )
        self._dead_letters.append(letter)
        record_event(
            "notification-dead-letter",
            "ci.notifications",
            recipient=recipient,
            subject=subject,
            error=letter.error,
            attempts=letter.attempts,
        )
        if self.on_dead_letter is not None:
            self.on_dead_letter(letter)


class FlakyTransport:
    """A test transport that fails the first ``failures`` deliveries.

    Failed attempts raise ``ConnectionError``; once the budget is spent,
    deliveries are recorded like :class:`InMemoryEmailTransport`.  The
    chaos suite uses it to exercise the retry and dead-letter paths
    without fault-injection rules.
    """

    def __init__(self, failures: int = 1):
        self.failures = int(failures)
        self.attempts = 0
        self._inner = InMemoryEmailTransport()

    @property
    def messages(self) -> list[EmailMessage]:
        """Messages that made it through."""
        return self._inner.messages

    def send(self, recipient: str, subject: str, body: str) -> None:
        """Fail while the failure budget lasts, then deliver."""
        self.attempts += 1
        if self.attempts <= self.failures:
            raise ConnectionError(
                f"simulated transport outage (attempt {self.attempts})"
            )
        self._inner.send(recipient, subject, body)
