"""Notification transports for CI signals and testset lifecycle events.

Three delivery paths flow through one transport:

* under ``adaptivity: none`` the true pass/fail signal is mailed to a
  third-party address the developer cannot read (§2.2);
* the *new testset alarm* notifies the integration team when the testset's
  statistical budget is spent (§2.3);
* a pool-aware engine sends *generation rotation* notices
  ("[ease.ml/ci] testset generation rotated") when it installs the next
  :class:`~repro.core.testset.TestsetPool` generation over a retired one —
  operational visibility for rotations that no longer block commits.

Production systems would plug in SMTP or a chat webhook; the experiments
use :class:`InMemoryEmailTransport` (assertable) and examples use
:class:`ConsoleTransport`.

Transports are *runtime wiring*, not durable CI state: service snapshots
(:mod:`repro.ci.persistence`) never carry them, and a restore re-attaches
whichever transport the new process supplies
(``CIService.resume(state_dir, transport=...)``).  Journal replay
deliberately suppresses delivery — the pre-crash process already sent
those messages — so a transport sees each notification at most once per
process lifetime, and at most the single in-flight commit's notification
can be lost to a crash.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

__all__ = [
    "EmailMessage",
    "NotificationTransport",
    "InMemoryEmailTransport",
    "ConsoleTransport",
]


@dataclass(frozen=True)
class EmailMessage:
    """A delivered notification.

    Attributes
    ----------
    recipient:
        Address (or role name) the message was sent to.
    subject, body:
        Message content.
    sequence:
        0-based delivery order within the transport.
    """

    recipient: str
    subject: str
    body: str
    sequence: int


class NotificationTransport(Protocol):
    """Anything that can deliver a (recipient, subject, body) triple."""

    def send(self, recipient: str, subject: str, body: str) -> None:
        """Deliver one message."""
        ...  # pragma: no cover - protocol


class InMemoryEmailTransport:
    """Records messages for inspection — the test double of choice.

    The developer-visibility invariant of ``adaptivity: none`` is tested
    by asserting that all true signals land here and nowhere else.
    """

    def __init__(self):
        self._messages: list[EmailMessage] = []

    def send(self, recipient: str, subject: str, body: str) -> None:
        """Record a message."""
        self._messages.append(
            EmailMessage(
                recipient=recipient,
                subject=subject,
                body=body,
                sequence=len(self._messages),
            )
        )

    @property
    def messages(self) -> list[EmailMessage]:
        """All delivered messages, in order."""
        return list(self._messages)

    def messages_for(self, recipient: str) -> list[EmailMessage]:
        """Messages delivered to a specific recipient."""
        return [m for m in self._messages if m.recipient == recipient]

    def __len__(self) -> int:
        return len(self._messages)


class ConsoleTransport:
    """Prints messages to stdout (used by the runnable examples)."""

    def send(self, recipient: str, subject: str, body: str) -> None:
        """Print one message."""
        print(f"--- mail to {recipient}: {subject}")
        for line in body.splitlines():
            print(f"    {line}")
