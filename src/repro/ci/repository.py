"""A minimal model-versioning repository.

Stands in for the "GitHub repository" of Figure 1: developers commit
models (plus messages), the CI service observes new commits and runs
builds.  Observers are registered callables — the CI service subscribes
itself, mirroring a webhook.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator

from repro.ci.commit import Commit
from repro.exceptions import EngineStateError

__all__ = ["ModelRepository"]


class ModelRepository:
    """An append-only sequence of model commits with observer hooks.

    Parameters
    ----------
    name:
        Repository identifier used in logs and notifications.
    """

    def __init__(self, name: str = "ml-repo"):
        self.name = name
        self._commits: list[Commit] = []
        self._observers: list[Callable[[Commit], None]] = []

    # -- committing -----------------------------------------------------------
    def commit(self, model: Any, message: str = "", author: str = "developer") -> Commit:
        """Append a new model version and notify observers (webhook)."""
        commit = Commit(
            sequence=len(self._commits),
            model=model,
            message=message,
            author=author,
        )
        self._commits.append(commit)
        for observer in self._observers:
            observer(commit)
        return commit

    def on_commit(self, observer: Callable[[Commit], None]) -> None:
        """Register a callable invoked for every future commit."""
        self._observers.append(observer)

    # -- history ---------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._commits)

    def __iter__(self) -> Iterator[Commit]:
        return iter(self._commits)

    def __getitem__(self, index: int) -> Commit:
        return self._commits[index]

    @property
    def head(self) -> Commit:
        """The most recent commit."""
        if not self._commits:
            raise EngineStateError(f"repository {self.name!r} has no commits")
        return self._commits[-1]

    def log(self) -> str:
        """A short, newest-first commit log."""
        lines = []
        for commit in reversed(self._commits):
            lines.append(
                f"{commit.commit_id}  [{commit.status.value:^8}]  "
                f"{commit.author}: {commit.message or '(no message)'}"
            )
        return "\n".join(lines)
