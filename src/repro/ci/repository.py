"""A minimal model-versioning repository.

Stands in for the "GitHub repository" of Figure 1: developers commit
models (plus messages), the CI service observes new commits and runs
builds.  Observers are registered callables — the CI service subscribes
itself, mirroring a webhook.

Two webhook shapes exist: the classic per-commit observer and, for
subscribers that can evaluate a whole push at once (the batched CI
service), an optional batch companion registered alongside it via
:meth:`ModelRepository.on_commit`.  :meth:`ModelRepository.commit_many`
delivers each push exactly once per subscriber — through the batch
companion when one was registered, otherwise commit by commit — so plain
per-commit subscribers never miss commits that arrive via a push.

Commits carry the CI outcome back into the history: the service records a
status on every commit and, once a build ran, the testset generation that
served it (see :attr:`repro.ci.commit.Commit.generation`) — under a
pool-aware service a push may span several generations, and the
repository log is where that audit trail lives.
"""

from __future__ import annotations

import uuid
from typing import Any, Callable, Iterator, Sequence

from repro.ci.commit import Commit
from repro.exceptions import EngineStateError, InvalidParameterError

__all__ = ["ModelRepository"]


class ModelRepository:
    """An append-only sequence of model commits with observer hooks.

    Parameters
    ----------
    name:
        Repository identifier used in logs and notifications.
    nonce:
        Identity nonce mixed into every commit's
        :attr:`~repro.ci.commit.Commit.commit_id` (a fresh random hex
        string by default).  Two repositories therefore never mint
        colliding commit ids, while a repository restored from a snapshot
        keeps its nonce and reproduces its ids exactly.  Pass an explicit
        nonce for runs that must mint reproducible ids.

    Notes
    -----
    Commit history (and the nonce) is durable repository *state* and
    round-trips through pickling/snapshots; observers are runtime wiring
    and are dropped — the CI service re-subscribes itself on restore, and
    any extra observers must be re-registered.

    The repository also carries the *dead-letter log*: notifications the
    service's retrying transport could not deliver (see
    :class:`repro.ci.notifications.RetryingTransport`).  Dead letters
    are durable state — they survive snapshots and restores so an
    operator can re-send them once the transport recovers — and live
    here, next to the commit history they annotate, rather than on the
    (runtime-only, never-snapshotted) transport.
    """

    def __init__(self, name: str = "ml-repo", *, nonce: str | None = None):
        self.name = name
        self.nonce = uuid.uuid4().hex[:12] if nonce is None else str(nonce)
        self._commits: list[Commit] = []
        self._dead_letters: list[Any] = []
        self._observers: list[
            tuple[Callable[[Commit], None], Callable[[list[Commit]], None] | None]
        ] = []
        self._commit_gates: list[Callable[[int], None]] = []

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state["_observers"] = []  # runtime wiring, not repository state
        state["_commit_gates"] = []
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        # Snapshots written before the dead-letter log existed.
        self.__dict__.setdefault("_dead_letters", [])
        self.__dict__.setdefault("_commit_gates", [])

    # -- dead letters ----------------------------------------------------------
    def record_dead_letter(self, letter: Any) -> None:
        """Append one undeliverable notification to the durable log."""
        self._dead_letters.append(letter)

    @property
    def dead_letters(self) -> list[Any]:
        """Undeliverable notifications recorded by the service, in order."""
        return list(self._dead_letters)

    def drain_dead_letters(self) -> list[Any]:
        """Atomically return-and-clear the dead-letter log.

        The acknowledgement primitive redelivery tooling needs: reading
        :attr:`dead_letters` alone would hand the operator the same
        letters on every poll, so a redelivery loop could never tell
        "already re-sent" from "still stuck".  Draining transfers
        ownership — the returned letters are the caller's to re-send (or
        re-record on failure via :meth:`record_dead_letter`), and the
        repository's log is empty afterwards.  The drained state is
        durable like the log itself: a snapshot taken after a drain
        restores with an empty log, not with the acknowledged letters
        resurrected.
        """
        drained, self._dead_letters = self._dead_letters, []
        return drained

    # -- committing -----------------------------------------------------------
    def _mint(self, model: Any, message: str, author: str) -> Commit:
        """Build the next commit, chained to the current head."""
        return Commit(
            sequence=len(self._commits),
            model=model,
            message=message,
            author=author,
            repo_nonce=self.nonce,
            parent_sha=self._commits[-1].commit_id if self._commits else None,
        )

    def _check_gates(self, count: int) -> None:
        """Run every admission gate before any history is mutated.

        A gate that raises vetoes the whole commit (or push): nothing is
        appended and no observer fires, so the caller can retry the
        exact same commit later.  This is how a storage-degraded service
        refuses durable writes *before* they half-happen.
        """
        for gate in self._commit_gates:
            gate(count)

    def commit(self, model: Any, message: str = "", author: str = "developer") -> Commit:
        """Append a new model version and notify observers (webhook)."""
        self._check_gates(1)
        commit = self._mint(model, message, author)
        self._commits.append(commit)
        for observer, _ in self._observers:
            observer(commit)
        return commit

    def commit_many(
        self,
        models: Sequence[Any],
        messages: Sequence[str] | None = None,
        author: str = "developer",
    ) -> list[Commit]:
        """Append a push of model versions, notifying each subscriber once.

        Subscribers that registered a batch companion receive the whole
        commit list in one call (a batch-aware CI service evaluates the
        push through its vectorized pipeline); every other subscriber's
        per-commit observer fires for each commit in order, exactly as if
        the models had been committed one at a time.
        """
        if messages is not None and len(messages) != len(models):
            raise InvalidParameterError(
                f"got {len(messages)} messages for {len(models)} models"
            )
        self._check_gates(len(models))
        commits = []
        for i, model in enumerate(models):
            commits.append(
                self._mint(
                    model,
                    messages[i] if messages is not None else "",
                    author,
                )
            )
            self._commits.append(commits[-1])
        for observer, batch_observer in self._observers:
            if batch_observer is not None:
                batch_observer(list(commits))
            else:
                for commit in commits:
                    observer(commit)
        return commits

    def on_commit(
        self,
        observer: Callable[[Commit], None],
        *,
        batch_observer: Callable[[list[Commit]], None] | None = None,
    ) -> None:
        """Register a callable invoked for every future commit.

        ``batch_observer``, when given, replaces the per-commit calls for
        pushes delivered through :meth:`commit_many`: the subscriber gets
        the whole push in one call instead of one call per commit (never
        both).
        """
        self._observers.append((observer, batch_observer))

    def add_commit_gate(self, gate: Callable[[int], None]) -> None:
        """Register an admission gate run *before* any commit mutates history.

        The gate receives the number of commits about to land and vetoes
        by raising.  Like observers, gates are runtime wiring (dropped
        from snapshots) — a persistence-attached service installs its
        storage gate here on every attach/restore.
        """
        self._commit_gates.append(gate)

    # -- history ---------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._commits)

    def __iter__(self) -> Iterator[Commit]:
        return iter(self._commits)

    def __getitem__(self, index: int) -> Commit:
        return self._commits[index]

    @property
    def head(self) -> Commit:
        """The most recent commit."""
        if not self._commits:
            raise EngineStateError(f"repository {self.name!r} has no commits")
        return self._commits[-1]

    def log(self) -> str:
        """A short, newest-first commit log."""
        lines = []
        for commit in reversed(self._commits):
            lines.append(
                f"{commit.commit_id}  [{commit.status.value:^8}]  "
                f"{commit.author}: {commit.message or '(no message)'}"
            )
        return "\n".join(lines)
